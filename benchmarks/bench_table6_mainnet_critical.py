"""Table 6: connections among the mainnet's critical service nodes.

Paper findings (the reproduction targets, per connection type):

- SrvR1 (dominant relay) connects to every tested mining pool and to other
  SrvR1 nodes, but NOT to the other relay SrvR2;
- SrvR2 behaves like a vanilla client: no links to pools or relays;
- pool nodes connect to the same and other pools and to SrvR1 — except
  SrvM1 nodes, which do not peer with each other.

The bench discovers the service backends via client-version matching, runs
the non-interference-extended measurement over all pairs among nine chosen
critical nodes, and checks the measured connection matrix row by row.
"""

import pytest

from benchmarks.harness import emit, run_once
from repro.core.campaign import TopoShot
from repro.core.noninterference import NonInterferenceMonitor
from repro.eth.miner import Miner
from repro.eth.transaction import INTRINSIC_GAS, gwei
from repro.netgen.services import MainnetSpec, discover_critical_nodes, mainnet_like
from repro.netgen.workloads import prefill_mempools

# Paper's Table 6, as (type pair) -> connected?
PAPER_TABLE_6 = {
    ("SrvR1", "SrvR1"): True,
    ("SrvM1", "SrvR1"): True,
    ("SrvM2", "SrvR1"): True,
    ("SrvM3", "SrvR1"): True,
    ("SrvM4", "SrvR1"): True,
    ("SrvR1", "SrvR2"): False,
    ("SrvM1", "SrvR2"): False,
    ("SrvM2", "SrvR2"): False,
    ("SrvM3", "SrvR2"): False,
    ("SrvM4", "SrvR2"): False,
    ("SrvM1", "SrvM1"): False,  # the paper's notable exception
    ("SrvM1", "SrvM2"): True,
    ("SrvM1", "SrvM3"): True,
    ("SrvM1", "SrvM4"): True,
    ("SrvM2", "SrvM2"): True,
    ("SrvM2", "SrvM3"): True,
    ("SrvM2", "SrvM4"): True,
    ("SrvM3", "SrvM4"): True,
}


def run_study():
    network, directory = mainnet_like(MainnetSpec(n_regular=50, seed=11))
    discovered = discover_critical_nodes(network, directory)
    selected = {}
    for service, count in (
        ("SrvR1", 2), ("SrvR2", 1), ("SrvM1", 2), ("SrvM2", 2),
        ("SrvM3", 1), ("SrvM4", 1),
    ):
        selected[service] = discovered[service][:count]
    chosen = [node for nodes in selected.values() for node in nodes]

    prefill_mempools(network, median_price=gwei(10.0), sigma=0.2)
    network.chain.gas_limit = 6 * INTRINSIC_GAS
    miner = Miner(
        network.node(discovered["SrvM1"][0]),
        network.chain,
        block_interval=13.0,
        min_gas_price=gwei(2.0),
    )
    miner.start()

    shot = TopoShot.attach(network)
    shot.config = shot.config.with_gas_price(gwei(1.0)).with_repeats(2)
    monitor = NonInterferenceMonitor(network.chain, y0=gwei(1.0), expiry=60.0)
    monitor.start(network.sim.now)
    pairs = [
        (chosen[i], chosen[j])
        for i in range(len(chosen))
        for j in range(i + 1, len(chosen))
    ]
    detected = shot.measure_pairs(pairs)
    monitor.stop(network.sim.now)
    network.run(60.0)
    return network, selected, detected, monitor.verify()


@pytest.mark.benchmark(group="table6")
def test_table6_mainnet_critical_subnetwork(benchmark):
    network, selected, detected, ni_report = run_study()

    def matrix():
        service_of = {n: s for s, nodes in selected.items() for n in nodes}
        seen = {}
        for e in detected:
            a, b = tuple(e)
            key = tuple(sorted((service_of[a], service_of[b])))
            seen[key] = True
        return seen

    seen = run_once(benchmark, matrix)
    lines = [f"{'type pair':<18} {'measured':>9} {'paper':>7}"]
    mismatches = []
    for (s1, s2), expected in sorted(PAPER_TABLE_6.items()):
        # Only check pairs measurable with the selected node counts.
        if s1 == s2 and len(selected.get(s1, [])) < 2:
            continue
        got = seen.get(tuple(sorted((s1, s2))), False)
        lines.append(
            f"{s1 + ' -- ' + s2:<18} {'X' if got else '-':>9} "
            f"{'X' if expected else '-':>7}"
        )
        if got != expected:
            mismatches.append((s1, s2))
    lines.append("")
    lines.append(f"non-interference: {ni_report.summary()}")
    emit("table6_mainnet_critical", "\n".join(lines))

    assert not mismatches, f"connection-type mismatches: {mismatches}"
    assert ni_report.non_interfering
