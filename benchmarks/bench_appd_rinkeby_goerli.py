"""Appendix D: Rinkeby & Goerli — degree figures 8/9 and Tables 9/10.

Paper's qualitative targets:

- Rinkeby is denser than Ropsten (avg degree 69 vs 26) and has the lowest
  modularity of the three testnets ("the most resilient against network
  partitioning"); measured modularity sits below all random baselines;
- Goerli contains globally connected hub nodes with degrees far above
  everyone else (>700 neighbours at full scale);
- in both testnets, measured modularity < ER/CM/BA baselines.
"""

import pytest

from benchmarks.harness import emit, run_once
from repro.analysis.degrees import degree_distribution
from repro.analysis.randomgraphs import (
    comparison_table,
    modularity_lower_than_baselines,
)
from repro.analysis.report import render_comparison


@pytest.mark.benchmark(group="appd")
def test_table9_fig8_rinkeby(benchmark, rinkeby_campaign):
    _, _, measurement = rinkeby_campaign
    table = run_once(
        benchmark,
        lambda: comparison_table(measurement.graph, "Measured", trials=10, seed=2),
    )
    distribution = degree_distribution(measurement.graph)
    text = render_comparison(table, title="Table 9 analogue (Rinkeby-like)")
    text += "\n\nFigure 8 analogue (degrees):\n"
    text += distribution.ascii_plot(width=30, max_rows=25)
    text += (
        "\n\npaper: Rinkeby modularity 0.0106, below ER 0.082 / CM 0.073 / "
        "BA 0.053; densest of the three testnets"
    )
    emit("table9_fig8_rinkeby", text)

    assert measurement.score.precision == 1.0
    assert modularity_lower_than_baselines(table)


@pytest.mark.benchmark(group="appd")
def test_table10_fig9_goerli(benchmark, goerli_campaign):
    _, _, measurement = goerli_campaign
    table = run_once(
        benchmark,
        lambda: comparison_table(measurement.graph, "Measured", trials=10, seed=3),
    )
    distribution = degree_distribution(measurement.graph)
    text = render_comparison(table, title="Table 10 analogue (Goerli-like)")
    text += "\n\nFigure 9 analogue (degrees):\n"
    text += distribution.ascii_plot(width=30, max_rows=25)
    text += "\n\nlarge-degree nodes (Goerli's hub table):\n"
    for label, count in distribution.buckets(
        [0, 20, 40, 60, 80, 100, 1000]
    ):
        text += f"  degree {label:>9}: {count}\n"
    text += (
        "\npaper: Goerli modularity 0.048 below ER 0.132 / CM 0.125 / "
        "BA 0.084; hub nodes with >700 neighbours at full scale"
    )
    emit("table10_fig9_goerli", text)

    assert measurement.score.precision == 1.0
    assert modularity_lower_than_baselines(table)
    # Hubs: the max measured degree towers over the average.
    assert distribution.max_degree > 2.5 * distribution.average


@pytest.mark.benchmark(group="appd")
def test_appd_cross_testnet_density_ordering(
    benchmark, ropsten_campaign, rinkeby_campaign
):
    """Rinkeby is measured denser than Ropsten (avg degree ordering)."""

    def densities():
        out = {}
        for name, campaign in (
            ("ropsten", ropsten_campaign),
            ("rinkeby", rinkeby_campaign),
        ):
            _, _, measurement = campaign
            graph = measurement.graph
            n = graph.number_of_nodes()
            out[name] = 2 * graph.number_of_edges() / (n * (n - 1))
        return out

    result = run_once(benchmark, densities)
    emit(
        "appd_density_ordering",
        "\n".join(f"{name:<8} density {value:.3f}" for name, value in result.items())
        + "\n\npaper: Rinkeby avg degree 69 vs Ropsten 26 (denser)",
    )
    assert result["rinkeby"] > result["ropsten"]
