"""Ablation: background transactions on under-loaded testnets (§6.2.1).

Paper: "however low Gas price we set for txC, the transaction will always
be included in the next block, leaving no time for accurate measurement.
To overcome this problem, we launch another node that sends a number of
background transactions."

Reproduction: a testnet with an active miner and roomy blocks. Without
background traffic, txC is mined mid-measurement and the link is missed;
with the background workload keeping blocks busy above Y, the measurement
succeeds.
"""

import pytest

from benchmarks.harness import emit, run_once
from repro.core.config import MeasurementConfig
from repro.core.primitive import measure_one_link
from repro.eth.miner import Miner
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.supernode import Supernode
from repro.eth.transaction import INTRINSIC_GAS, gwei
from repro.netgen.workloads import prefill_mempools


def build(with_background: bool):
    network = Network(seed=23)
    config = NodeConfig(policy=GETH.scaled(256))
    ids = [f"n{i}" for i in range(6)]
    for node_id in ids:
        network.create_node(node_id, config)
    for i in range(len(ids)):
        network.connect(ids[i], ids[(i + 1) % len(ids)])
    network.connect("n0", "n3")
    network.chain.gas_limit = 5 * INTRINSIC_GAS
    if with_background:
        # The §6.2.1 trick: populate pools with higher-priced traffic so
        # blocks stay busy above Y and txC is never the best candidate.
        prefill_mempools(network, median_price=gwei(5.0), sigma=0.2)
    miner = Miner(network.node("n4"), network.chain, block_interval=4.0,
                  poisson=False)
    miner.start(initial_delay=4.0)
    supernode = Supernode.join(network)
    return network, supernode


def run_both():
    results = {}
    for label, with_background in (
        ("under-loaded (no background)", False),
        ("with background transactions", True),
    ):
        network, supernode = build(with_background)
        config = MeasurementConfig(gas_price_y=gwei(1.0))
        report = measure_one_link(network, supernode, "n0", "n1", config)
        results[label] = (
            report.connected,
            network.chain.is_included(report.tx_c_hash)
            or network.chain.is_included(report.tx_a_hash),
        )
    return results


@pytest.mark.benchmark(group="ablation-background")
def test_ablation_background_transactions(benchmark):
    results = run_once(benchmark, run_both)
    lines = [f"{'condition':<32} {'link found':>11} {'seed mined mid-run':>19}"]
    for label, (connected, mined) in results.items():
        lines.append(f"{label:<32} {str(connected):>11} {str(mined):>19}")
    lines.append("")
    lines.append(
        "paper: on under-loaded testnets txC is always mined immediately; "
        "background transactions keep it pending for the measurement window"
    )
    emit("ablation_background_txs", "\n".join(lines))

    no_bg = results["under-loaded (no background)"]
    with_bg = results["with background transactions"]
    assert not no_bg[0] and no_bg[1]  # missed because the seed was mined
    assert with_bg[0] and not with_bg[1]  # trick restores the measurement
