"""Helpers shared by the benchmark files (result emission, single runs)."""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def emit_metrics_sidecar(name: str, obs) -> Path:
    """Persist an observability snapshot next to a BENCH_*.json artifact.

    ``obs`` is a :class:`repro.obs.Observability`; the sidecar lands at
    ``benchmarks/results/<name>.metrics.json`` so a bench run ships its
    metric readings alongside its timing numbers.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.metrics.json"
    path.write_text(
        json.dumps(obs.snapshot(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
