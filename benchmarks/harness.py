"""Helpers shared by the benchmark files (result emission, single runs,
parallel sweep driving)."""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Callable, List, Optional, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def emit_metrics_sidecar(name: str, obs) -> Path:
    """Persist an observability snapshot next to a BENCH_*.json artifact.

    ``obs`` is a :class:`repro.obs.Observability`; the sidecar lands at
    ``benchmarks/results/<name>.metrics.json`` so a bench run ships its
    metric readings alongside its timing numbers.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.metrics.json"
    path.write_text(
        json.dumps(obs.snapshot(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def default_bench_workers() -> int:
    """Worker count for parallel sweeps: REPRO_BENCH_WORKERS, else 1.

    Benches default to serial so their timings stay comparable across
    machines; CI and impatient humans opt in via the environment.
    """
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))
    except ValueError:
        return 1


def parallel_map(
    fn: Callable, items: Sequence, workers: Optional[int] = None
) -> List:
    """Map ``fn`` over sweep points, optionally on a process pool.

    Results come back in input order regardless of completion order, so a
    sweep's output is identical for any worker count — each point must be
    an independent build-and-measure (every repro sweep point builds its
    own seeded network, so this holds by construction). ``fn`` must be a
    module-level function (picklable). ``workers=None`` consults
    :func:`default_bench_workers`; ``workers<=1`` runs serially in-process.
    """
    if workers is None:
        workers = default_bench_workers()
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform-dependent
        context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(
        max_workers=min(workers, len(items)), mp_context=context
    ) as executor:
        return list(executor.map(fn, items))


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
