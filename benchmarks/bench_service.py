"""Measurement-service load test: throughput, tail latency under abuse,
typed load shedding, and crash recovery.

Four phases, all against a real service instance on a loopback socket:

1. **Uncontended baseline** — N simulated clients (threads, one tenant
   each) submit synthetic jobs and wait for results; reports jobs/s and
   the p50/p99 submit-to-result latency.
2. **Overload with an abusive tenant** — hammer threads submit far over
   quota in a tight retry loop while honest tenants keep their modest
   rate.  Gates: the abuse is shed with *typed* rejections (429
   ``quota_exceeded``/``queue_full``), every honest job completes, and
   the honest-tenant p99 stays within ``MAX_P99_RATIO``x of the baseline
   (with a small absolute floor so sub-100ms baselines don't turn
   scheduler noise into failures).
3. **Fairness** — both tenants share one saturated executor; reports the
   honest completion share versus the flood.
4. **Crash recovery** — the service is killed without ceremony mid-queue;
   gates: the restarted service recovers every journaled job (none lost,
   none duplicated) and finishes them, reporting the wall-clock recovery
   time.

Standalone (full load, writes benchmarks/results/BENCH_service.json)::

    PYTHONPATH=src python benchmarks/bench_service.py

Pytest smoke (small fleet, same JSON artifact)::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py \
        -k smoke --benchmark-disable -q
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import platform
import sys
import threading
from pathlib import Path
from time import perf_counter, sleep

import pytest

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.harness import RESULTS_DIR, emit, run_once
from repro.errors import ServiceError
from repro.service import (
    MeasurementService,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    TenantQuota,
)

JSON_PATH = RESULTS_DIR / "BENCH_service.json"

# Gates (see docs/service.md).
MAX_P99_RATIO = 2.0     # honest p99 under abuse vs uncontended baseline
P99_FLOOR_S = 0.75      # absolute floor: ratios on tiny baselines are noise
MAX_RECOVERY_S = 30.0   # restart -> every journaled job terminal

SMOKE_SCENARIO = {
    "name": "smoke",
    "baseline_clients": 8,
    "baseline_jobs_each": 3,
    "honest_clients": 4,
    "honest_jobs_each": 3,
    "abusive_threads": 3,
    "recovery_queued": 6,
    "max_concurrent": 4,
}
FULL_SCENARIO = {
    "name": "full",
    "baseline_clients": 200,
    "baseline_jobs_each": 2,
    "honest_clients": 20,
    "honest_jobs_each": 5,
    "abusive_threads": 8,
    "recovery_queued": 40,
    "max_concurrent": max(4, (os.cpu_count() or 4)),
}

_JOB_PARAMS = {"steps": 1, "step_duration": 0.005}


# ----------------------------------------------------------------------
# Service-in-a-thread harness
# ----------------------------------------------------------------------
class ServiceThread:
    """Run a MeasurementService on its own event loop in a daemon thread.

    ``stop("graceful")`` is the SIGTERM path (drain + journal);
    ``stop("crash")`` kills the coroutines without any drain courtesy —
    the closest single-process stand-in for SIGKILL (journal appends are
    already fsynced, nothing else is written).
    """

    def __init__(self, config: ServiceConfig) -> None:
        self._config = config
        self._ready = threading.Event()
        self._mode = "graceful"
        self.service: MeasurementService = None  # type: ignore[assignment]
        self.loop: asyncio.AbstractEventLoop = None  # type: ignore[assignment]
        self._stopped: asyncio.Event = None  # type: ignore[assignment]
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServiceError("service thread failed to start")

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.service = MeasurementService(self._config)
        await self.service.start()
        self.loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._ready.set()
        await self._stopped.wait()
        if self._mode == "graceful":
            await self.service.shutdown()
        else:
            svc = self.service
            svc._stopping = True
            if svc._dispatcher is not None:
                svc._dispatcher.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await svc._dispatcher
            if svc._tasks:
                await asyncio.gather(*list(svc._tasks), return_exceptions=True)
            svc._server.close()
            await svc._server.wait_closed()

    def freeze_dispatch(self) -> None:
        """Stop handing out executor slots (keeps new jobs queued)."""
        self.loop.call_soon_threadsafe(setattr, self.service, "_slots", 0)

    def stop(self, mode: str = "graceful") -> None:
        self._mode = mode
        self.loop.call_soon_threadsafe(self._stopped.set)
        self._thread.join(timeout=120)


def _generous_config(state_dir, scenario) -> ServiceConfig:
    return ServiceConfig(
        state_dir=state_dir,
        max_concurrent=scenario["max_concurrent"],
        max_running_per_tenant=2,
        default_quota=TenantQuota(
            jobs_per_second=1000.0, job_burst=1000.0,
            node_seconds_per_second=1e6, node_seconds_burst=1e6,
            max_queued=1000,
        ),
        global_jobs_per_second=5000.0,
        global_job_burst=5000.0,
        max_queued_total=5000,
        journal_fsync=False,  # measuring scheduling, not disk syncs
    )


def _percentile(samples, q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _run_clients(n_clients: int, worker) -> list:
    """Run ``worker(client_index, out_list)`` in one thread per client."""
    outputs = [[] for _ in range(n_clients)]
    threads = [
        threading.Thread(target=worker, args=(i, outputs[i]), daemon=True)
        for i in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    return outputs


# ----------------------------------------------------------------------
# Phase 1+: baseline throughput / latency
# ----------------------------------------------------------------------
def bench_baseline(state_dir, scenario) -> dict:
    harness = ServiceThread(_generous_config(state_dir, scenario))
    try:
        def client_worker(index: int, out: list) -> None:
            client = ServiceClient.from_state_dir(state_dir)
            for _ in range(scenario["baseline_jobs_each"]):
                start = perf_counter()
                job = client.submit(
                    tenant=f"client-{index}", kind="synthetic",
                    params=_JOB_PARAMS,
                )
                record = client.wait(job["spec"]["job_id"], timeout=120)
                assert record["state"] == "done", record
                out.append(perf_counter() - start)

        wall_start = perf_counter()
        latencies = [
            latency
            for out in _run_clients(scenario["baseline_clients"], client_worker)
            for latency in out
        ]
        wall = perf_counter() - wall_start
    finally:
        harness.stop("graceful")
    total = scenario["baseline_clients"] * scenario["baseline_jobs_each"]
    assert len(latencies) == total
    return {
        "clients": scenario["baseline_clients"],
        "jobs": total,
        "wall_s": round(wall, 3),
        "jobs_per_second": round(total / wall, 2),
        "p50_s": round(_percentile(latencies, 0.50), 4),
        "p99_s": round(_percentile(latencies, 0.99), 4),
    }


# ----------------------------------------------------------------------
# Phase 2+3: overload with an abusive tenant
# ----------------------------------------------------------------------
def bench_overload(state_dir, scenario, baseline: dict) -> dict:
    config = ServiceConfig(
        state_dir=state_dir,
        max_concurrent=scenario["max_concurrent"],
        max_running_per_tenant=max(1, scenario["max_concurrent"] // 2),
        # Tight enough that the flood sheds, roomy enough that honest
        # tenants (~1 job in flight each) never hit their own quota.
        default_quota=TenantQuota(
            jobs_per_second=20.0, job_burst=20.0,
            node_seconds_per_second=1e6, node_seconds_burst=1e6,
            max_queued=10,
        ),
        global_jobs_per_second=200.0,
        global_job_burst=200.0,
        max_queued_total=100,
        journal_fsync=False,
    )
    harness = ServiceThread(config)
    stop_abuse = threading.Event()
    abuse_stats = {"accepted": 0, "rejected": 0, "other_errors": 0}
    abuse_lock = threading.Lock()

    def abuser(_index: int, _out: list) -> None:
        client = ServiceClient.from_state_dir(state_dir)
        while not stop_abuse.is_set():
            try:
                client.submit(
                    tenant="abuser", kind="synthetic", params=_JOB_PARAMS
                )
                with abuse_lock:
                    abuse_stats["accepted"] += 1
            except ServiceClientError as exc:
                ok = exc.status == 429 and exc.error_type in (
                    "quota_exceeded", "queue_full",
                )
                with abuse_lock:
                    abuse_stats["rejected" if ok else "other_errors"] += 1
            except ServiceError:
                with abuse_lock:
                    abuse_stats["other_errors"] += 1

    try:
        abuse_threads = [
            threading.Thread(target=abuser, args=(i, None), daemon=True)
            for i in range(scenario["abusive_threads"])
        ]
        for thread in abuse_threads:
            thread.start()
        sleep(0.3)  # let the flood saturate the queue first

        def honest_worker(index: int, out: list) -> None:
            client = ServiceClient.from_state_dir(state_dir)
            for _ in range(scenario["honest_jobs_each"]):
                start = perf_counter()
                job = None
                while job is None:
                    try:
                        job = client.submit(
                            tenant=f"honest-{index}", kind="synthetic",
                            params=_JOB_PARAMS,
                        )
                    except ServiceClientError as exc:
                        # Honest clients respect the typed backoff hint.
                        sleep(exc.retry_after or 0.1)
                record = client.wait(job["spec"]["job_id"], timeout=120)
                assert record["state"] == "done", record
                out.append(perf_counter() - start)

        honest_latencies = [
            latency
            for out in _run_clients(scenario["honest_clients"], honest_worker)
            for latency in out
        ]
        stop_abuse.set()
        for thread in abuse_threads:
            thread.join(timeout=30)
        stats = ServiceClient.from_state_dir(state_dir).metrics()["service"]
    finally:
        stop_abuse.set()
        harness.stop("graceful")

    honest_total = scenario["honest_clients"] * scenario["honest_jobs_each"]
    assert len(honest_latencies) == honest_total
    honest_p99 = _percentile(honest_latencies, 0.99)
    completed = stats["jobs_by_state"].get("done", 0)
    fairness_share = honest_total / completed if completed else 0.0
    return {
        "honest": {
            "clients": scenario["honest_clients"],
            "jobs": honest_total,
            "p50_s": round(_percentile(honest_latencies, 0.50), 4),
            "p99_s": round(honest_p99, 4),
            "p99_ratio_vs_baseline": round(
                honest_p99 / baseline["p99_s"], 2
            ) if baseline["p99_s"] else None,
        },
        "abusive": dict(abuse_stats),
        "service_rejected": stats["rejected"],
        "fairness": {
            "completed_total": completed,
            "honest_share": round(fairness_share, 3),
        },
    }


# ----------------------------------------------------------------------
# Phase 4: crash recovery
# ----------------------------------------------------------------------
def bench_recovery(state_dir, scenario) -> dict:
    harness = ServiceThread(_generous_config(state_dir, scenario))
    client = ServiceClient.from_state_dir(state_dir)
    try:
        done = client.submit(tenant="t", kind="synthetic", params=_JOB_PARAMS)
        client.wait(done["spec"]["job_id"], timeout=60)
        harness.freeze_dispatch()
        queued_ids = [
            client.submit(
                tenant="t", kind="synthetic", params=_JOB_PARAMS,
                job_id=f"t-recover{n}",
            )["spec"]["job_id"]
            for n in range(scenario["recovery_queued"])
        ]
    finally:
        harness.stop("crash")

    restart_start = perf_counter()
    harness2 = ServiceThread(_generous_config(state_dir, scenario))
    try:
        client2 = ServiceClient.from_state_dir(state_dir)
        for job_id in queued_ids:
            record = client2.wait(job_id, timeout=MAX_RECOVERY_S)
            assert record["state"] == "done", record
            assert record["recovered"], record
        recovery_s = perf_counter() - restart_start
        jobs = client2.jobs()
        old = client2.job(done["spec"]["job_id"])
    finally:
        harness2.stop("graceful")
    assert old["state"] == "done", "finished result lost across the crash"
    assert len(jobs) == 1 + len(queued_ids), "jobs lost or duplicated"
    return {
        "queued_at_crash": len(queued_ids),
        "recovered": len(queued_ids),
        "recovery_s": round(recovery_s, 3),
    }


# ----------------------------------------------------------------------
# Reporting / gates
# ----------------------------------------------------------------------
def write_results(sections: dict, kind: str) -> dict:
    payload = {
        "benchmark": "service",
        "kind": kind,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "gates": {
            "max_p99_ratio": MAX_P99_RATIO,
            "p99_floor_s": P99_FLOOR_S,
            "max_recovery_s": MAX_RECOVERY_S,
        },
        **sections,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def format_report(sections: dict) -> str:
    baseline = sections["baseline"]
    overload = sections["overload"]
    recovery = sections["recovery"]
    lines = [
        f"baseline : {baseline['jobs']} jobs from {baseline['clients']} "
        f"clients at {baseline['jobs_per_second']:.1f} jobs/s "
        f"(p50 {baseline['p50_s']*1000:.0f}ms, p99 {baseline['p99_s']*1000:.0f}ms)",
        f"overload : honest p99 {overload['honest']['p99_s']*1000:.0f}ms "
        f"({overload['honest']['p99_ratio_vs_baseline']}x baseline); "
        f"abusive flood: {overload['abusive']['accepted']} accepted, "
        f"{overload['abusive']['rejected']} shed with typed 429s",
        f"fairness : honest share of completed work "
        f"{overload['fairness']['honest_share']:.0%} "
        f"({overload['fairness']['completed_total']} jobs completed)",
        f"recovery : {recovery['recovered']}/{recovery['queued_at_crash']} "
        f"journaled jobs recovered in {recovery['recovery_s']:.2f}s",
    ]
    return "\n".join(lines)


def check_gates(sections: dict) -> None:
    overload = sections["overload"]
    baseline = sections["baseline"]
    recovery = sections["recovery"]
    assert overload["abusive"]["rejected"] > 0, (
        "the abusive flood was never shed: admission control is not binding"
    )
    assert overload["abusive"]["other_errors"] == 0, (
        f"abuse produced untyped errors: {overload['abusive']}"
    )
    honest_p99 = overload["honest"]["p99_s"]
    bound = max(MAX_P99_RATIO * baseline["p99_s"], P99_FLOOR_S)
    assert honest_p99 <= bound, (
        f"honest-tenant p99 {honest_p99:.3f}s exceeds "
        f"{MAX_P99_RATIO}x baseline ({baseline['p99_s']:.3f}s, "
        f"floor {P99_FLOOR_S}s)"
    )
    assert recovery["recovered"] == recovery["queued_at_crash"]
    assert recovery["recovery_s"] <= MAX_RECOVERY_S


def run_scenario(scenario: dict, root: Path) -> dict:
    sections = {}
    sections["baseline"] = bench_baseline(root / "baseline", scenario)
    sections["overload"] = bench_overload(
        root / "overload", scenario, sections["baseline"]
    )
    sections["recovery"] = bench_recovery(root / "recovery", scenario)
    return sections


@pytest.mark.benchmark(group="service")
def test_service_smoke(benchmark, tmp_path):
    """CI smoke: shed the flood with typed 429s, keep the honest tenant's
    tail latency bounded, and recover every journaled job after a crash."""
    sections = run_once(
        benchmark, lambda: run_scenario(SMOKE_SCENARIO, tmp_path)
    )
    write_results(sections, kind="smoke")
    emit("service_smoke", format_report(sections))
    check_gates(sections)


def main() -> int:
    import tempfile

    scenario = FULL_SCENARIO
    print(
        f"[service] load test: {scenario['baseline_clients']} baseline "
        f"clients, {scenario['abusive_threads']} abuse threads, "
        f"{scenario['recovery_queued']} jobs through a crash"
    )
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        sections = run_scenario(scenario, Path(tmp))
    write_results(sections, kind="full")
    emit("service", format_report(sections))
    try:
        check_gates(sections)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print("OK: all service gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
