"""Multi-core campaign execution: wall-clock vs worker count, and the
snapshot/reset cache vs full regeneration.

Two claims are measured and gated:

1. **Sharded speedup** — a multi-seed fig5-style sweep (one campaign per
   seed) runs serially (``workers=1``) and on a process pool; the merged
   measurement must be bit-identical for every worker count (that part is
   asserted always), and on a machine with >= 4 cores the 4-worker run
   must finish >= 1.7x faster than the serial one.
2. **Snapshot/reset** — resetting a campaign replica to its post-setup
   snapshot must be >= 3x faster than rebuilding the replica from the
   spec, which is what turns per-shard setup from O(network build) into
   O(state restore).

Standalone (full sweep, writes benchmarks/results/BENCH_parallel.json)::

    PYTHONPATH=src python benchmarks/bench_parallel_exec.py

Pytest smoke (small network, 2 workers vs serial, same JSON artifact)::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_exec.py \
        -k smoke --benchmark-disable -q
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from time import perf_counter

import pytest

if __package__ in (None, ""):
    # Standalone `python benchmarks/bench_parallel_exec.py`: put the repo
    # root on sys.path so the `benchmarks` package resolves.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.harness import RESULTS_DIR, emit, emit_metrics_sidecar, run_once
from repro.core.parallel_exec import (
    CampaignReplica,
    CampaignSpec,
    ShardSpec,
    run_campaign,
)
from repro.netgen.ethereum import NetworkSpec
from repro.obs import Observability
from repro.sim.rng import spawn_seed

JSON_PATH = RESULTS_DIR / "BENCH_parallel.json"

# Gates. The worker-speedup gate only binds on machines that actually have
# the cores; the snapshot gate is architectural and holds everywhere.
MIN_SPEEDUP_4W = 1.7
MIN_SETUP_SPEEDUP = 3.0

SMOKE_SCENARIO = {
    "name": "smoke",
    "n_nodes": 14,
    "seeds": (3,),
    "shards": 4,
    "worker_counts": (1, 2),
}
FULL_SCENARIO = {
    "name": "full",
    "n_nodes": 18,
    "seeds": (3, 5, 7),
    "shards": 8,
    "worker_counts": (1, 2, 4),
}


def _campaign(n_nodes: int, seed: int, shards: int) -> CampaignSpec:
    return CampaignSpec(
        network=NetworkSpec(n_nodes=n_nodes, seed=seed),
        prefill=False,
        n_shards=shards,
    )


def run_sweep(scenario: dict, workers: int, obs=None) -> dict:
    """One fig5-style multi-seed sweep at a fixed worker count."""
    start = perf_counter()
    results = {}
    for seed in scenario["seeds"]:
        measurement = run_campaign(
            _campaign(scenario["n_nodes"], seed, scenario["shards"]),
            workers=workers,
            obs=obs,
        )
        results[seed] = measurement
    return {
        "workers": workers,
        "wall_s": round(perf_counter() - start, 3),
        "measurements": results,
    }


def bench_workers(scenario: dict, obs=None) -> dict:
    """Run the sweep at every worker count and cross-check bit-identity."""
    runs = [
        run_sweep(scenario, workers, obs=obs if workers == 1 else None)
        for workers in scenario["worker_counts"]
    ]
    baseline = runs[0]
    for run in runs[1:]:
        for seed, measurement in run["measurements"].items():
            reference = baseline["measurements"][seed]
            assert measurement.edges == reference.edges, (
                f"seed {seed}: {run['workers']}-worker edges differ from "
                "serial — sharded execution is not deterministic"
            )
            assert str(measurement.score) == str(reference.score), seed
            assert measurement.duration == reference.duration, seed
    rows = [
        {
            "workers": run["workers"],
            "wall_s": run["wall_s"],
            "speedup": round(baseline["wall_s"] / run["wall_s"], 2),
            "edges": {
                str(seed): len(m.edges)
                for seed, m in sorted(run["measurements"].items())
            },
        }
        for run in runs
    ]
    return {
        "scenario": {k: v for k, v in scenario.items() if k != "name"},
        "runs": rows,
    }


def bench_snapshot_reset(scenario: dict, repetitions: int = 3) -> dict:
    """Per-shard setup cost: full replica rebuild vs snapshot restore."""
    campaign = _campaign(
        scenario["n_nodes"], scenario["seeds"][0], scenario["shards"]
    )
    build_times = []
    replica = None
    for _ in range(repetitions):
        start = perf_counter()
        replica = CampaignReplica(campaign)
        build_times.append(perf_counter() - start)
    # Dirty the world once so every timed _reset below actually restores.
    shard = ShardSpec(
        campaign=campaign,
        index=0,
        n_shards=scenario["shards"],
        start=0,
        stop=1,
    )
    replica.run_shard(shard)
    restore_times = []
    for index in range(repetitions):
        start = perf_counter()
        replica._reset(spawn_seed(campaign.seed, "bench-reset", index))
        restore_times.append(perf_counter() - start)
    build_mean = sum(build_times) / len(build_times)
    restore_mean = sum(restore_times) / len(restore_times)
    return {
        "build_mean_s": round(build_mean, 4),
        "restore_mean_s": round(restore_mean, 4),
        "setup_speedup": round(build_mean / restore_mean, 2),
    }


def write_results(workers_section: dict, snapshot_section: dict, kind: str) -> dict:
    payload = {
        "benchmark": "parallel_exec",
        "kind": kind,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "min_speedup_4w": MIN_SPEEDUP_4W,
        "min_setup_speedup": MIN_SETUP_SPEEDUP,
        "workers": workers_section,
        "snapshot_reset": snapshot_section,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def format_table(workers_section: dict, snapshot_section: dict) -> str:
    lines = [f"{'workers':>8} {'wall (s)':>10} {'speedup':>8}"]
    for row in workers_section["runs"]:
        lines.append(
            f"{row['workers']:>8} {row['wall_s']:>10.2f} "
            f"{row['speedup']:>7.2f}x"
        )
    lines.append("")
    lines.append(
        f"snapshot/reset: build {snapshot_section['build_mean_s']*1000:.0f}ms "
        f"vs restore {snapshot_section['restore_mean_s']*1000:.0f}ms "
        f"({snapshot_section['setup_speedup']:.1f}x)"
    )
    return "\n".join(lines)


def _check_gates(workers_section: dict, snapshot_section: dict) -> None:
    assert snapshot_section["setup_speedup"] >= MIN_SETUP_SPEEDUP, (
        f"snapshot restore is only {snapshot_section['setup_speedup']}x "
        f"faster than a rebuild (need {MIN_SETUP_SPEEDUP}x)"
    )
    by_workers = {row["workers"]: row for row in workers_section["runs"]}
    if 4 in by_workers and (os.cpu_count() or 1) >= 4:
        assert by_workers[4]["speedup"] >= MIN_SPEEDUP_4W, (
            f"4-worker speedup {by_workers[4]['speedup']}x < "
            f"{MIN_SPEEDUP_4W}x on a {os.cpu_count()}-core machine"
        )


@pytest.mark.benchmark(group="parallel-exec")
def test_parallel_exec_smoke(benchmark):
    """CI smoke: 2 workers on a small network must reproduce the serial
    edge set exactly; the snapshot cache must beat regeneration."""
    obs = Observability()

    def run():
        return (
            bench_workers(SMOKE_SCENARIO, obs=obs),
            bench_snapshot_reset(SMOKE_SCENARIO),
        )

    workers_section, snapshot_section = run_once(benchmark, run)
    write_results(workers_section, snapshot_section, kind="smoke")
    emit("parallel_exec_smoke", format_table(workers_section, snapshot_section))
    emit_metrics_sidecar("BENCH_parallel", obs)
    _check_gates(workers_section, snapshot_section)


def main() -> int:
    obs = Observability()
    print(
        f"[parallel-exec] sweep: {FULL_SCENARIO['n_nodes']} nodes, "
        f"seeds {FULL_SCENARIO['seeds']}, workers {FULL_SCENARIO['worker_counts']} "
        f"(cpu_count={os.cpu_count()})"
    )
    workers_section = bench_workers(FULL_SCENARIO, obs=obs)
    for row in workers_section["runs"]:
        print(
            f"  workers={row['workers']}: {row['wall_s']:.2f}s "
            f"({row['speedup']:.2f}x)"
        )
    snapshot_section = bench_snapshot_reset(FULL_SCENARIO)
    print(
        f"  snapshot/reset: {snapshot_section['setup_speedup']:.1f}x faster "
        "than rebuild"
    )
    write_results(workers_section, snapshot_section, kind="full")
    emit("parallel_exec", format_table(workers_section, snapshot_section))
    emit_metrics_sidecar("BENCH_parallel", obs)
    try:
        _check_gates(workers_section, snapshot_section)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print("OK: all parallel-exec gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
