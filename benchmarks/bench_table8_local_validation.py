"""Table 8 (Appendix B): local validation of the parallel method.

Paper: four locally controlled nodes (M, A1, A2, B); all six distinct link
configurations among {A1, A2, B} are measured with the parallel method
(sources {A1, A2}, sink {B}); every configuration yields 100% recall and
100% precision — including when A1--A2 are themselves connected, the case
where theoretical inter-source interference could occur.
"""


import pytest

from benchmarks.harness import emit, run_once
from repro.core.config import MeasurementConfig
from repro.core.parallel import measure_par_with_repeats
from repro.core.results import edge, score_edges
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.supernode import Supernode
from repro.eth.transaction import gwei
from repro.netgen.workloads import prefill_mempools, refresh_mempools

# The six configurations of Table 8 (edges among a1, a2, b).
CONFIGURATIONS = [
    ("a1-a2, a1-b, a2-b", {("a1", "a2"), ("a1", "b"), ("a2", "b")}),
    ("a1-a2, a1-b", {("a1", "a2"), ("a1", "b")}),
    ("a1-a2", {("a1", "a2")}),
    ("a1-b, a2-b", {("a1", "b"), ("a2", "b")}),
    ("a1-b", {("a1", "b")}),
    ("null", set()),
]


def measure_configuration(links):
    network = Network(seed=77)
    config = NodeConfig(policy=GETH.scaled(256))
    for name in ("a1", "a2", "b", "c1", "c2"):
        network.create_node(name, config)
    # Background connectivity so the network is connected regardless of
    # the configuration under test.
    for name in ("a1", "a2", "b"):
        network.connect(name, "c1")
        network.connect(name, "c2")
    network.connect("c1", "c2")
    for a, b in links:
        network.connect(a, b)
    prefill_mempools(network, median_price=gwei(1.0))
    supernode = Supernode.join(network)
    mc = MeasurementConfig.for_policy(GETH.scaled(256)).with_repeats(3)
    report = measure_par_with_repeats(
        network,
        supernode,
        [("a1", "b"), ("a2", "b")],
        mc,
        refresh=lambda: refresh_mempools(network, median_price=gwei(1.0)),
    )
    truth = {edge(a, b) for a, b in links if "b" in (a, b)}
    return score_edges(report.detected, truth)


def run_all():
    return [
        (label, measure_configuration(links))
        for label, links in CONFIGURATIONS
    ]


@pytest.mark.benchmark(group="table8")
def test_table8_local_parallel_validation(benchmark):
    results = run_once(benchmark, run_all)
    lines = [f"{'configuration':<24} {'recall':>7} {'precision':>10}"]
    for label, score in results:
        lines.append(f"{label:<24} {score.recall:>7.0%} {score.precision:>10.0%}")
        assert score.recall == 1.0, label
        assert score.precision == 1.0, label
    lines.append("")
    lines.append("paper: 100% recall and precision in all six configurations")
    emit("table8_local_validation", "\n".join(lines))
