"""Extension: how TopoShot's cost scales with network size.

Not a paper table — the paper quotes only the quadratic pair count and the
$60M price tag — but the question a deployer asks first: as N grows, how do
iterations, injected transactions, network messages and measurement time
scale? Expectation from the design: pairs grow ~N^2, iterations ~N/K +
log K, and per-iteration cost ~N·Z, so injected transactions scale roughly
quadratically while time scales ~linearly in the iteration count.

``SIZES`` is the full curve (up to 96 nodes — every pair measured, so cost
grows quadratically and the top size dominates the runtime). CI runs the
``SMOKE_SIZES`` subset by default; set ``BENCH_EXT_FULL=1`` to sweep the
whole curve locally.
"""

import os

import pytest

from benchmarks.harness import emit, parallel_map, run_once
from repro.core.campaign import TopoShot
from repro.netgen.ethereum import NetworkSpec, generate_network
from repro.netgen.workloads import prefill_mempools

SIZES = (10, 16, 24, 32, 48, 64, 96)
SMOKE_SIZES = (10, 16, 24, 32)


def measure_at(n: int):
    network = generate_network(
        NetworkSpec(n_nodes=n, seed=6, mempool_capacity=256)
    )
    prefill_mempools(network)
    before_messages = network.messages_sent
    shot = TopoShot.attach(network)
    measurement = shot.measure_network(preprocess=False)
    return {
        "n": n,
        "pairs": n * (n - 1) // 2,
        "iterations": measurement.iterations,
        "txs": measurement.transactions_sent,
        "messages": network.messages_sent - before_messages,
        "sim_time": measurement.duration,
        "recall": measurement.score.recall,
        "precision": measurement.score.precision,
    }


@pytest.mark.benchmark(group="ext-scaling")
def test_extension_cost_scaling(benchmark):
    sizes = SIZES if os.environ.get("BENCH_EXT_FULL") else SMOKE_SIZES
    rows = run_once(benchmark, lambda: parallel_map(measure_at, sizes))
    header = (
        f"{'N':>4} {'pairs':>6} {'iters':>6} {'txs injected':>13} "
        f"{'messages':>9} {'sim time':>9} {'prec':>6} {'recall':>7}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row['n']:>4} {row['pairs']:>6} {row['iterations']:>6} "
            f"{row['txs']:>13} {row['messages']:>9} "
            f"{row['sim_time']:>8.0f}s {row['precision']:>6.2f} "
            f"{row['recall']:>7.2f}"
        )
    first, last = rows[0], rows[-1]
    n_ratio = last["n"] / first["n"]
    tx_ratio = last["txs"] / first["txs"]
    time_ratio = last["sim_time"] / first["sim_time"]
    lines.append("")
    lines.append(
        f"N x{n_ratio:.1f} -> injected txs x{tx_ratio:.1f} "
        f"(~quadratic), sim time x{time_ratio:.1f} (~iteration count)"
    )
    emit("ext_scaling", "\n".join(lines))

    for row in rows:
        assert row["precision"] == 1.0
    # Transactions scale super-linearly (towards quadratic)...
    assert tx_ratio > n_ratio
    # ...while time tracks the much-slower iteration growth.
    assert time_ratio < tx_ratio
