"""Figure 4a: recall grows with the number of future transactions (Z).

Paper: validating the serial primitive against a controlled node B in
Ropsten, recall climbs from 84% to 97% as the flood grows, because some
targets run larger-than-default mempools that a small Z cannot flush.

Reproduction: a heterogeneous testnet (some nodes with 2.2x pools, some
with custom R / silent behaviour that no Z can fix) measured at a sweep of
Z values; recall must increase monotonically-ish with Z and plateau below
100%.
"""

import pytest

from benchmarks.harness import emit, parallel_map, run_once
from repro.core.campaign import TopoShot
from repro.netgen.ethereum import NetworkSpec, generate_network
from repro.netgen.workloads import prefill_mempools

SPEC = NetworkSpec(
    n_nodes=24,
    seed=5,
    mempool_capacity=256,
    fraction_custom_capacity=0.20,
    custom_capacity_factor=2.2,
    fraction_custom_bump=0.04,
    fraction_non_relaying=0.04,
)
Z_SWEEP = (128, 192, 256, 384, 512, 640)


def _measure_z(z: int):
    # Module-level so parallel_map can ship it to worker processes; each
    # sweep point builds its own seeded network, so points are independent.
    network = generate_network(SPEC)
    prefill_mempools(network)
    shot = TopoShot.attach(network)
    shot.config = shot.config.with_future_count(z).with_repeats(2)
    return shot.measure_network().score


def sweep():
    return list(zip(Z_SWEEP, parallel_map(_measure_z, Z_SWEEP)))


@pytest.mark.benchmark(group="fig4a")
def test_fig4a_recall_vs_future_transactions(benchmark):
    results = run_once(benchmark, sweep)
    lines = [f"{'Z (future txs)':>15} {'recall':>8} {'precision':>10}"]
    recalls = []
    for z, score in results:
        lines.append(f"{z:>15} {score.recall:>8.3f} {score.precision:>10.3f}")
        recalls.append(score.recall)
        assert score.precision == 1.0  # precision never degrades with Z
    lines.append("")
    lines.append(
        "paper: recall 84% -> 97% with growing Z, never reaching 100% "
        "(nodes with custom R or silent forwarding remain invisible)"
    )
    emit("fig4a_recall_vs_future_txs", "\n".join(lines))
    # Shape assertions: recall rises from the small-Z end to the large-Z
    # end and plateaus strictly below 1.0.
    assert recalls[-1] > recalls[0]
    assert recalls[-1] < 1.0
    assert recalls[-1] >= 0.85
