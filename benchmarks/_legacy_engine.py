"""Pre-optimization ("legacy") hot-path implementations, for benchmarking.

These are faithful copies of the simulation hot paths as they stood before
the performance overhaul (repo revision 516007c): the ``@dataclass(order=True)``
event heap, closure-per-message scheduling, per-broadcast peer rescans,
unbounded per-peer known-tx sets and the un-cached mempool admission chain.

``legacy_hot_paths()`` swaps them onto the live classes so
``bench_engine_throughput.py`` can run the *same scenario* through both
implementations in one process and report an honest speedup. Nothing in the
library imports this module.

Two deliberate deviations from the seed, both neutral or favorable to the
legacy side of the comparison:

- ``_add_inner`` normalizes the confirmed-nonce provider with ``or 0``
  (nodes now hand the pool a raw ``dict.get``, which returns ``None``);
- ``schedule_at`` accepts and *drops* a ``daemon`` flag, reproducing the
  seed scheduling bug this PR fixes, so seed-era callers keep working.
"""

from __future__ import annotations

import contextlib
import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import ScheduleInPastError, SimulationError
from repro.eth.mempool import AddOutcome, AddResult
from repro.eth.messages import (
    FindNode,
    GetPooledTransactions,
    Neighbors,
    NewBlock,
    NewPooledTransactionHashes,
    PooledTransactions,
    Status,
    Transactions,
)
from repro.sim.rng import RngRegistry
from repro.sim.tracing import Tracer


# ----------------------------------------------------------------------
# Seed engine: dataclass events compared by the generated __lt__
# ----------------------------------------------------------------------
@dataclass(order=True)
class LegacyEvent:
    """The seed's heap entry: ordering via dataclass-generated comparison."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    daemon: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class LegacySimulator:
    """The seed's Simulator, verbatim except for the tolerances above."""

    def __init__(self, seed: int = 0, trace: bool = False) -> None:
        self._now = 0.0
        self._queue: List[LegacyEvent] = []
        self._seq = itertools.count()
        self._executed = 0
        self._non_daemon_pending = 0
        self.rng = RngRegistry(seed)
        self.seed = seed
        self.tracer: Optional[Tracer] = Tracer() if trace else None
        self.profiler = None  # engine profiling did not exist in the seed

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def executed_events(self) -> int:
        return self._executed

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        label: str = "",
        daemon: bool = False,
        args: Tuple = (),
    ) -> LegacyEvent:
        if delay < 0:
            raise ScheduleInPastError(
                f"cannot schedule {delay:.6f}s in the past (now={self._now:.6f})"
            )
        if args:
            # The seed API had no `args`; emulate with the closure the seed
            # callers allocated themselves.
            inner = callback
            callback = lambda: inner(*args)  # noqa: E731
        event = LegacyEvent(
            self._now + delay, next(self._seq), callback, label, daemon=daemon
        )
        heapq.heappush(self._queue, event)
        if not daemon:
            self._non_daemon_pending += 1
        return event

    def schedule_call(
        self,
        delay: float,
        callback: Callable[..., None],
        label: str = "",
        args: Tuple = (),
    ) -> None:
        # Post-seed API, kept so Network.__init__ can bind it even in
        # legacy mode. The legacy send() (patched wholesale) never calls
        # it; routing through schedule() keeps semantics identical.
        self.schedule(delay, callback, label, False, args)

    def schedule_at(
        self,
        when: float,
        callback: Callable[..., None],
        label: str = "",
        daemon: bool = False,
        args: Tuple = (),
    ) -> LegacyEvent:
        # Seed bug, reproduced on purpose: `daemon` is dropped.
        return self.schedule(when - self._now, callback, label, args=args)

    def step(self) -> bool:
        while self._queue:
            event = heapq.heappop(self._queue)
            if not event.daemon:
                self._non_daemon_pending -= 1
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError(
                    f"event at t={event.time} popped after clock t={self._now}"
                )
            self._now = event.time
            if self.tracer is not None:
                self.tracer.record(self._now, "event", event.label)
            event.callback()
            self._executed += 1
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                return
            if until is None and self._non_daemon_pending <= 0:
                return
            next_event = self._peek()
            if next_event is None:
                break
            if until is not None and next_event.time > until:
                self._now = max(self._now, until)
                return
            if self.step():
                executed += 1
        if until is not None:
            self._now = max(self._now, until)

    def run_for(self, duration: float, max_events: Optional[int] = None) -> None:
        self.run(until=self._now + duration, max_events=max_events)

    def _peek(self) -> Optional[LegacyEvent]:
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                if not event.daemon:
                    self._non_daemon_pending -= 1
                continue
            return event
        return None


# ----------------------------------------------------------------------
# Seed node hot paths (module-level functions patched in as methods)
# ----------------------------------------------------------------------
def _legacy_handle_message(self, from_id, msg):
    if isinstance(msg, (Transactions, PooledTransactions)):
        for tx in msg.txs:
            self.receive_transaction(from_id, tx)
    elif isinstance(msg, NewPooledTransactionHashes):
        self._handle_announcement(from_id, msg)
    elif isinstance(msg, GetPooledTransactions):
        self._handle_tx_request(from_id, msg)
    elif isinstance(msg, NewBlock):
        self.receive_block(from_id, msg.block)
    elif isinstance(msg, FindNode):
        self._send(from_id, Neighbors(node_ids=tuple(self.routing_table)))
    elif isinstance(msg, Status):
        self.peer_versions[from_id] = msg.client_version
    elif isinstance(msg, Neighbors):
        pass
    else:  # pragma: no cover - defensive
        raise TypeError(f"unhandled message type {type(msg).__name__}")


def _legacy_mark_known(self, peer_id, tx_hash):
    state = self.peers.get(peer_id)
    if state is not None:
        state.known_txs.add(tx_hash)  # unbounded, as in the seed


def _legacy_receive_transaction(self, from_id, tx):
    if from_id is not None:
        self._mark_known(from_id, tx.hash)
    result = self.mempool.add(tx)
    for observer in self.tx_observers:
        observer(from_id or "", tx, result)
    if (
        self.config.echoes_future_to_sender
        and from_id is not None
        and from_id in self.peers
        and result.admitted
        and not result.is_pending
    ):
        self._send(from_id, Transactions(txs=(tx,)))
    if self.config.relays_transactions:
        self._relay(result)
    return result


def _legacy_relay(self, result):
    to_broadcast = []
    if result.propagatable:
        to_broadcast.append(result.tx)
    elif result.admitted and self.config.forwards_future:
        to_broadcast.append(result.tx)
    to_broadcast.extend(result.promoted)
    for tx in to_broadcast:
        self.broadcast_transaction(tx)


def _legacy_broadcast_transaction(self, tx):
    unaware = [p for p, s in self.peers.items() if tx.hash not in s.known_txs]
    if not unaware:
        return
    if self.config.announce_only:
        push_targets = []
        announce_targets = unaware
    elif self.config.push_to_all or not self.config.announce_enabled:
        push_targets = unaware
        announce_targets = []
    else:
        self._rng.shuffle(unaware)
        n_push = max(1, math.ceil(math.sqrt(len(self.peers))))
        push_targets = unaware[:n_push]
        announce_targets = unaware[n_push:]
    for peer_id in push_targets:
        self._mark_known(peer_id, tx.hash)
        self._push_queue.setdefault(peer_id, []).append(tx)
    for peer_id in announce_targets:
        self._mark_known(peer_id, tx.hash)
        self._announce_queue.setdefault(peer_id, []).append(tx.hash)
    self._schedule_flush()


def _legacy_schedule_flush(self):
    if self._flush_scheduled:
        return
    self._flush_scheduled = True
    self.sim.schedule(
        self.config.broadcast_interval, self._flush, label=f"flush:{self.id}"
    )


def _legacy_flush(self):
    self._flush_scheduled = False
    push_queue, self._push_queue = self._push_queue, {}
    announce_queue, self._announce_queue = self._announce_queue, {}
    for peer_id, txs in push_queue.items():
        if peer_id in self.peers:
            self._send(peer_id, Transactions(txs=tuple(txs)))
    for peer_id, hashes in announce_queue.items():
        if peer_id in self.peers:
            self._send(peer_id, NewPooledTransactionHashes(hashes=tuple(hashes)))


def _legacy_handle_announcement(self, from_id, msg):
    wanted = []
    now = self.sim.now
    for tx_hash in msg.hashes:
        self._mark_known(from_id, tx_hash)
        if tx_hash in self.mempool:
            continue
        if self._announce_requested.get(tx_hash, -1.0) > now:
            continue
        self._announce_requested[tx_hash] = now + self.config.announce_hold
        wanted.append(tx_hash)
    if wanted:
        self._send(from_id, GetPooledTransactions(hashes=tuple(wanted)))


def _legacy_handle_tx_request(self, from_id, msg):
    available = tuple(
        tx
        for tx_hash in msg.hashes
        if (tx := self.mempool.get(tx_hash)) is not None
    )
    if available:
        for tx in available:
            self._mark_known(from_id, tx.hash)
        self._send(from_id, PooledTransactions(txs=available))


# ----------------------------------------------------------------------
# Seed network hot paths
# ----------------------------------------------------------------------
def _legacy_are_connected(self, a, b):
    return frozenset((a, b)) in self._links


def _legacy_send(self, from_id, to_id, msg):
    from repro.errors import NotConnectedError, UnknownNodeError

    if to_id not in self.nodes:
        raise UnknownNodeError(to_id)
    if not self.are_connected(from_id, to_id):
        raise NotConnectedError(
            f"{from_id} is not connected to {to_id}; cannot send {msg.kind}"
        )
    if self.nodes[from_id].crashed:
        self._drop(from_id, to_id, msg, "sender_crashed")
        return
    self.messages_sent += 1
    self.messages_by_kind[msg.kind] = self.messages_by_kind.get(msg.kind, 0) + 1
    delay = self.latency(self._latency_rng, from_id, to_id)
    if self.faults is not None:
        if self.faults.should_drop(from_id, to_id):
            self._drop(from_id, to_id, msg, "loss", trace=False)
            return
        delay += self.faults.extra_delay(from_id, to_id)
    self.sim.schedule(
        delay,
        lambda: self._deliver(from_id, to_id, msg),
        label=f"{msg.kind}:{from_id}->{to_id}",
    )


def _legacy_deliver(self, from_id, to_id, msg):
    if frozenset((from_id, to_id)) not in self._links:
        self._drop(from_id, to_id, msg, "link_vanished")
        return
    target = self.nodes.get(to_id)
    if target is None:
        self._drop(from_id, to_id, msg, "target_removed")
        return
    if target.crashed:
        self._drop(from_id, to_id, msg, "target_crashed")
        return
    target.handle_message(from_id, msg)


# ----------------------------------------------------------------------
# Seed mempool admission chain
# ----------------------------------------------------------------------
def _legacy_add(self, tx):
    result = self._add_inner(tx)
    self.stats[result.outcome.value] += 1
    self.stats["evictions"] += len(result.evicted)
    return result


def _legacy_add_inner(self, tx):
    if tx.hash in self._by_hash:
        return AddResult(tx, AddOutcome.REJECTED_KNOWN)

    confirmed = self._confirmed_nonce(tx.sender) or 0
    if tx.nonce < confirmed:
        return AddResult(tx, AddOutcome.REJECTED_STALE_NONCE)

    if self.policy.enforce_base_fee and tx.is_underpriced_for_base_fee(
        self.base_fee
    ):
        return AddResult(tx, AddOutcome.REJECTED_BASE_FEE)

    bid = tx.bid_price(self.base_fee)

    occupant = self.sender_transaction(tx.sender, tx.nonce)
    if occupant is not None:
        if not self.policy.replacement_allowed(
            occupant.bid_price(self.base_fee), bid
        ):
            return AddResult(
                tx, AddOutcome.REJECTED_UNDERPRICED_REPLACEMENT, replaced=None
            )
        self._remove(occupant.hash)
        self._insert(tx)
        promoted = self._rebalance_sender(tx.sender)
        return AddResult(
            tx,
            AddOutcome.REPLACED,
            replaced=occupant,
            promoted=[p for p in promoted if p.hash != tx.hash],
            is_pending=tx.hash in self._pending,
        )

    will_be_pending = self._would_be_pending(tx, confirmed)

    if not will_be_pending:
        limit = self.policy.future_limit_per_account
        if limit is not None and self.sender_count(tx.sender) >= limit:
            return AddResult(tx, AddOutcome.REJECTED_FUTURE_LIMIT)

    evicted = []
    if self.is_full:
        victim = self._select_victim(will_be_pending, bid)
        if victim is None:
            return AddResult(tx, AddOutcome.REJECTED_POOL_FULL)
        self._remove(victim.hash)
        self._rebalance_sender(victim.sender)
        evicted.append(victim)

    self._insert(tx)
    promoted = self._rebalance_sender(tx.sender)
    is_pending = tx.hash in self._pending
    outcome = (
        AddOutcome.ADMITTED_PENDING if is_pending else AddOutcome.ADMITTED_FUTURE
    )
    return AddResult(
        tx,
        outcome,
        evicted=evicted,
        promoted=[p for p in promoted if p.hash != tx.hash],
        is_pending=is_pending,
    )


# ----------------------------------------------------------------------
# Patch management
# ----------------------------------------------------------------------
_NODE_PATCHES = {
    "handle_message": _legacy_handle_message,
    "_mark_known": _legacy_mark_known,
    "receive_transaction": _legacy_receive_transaction,
    "_relay": _legacy_relay,
    "broadcast_transaction": _legacy_broadcast_transaction,
    "_schedule_flush": _legacy_schedule_flush,
    "_flush": _legacy_flush,
    "_handle_announcement": _legacy_handle_announcement,
    "_handle_tx_request": _legacy_handle_tx_request,
}

_NETWORK_PATCHES = {
    "are_connected": _legacy_are_connected,
    "send": _legacy_send,
    "_deliver": _legacy_deliver,
}

_MEMPOOL_PATCHES = {
    "add": _legacy_add,
    "_add_inner": _legacy_add_inner,
}

_MISSING = object()


@contextlib.contextmanager
def legacy_hot_paths():
    """Temporarily swap the seed hot-path implementations onto the live
    classes (and make new networks use :class:`LegacySimulator`)."""
    import repro.eth.network as network_module
    from repro.eth.mempool import Mempool
    from repro.eth.network import Network
    from repro.eth.node import Node

    saved = []

    def patch(target, name, value):
        saved.append((target, name, target.__dict__.get(name, _MISSING)))
        setattr(target, name, value)

    for name, fn in _NODE_PATCHES.items():
        patch(Node, name, fn)
    for name, fn in _NETWORK_PATCHES.items():
        patch(Network, name, fn)
    for name, fn in _MEMPOOL_PATCHES.items():
        patch(Mempool, name, fn)
    patch(network_module, "Simulator", LegacySimulator)
    try:
        yield
    finally:
        for target, name, original in reversed(saved):
            if original is _MISSING:
                delattr(target, name)
            else:
                setattr(target, name, original)
