"""Figure 6: node degree distribution in the measured Ropsten testnet.

Paper: 588 Geth nodes, 7496 edges; most degrees between 1 and 60, a few
percent of nodes at each low degree, and a small tail of nodes with
degrees far above the mode — all much smaller than the 272 *inactive*
neighbours a routing table holds.

Reproduction (1:10 scale): the measured degree distribution of the
Ropsten-like campaign, with the same qualitative properties.
"""

import pytest

from benchmarks.harness import emit, run_once
from repro.analysis.degrees import degree_distribution


@pytest.mark.benchmark(group="fig6")
def test_fig6_ropsten_degree_distribution(benchmark, ropsten_campaign):
    network, shot, measurement = ropsten_campaign
    distribution = run_once(
        benchmark, lambda: degree_distribution(measurement.graph)
    )
    lines = [
        f"measured {measurement.graph.number_of_nodes()} nodes, "
        f"{measurement.graph.number_of_edges()} edges "
        f"(validation: {measurement.score})",
        "",
        distribution.ascii_plot(width=40),
        "",
        f"average degree  : {distribution.average:.1f}",
        f"max degree      : {distribution.max_degree}",
        "paper: degrees 1..60 for most nodes; active degrees far below the "
        "272 inactive routing-table entries",
    ]
    emit("fig6_ropsten_degrees", "\n".join(lines))

    # Shape assertions.
    assert measurement.score.precision == 1.0
    table_size = len(network.node(measurement.node_ids[0]).routing_table)
    assert distribution.average < table_size  # active << inactive
    assert distribution.max_degree <= 60
