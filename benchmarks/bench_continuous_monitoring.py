"""Continuous monitoring under heavy traffic: the PR's three load gates.

Three phases, one churning world:

1. **Engine cost** — sustain a batched workload at increasing offered
   rates over a fixed simulated window and record executed engine events
   and wall time per rate. Gates: event count is O(ticks) — raising the
   offered rate 50x grows events by <20% — and the wall-clock cost of
   >=50k tx/s stays within ``MAX_WALL_OVERHEAD`` of the low-rate run
   (the <15% throughput-cost headline).
2. **Incremental tracking** — a sparse network churns between rounds
   (random link rewires plus a traffic storm, drained before probing);
   delta rounds re-probe only stale/flagged pairs. Gates: the probe-cost
   ratio versus repeated full re-snapshots is >= ``MIN_PROBE_RATIO`` and
   the tracked view's recall against ground truth matches a full
   re-snapshot taken at the end (equal recall, fraction of the cost).
3. **Non-interference under surge** — a five-node world with a live fee
   market under surge pricing measures one link while the
   ``NonInterferenceMonitor`` watches. Gates: the link is detected, V1/V2
   verify, and the surge-band check attests every probe price stayed
   admissible.

Standalone (full load, writes benchmarks/results/BENCH_monitor.json)::

    PYTHONPATH=src python benchmarks/bench_continuous_monitoring.py

Pytest smoke (small scenario, same JSON artifact)::

    PYTHONPATH=src python -m pytest benchmarks/bench_continuous_monitoring.py \
        -k smoke --benchmark-disable -q
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from time import perf_counter

import pytest

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.harness import RESULTS_DIR, emit, emit_metrics_sidecar, run_once
from repro.core.config import MeasurementConfig
from repro.core.gas_estimator import estimate_y
from repro.core.monitor import TopologyMonitor, rewire_random_links
from repro.core.noninterference import NonInterferenceMonitor, check_conditions
from repro.core.primitive import measure_one_link
from repro.eth.chain import Chain
from repro.eth.fee_market import FeeMarket, FeeMarketConfig
from repro.eth.miner import Miner
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.supernode import Supernode
from repro.eth.transaction import INTRINSIC_GAS, gwei
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import SHAPES, BatchedWorkload, prefill_mempools
from repro.obs import Observability
from repro.obs.wiring import instrument_workload

JSON_PATH = RESULTS_DIR / "BENCH_monitor.json"

# Gates (see docs/workloads.md).
MAX_EVENT_GROWTH = 1.2    # events at the top rate vs the bottom rate
MAX_WALL_OVERHEAD = 0.15  # wall cost of >=50k tx/s vs the low-rate run
WALL_NOISE_FLOOR_S = 0.1  # below this baseline, wall ratios are noise
MIN_PROBE_RATIO = 5.0     # full re-snapshot pairs / delta-probed pairs
MAX_RECALL_GAP = 0.05     # delta recall vs a full re-snapshot's recall

SMOKE_SCENARIO = {
    "name": "smoke",
    "engine_nodes": 16,
    "engine_rates": [1000.0, 50000.0],
    "engine_seconds": 30.0,
    "delta_nodes": 64,
    "delta_dials": 4,
    "delta_targets": 24,
    "delta_rounds": 3,
    "delta_churn": 0.02,
    "load_rate": 20000.0,
    "load_window": 5.0,
}
FULL_SCENARIO = {
    "name": "full",
    "engine_nodes": 16,
    "engine_rates": [1000.0, 10000.0, 50000.0, 200000.0],
    "engine_seconds": 120.0,
    "delta_nodes": 128,
    "delta_dials": 4,
    # 24 targets is the largest universe the default 50-slot mempool
    # budget schedules (K=2 needs 2*(N-2) slots, Section 5.3.2).
    "delta_targets": 24,
    "delta_rounds": 5,
    "delta_churn": 0.02,
    "load_rate": 50000.0,
    "load_window": 10.0,
}


# ----------------------------------------------------------------------
# Phase 1: O(ticks) engine cost at increasing offered rates
# ----------------------------------------------------------------------
def _engine_point(rate: float, scenario: dict) -> dict:
    network = quick_network(scenario["engine_nodes"], seed=23)
    workload = BatchedWorkload(network, SHAPES["steady"](rate_per_second=rate))
    start_events = network.sim.executed_events
    wall_start = perf_counter()
    workload.start()
    network.sim.run(until=network.sim.now + scenario["engine_seconds"])
    workload.stop()
    wall = perf_counter() - wall_start
    return {
        "offered_tx_per_s": rate,
        "offered": workload.stats["offered"],
        "admitted": workload.stats["admitted"],
        "engine_events": network.sim.executed_events - start_events,
        "wall_s": round(wall, 4),
    }


def bench_engine(scenario: dict) -> dict:
    _engine_point(scenario["engine_rates"][0], scenario)  # warmup, untimed
    points = []
    for rate in scenario["engine_rates"]:
        # Best-of-3 wall time: single-shot timings on shared CI runners
        # are +-10% noise, far coarser than the 15% gate.
        repeats = [_engine_point(rate, scenario) for _ in range(3)]
        best = min(repeats, key=lambda p: p["wall_s"])
        points.append(best)
    low, high = points[0], points[-1]
    return {
        "sim_seconds": scenario["engine_seconds"],
        "points": points,
        "event_growth": round(
            high["engine_events"] / max(1, low["engine_events"]), 3
        ),
        "wall_overhead": round(
            high["wall_s"] / max(low["wall_s"], 1e-9) - 1.0, 3
        ),
        "wall_baseline_s": low["wall_s"],
    }


# ----------------------------------------------------------------------
# Phase 2: incremental tracking vs full re-snapshots on a churning net
# ----------------------------------------------------------------------
def bench_delta(scenario: dict, obs: Observability) -> dict:
    network = quick_network(
        scenario["delta_nodes"],
        seed=41,
        outbound_dials=scenario["delta_dials"],
    )
    network.install_fee_market()
    prefill_mempools(network)
    from repro.core.campaign import TopoShot

    shot = TopoShot.attach(network, obs=obs)
    # Two repeats per probe: the recall yardstick is the full re-snapshot,
    # so the base view should start from the same (high) recall.
    shot.config = shot.config.with_repeats(2)
    targets = list(network.measurable_node_ids())[: scenario["delta_targets"]]
    target_set = set(targets)

    def truth() -> set:
        return {
            e for e in network.ground_truth_edges() if set(e) <= target_set
        }

    workload = BatchedWorkload(
        network, SHAPES["nft-mint-storm"](rate_per_second=scenario["load_rate"])
    )
    instrument_workload(obs, workload)
    monitor = TopologyMonitor(shot)
    base = monitor.take_snapshot(targets=targets, preprocess=False)
    base_truth = truth()
    base_recall = len(base.edges & base_truth) / max(1, len(base_truth))

    rounds = []
    for _ in range(scenario["delta_rounds"]):
        workload.start()
        network.sim.run(until=network.sim.now + scenario["load_window"])
        workload.stop()
        shot.restore_ambient()  # probes run in the restored inflow lull
        removed, added = rewire_random_links(network, scenario["delta_churn"])
        for e in removed | added:
            for node_id in e:
                monitor.note_churn_hint(node_id)
        report = monitor.delta_round()
        rounds.append(
            {
                "rewired": len(removed) + len(added),
                "added": len(report.added),
                "removed": len(report.removed),
                "stable": len(report.stable),
            }
        )

    final_truth = truth()
    tracked = monitor.current_edges
    delta_recall = len(tracked & final_truth) / max(1, len(final_truth))
    spurious = len(tracked - final_truth)
    # The equal-recall yardstick: one full re-snapshot of the same world.
    full = shot.measure_network(targets=targets, preprocess=False)
    full_recall = len(full.edges & final_truth) / max(1, len(final_truth))
    savings = monitor.probe_savings
    ratio = savings["universe_pairs"] / max(1, savings["probed_pairs"])
    return {
        "nodes": scenario["delta_nodes"],
        "targets": len(targets),
        "rounds": rounds,
        "workload_offered": workload.stats["offered"],
        "base_recall": round(base_recall, 3),
        "delta_recall": round(delta_recall, 3),
        "full_recall": round(full_recall, 3),
        "spurious_edges": spurious,
        "probed_pairs": savings["probed_pairs"],
        "universe_pairs": savings["universe_pairs"],
        "probe_ratio": round(ratio, 2),
    }


# ----------------------------------------------------------------------
# Phase 3: V1/V2 + surge band under surge pricing
# ----------------------------------------------------------------------
def bench_surge() -> dict:
    network = Network(seed=77)
    network.chain = Chain(gas_limit=8 * INTRINSIC_GAS)
    config = NodeConfig(policy=GETH.scaled(256))
    ids = [f"n{i}" for i in range(5)]
    for node_id in ids:
        network.create_node(node_id, config)
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            network.connect(a, b)
    network.install_fee_market(FeeMarket(FeeMarketConfig(update_interval=0.5)))
    prefill_mempools(network, median_price=gwei(10.0), sigma=0.2)
    supernode = Supernode.join(network)
    Miner(
        network.node("n0"),
        network.chain,
        block_interval=6.0,
        min_gas_price=gwei(2.0),
        poisson=False,
    ).start(initial_delay=6.0)

    config_m = MeasurementConfig.for_policy(GETH.scaled(256))
    y0 = estimate_y(supernode, config_m)
    config_m = config_m.with_gas_price(y0)
    monitor = NonInterferenceMonitor(
        network.chain,
        y0=y0,
        market=network.fee_market,
        replace_bump=config_m.replace_bump,
    )
    monitor.start(network.sim.now)
    report = measure_one_link(network, supernode, "n1", "n2", config_m)
    monitor.stop(network.sim.now)
    network.run(60.0 - network.sim.now)

    conditions = check_conditions(
        network.chain, t1=monitor._t1, t2=monitor._t2, y0=int(y0 * 0.9),
        expiry=30.0,
    )
    band = monitor.verify_surge()
    return {
        "y0_gwei": round(y0 / 1e9, 3),
        "surge": network.fee_market.surge,
        "detected": report.connected,
        "v1_v2_verified": conditions.non_interfering,
        "surge_band_admissible": band.admissible_throughout,
        "surge_band_samples": band.samples_checked,
    }


# ----------------------------------------------------------------------
# Reporting / gates
# ----------------------------------------------------------------------
def write_results(sections: dict, kind: str) -> dict:
    payload = {
        "benchmark": "continuous_monitoring",
        "kind": kind,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "gates": {
            "max_event_growth": MAX_EVENT_GROWTH,
            "max_wall_overhead": MAX_WALL_OVERHEAD,
            "wall_noise_floor_s": WALL_NOISE_FLOOR_S,
            "min_probe_ratio": MIN_PROBE_RATIO,
            "max_recall_gap": MAX_RECALL_GAP,
        },
        **sections,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def format_report(sections: dict) -> str:
    engine = sections["engine"]
    delta = sections["delta"]
    surge = sections["surge"]
    top = engine["points"][-1]
    lines = [
        f"engine  : {top['offered_tx_per_s']:.0f} tx/s offered over "
        f"{engine['sim_seconds']:.0f}s sim -> {top['engine_events']} events "
        f"({engine['event_growth']}x the low-rate run, "
        f"wall overhead {engine['wall_overhead']:+.0%})",
        f"delta   : {delta['probed_pairs']} pairs probed vs "
        f"{delta['universe_pairs']} for full re-snapshots "
        f"({delta['probe_ratio']}x cheaper) over {len(delta['rounds'])} "
        f"rounds on {delta['nodes']} nodes",
        f"recall  : delta {delta['delta_recall']:.3f} vs full re-snapshot "
        f"{delta['full_recall']:.3f} (spurious {delta['spurious_edges']}) "
        f"under {delta['workload_offered']} offered txs of churn traffic",
        f"surge   : detected={surge['detected']} "
        f"V1/V2={surge['v1_v2_verified']} "
        f"band={surge['surge_band_admissible']} "
        f"(surge x{surge['surge']:.2f}, Y {surge['y0_gwei']} gwei)",
    ]
    return "\n".join(lines)


def check_gates(sections: dict) -> None:
    engine = sections["engine"]
    assert engine["event_growth"] <= MAX_EVENT_GROWTH, (
        f"engine events grew {engine['event_growth']}x with offered rate: "
        "the workload is not O(ticks)"
    )
    if engine["wall_baseline_s"] >= WALL_NOISE_FLOOR_S:
        assert engine["wall_overhead"] <= MAX_WALL_OVERHEAD, (
            f"sustaining the top rate cost {engine['wall_overhead']:+.0%} "
            f"wall clock vs the low-rate run (gate {MAX_WALL_OVERHEAD:.0%})"
        )
    delta = sections["delta"]
    assert delta["probe_ratio"] >= MIN_PROBE_RATIO, (
        f"delta rounds probed {delta['probed_pairs']} of "
        f"{delta['universe_pairs']} pairs — only "
        f"{delta['probe_ratio']}x cheaper than full re-snapshots "
        f"(gate {MIN_PROBE_RATIO}x)"
    )
    assert delta["delta_recall"] >= delta["full_recall"] - MAX_RECALL_GAP, (
        f"delta recall {delta['delta_recall']} trails the full re-snapshot "
        f"{delta['full_recall']} by more than {MAX_RECALL_GAP}"
    )
    surge = sections["surge"]
    assert surge["detected"], "surge world: the measured link went undetected"
    assert surge["v1_v2_verified"], "surge world: V1/V2 failed to verify"
    assert surge["surge_band_admissible"], (
        "surge world: a probe price fell below the admission floor"
    )
    assert surge["surge_band_samples"] > 0


def run_scenario(scenario: dict) -> tuple:
    obs = Observability()
    sections = {
        "engine": bench_engine(scenario),
        "delta": bench_delta(scenario, obs),
        "surge": bench_surge(),
    }
    return sections, obs


@pytest.mark.benchmark(group="monitor")
def test_monitor_smoke(benchmark):
    """CI smoke: O(ticks) engine cost, >=5x cheaper churn tracking at
    full-re-snapshot recall, and V1/V2 + surge-band verdicts under surge."""
    sections, obs = run_once(benchmark, lambda: run_scenario(SMOKE_SCENARIO))
    write_results(sections, kind="smoke")
    emit_metrics_sidecar("BENCH_monitor", obs)
    emit("monitor_smoke", format_report(sections))
    check_gates(sections)


def main() -> int:
    scenario = FULL_SCENARIO
    print(
        f"[monitor] continuous-monitoring bench: engine to "
        f"{max(scenario['engine_rates']):.0f} tx/s, "
        f"{scenario['delta_nodes']}-node churning world, surge verification"
    )
    sections, obs = run_scenario(scenario)
    write_results(sections, kind="full")
    emit_metrics_sidecar("BENCH_monitor", obs)
    emit("monitor", format_report(sections))
    try:
        check_gates(sections)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print("OK: all continuous-monitoring gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
