"""Engine throughput: the optimized simulation hot path vs the pre-PR one.

Runs the same transaction-propagation scenario twice in one process — once
on the optimized engine and once on the faithful seed implementations from
:mod:`benchmarks._legacy_engine` — and reports events/sec, wall time and
peak RSS per scenario, plus the speedup. Both runs draw from the same
seeded RNG streams, so they execute the *identical* event sequence; the
bench asserts that equivalence (event and message counts must match) before
trusting the timing.

Standalone (full 1k/5k/10k matrix, writes benchmarks/results/BENCH_engine.json)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py

Pytest smoke (small scenario, same JSON artifact)::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_throughput.py \
        -k smoke --benchmark-disable -q
"""

from __future__ import annotations

import contextlib
import json
import platform
import resource
import sys
from pathlib import Path
from time import perf_counter

import pytest

if __package__ in (None, ""):
    # Standalone `python benchmarks/bench_engine_throughput.py`: put the
    # repo root on sys.path so the `benchmarks` package resolves.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._legacy_engine import legacy_hot_paths
from benchmarks.harness import RESULTS_DIR, emit, emit_metrics_sidecar, run_once
from repro.eth.account import Wallet
from repro.eth.transaction import TransactionFactory, gwei
from repro.netgen.ethereum import quick_network

JSON_PATH = RESULTS_DIR / "BENCH_engine.json"

# The 5k scenario is the acceptance gate: the optimized hot path must beat
# the seed by >= MIN_SPEEDUP_5K on events/sec there.
MIN_SPEEDUP_5K = 2.0

FULL_SCENARIOS = (
    {"name": "1k", "n_nodes": 1_000, "txs": 150, "seed": 11},
    {"name": "5k", "n_nodes": 5_000, "txs": 60, "seed": 11},
    {"name": "10k", "n_nodes": 10_000, "txs": 25, "seed": 11},
)

SMOKE_SCENARIO = {"name": "smoke-300", "n_nodes": 300, "txs": 40, "seed": 11}


def _peak_rss_mb() -> float:
    """Process peak RSS in MiB (Linux ru_maxrss is in KiB)."""
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is in bytes
        rss_kb /= 1024
    return rss_kb / 1024


def run_scenario(
    n_nodes: int, txs: int, seed: int, legacy: bool = False, obs=None
) -> dict:
    """Build the network, inject ``txs`` transactions, settle, and time it.

    The timed region covers submission + propagation to quiescence — the
    event-loop work a measurement campaign is made of — not topology
    generation. Identical seeds mean the legacy and optimized runs execute
    the same events in the same order.

    ``obs`` (a :class:`repro.obs.Observability`) is installed on the
    network before the timed region; the wiring is pull-only, so it reads
    nothing until its collectors run at export time and the timing stands.
    """
    guard = legacy_hot_paths() if legacy else contextlib.nullcontext()
    with guard:
        network = quick_network(n_nodes=n_nodes, seed=seed)
        if obs is not None:
            network.install_observability(obs)
        wallet = Wallet("bench-engine")
        factory = TransactionFactory()
        ids = network.measurable_node_ids()
        start = perf_counter()
        for index in range(txs):
            origin = network.node(ids[(index * 37) % len(ids)])
            origin.submit_transaction(
                factory.transfer(wallet.fresh_account(), gas_price=gwei(2.0) + index)
            )
        network.settle()
        elapsed = perf_counter() - start
        events = network.sim.executed_events
    return {
        "mode": "legacy" if legacy else "optimized",
        "n_nodes": n_nodes,
        "txs": txs,
        "events": events,
        "messages": network.messages_sent,
        "elapsed_s": round(elapsed, 3),
        "events_per_sec": round(events / elapsed, 1),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def compare_scenario(spec: dict, obs=None) -> dict:
    """Run one scenario under both engines and cross-check equivalence.

    ``obs`` instruments the *optimized* leg only (the legacy engine
    predates the observability layer); the caller exports the sidecar.
    """
    optimized = run_scenario(
        spec["n_nodes"], spec["txs"], spec["seed"], obs=obs
    )
    legacy = run_scenario(spec["n_nodes"], spec["txs"], spec["seed"], legacy=True)
    # Same seed, same scenario: if the hot-path rewrite changed behaviour at
    # all, the event/message counts diverge and the timing is meaningless.
    assert optimized["events"] == legacy["events"], (
        f"{spec['name']}: optimized executed {optimized['events']} events, "
        f"legacy {legacy['events']} — engines are not equivalent"
    )
    assert optimized["messages"] == legacy["messages"]
    return {
        "name": spec["name"],
        "n_nodes": spec["n_nodes"],
        "txs": spec["txs"],
        "events": optimized["events"],
        "optimized": optimized,
        "legacy": legacy,
        "speedup": round(
            optimized["events_per_sec"] / legacy["events_per_sec"], 2
        ),
    }


def write_results(rows: list, kind: str) -> dict:
    payload = {
        "benchmark": "engine_throughput",
        "kind": kind,
        "python": platform.python_version(),
        "min_speedup_5k": MIN_SPEEDUP_5K,
        "scenarios": rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def format_table(rows: list) -> str:
    lines = [
        f"{'scenario':<10} {'events':>9} {'seed ev/s':>10} {'opt ev/s':>10} "
        f"{'speedup':>8} {'seed RSS':>9} {'opt RSS':>9}"
    ]
    for row in rows:
        lines.append(
            f"{row['name']:<10} {row['events']:>9} "
            f"{row['legacy']['events_per_sec']:>10.0f} "
            f"{row['optimized']['events_per_sec']:>10.0f} "
            f"{row['speedup']:>7.2f}x "
            f"{row['legacy']['peak_rss_mb']:>8.0f}M "
            f"{row['optimized']['peak_rss_mb']:>8.0f}M"
        )
    return "\n".join(lines)


@pytest.mark.benchmark(group="engine-throughput")
def test_engine_throughput_smoke(benchmark):
    """CI smoke: a small scenario must already show a real speedup."""
    from repro.obs import Observability

    obs = Observability()
    row = run_once(benchmark, lambda: compare_scenario(SMOKE_SCENARIO, obs=obs))
    write_results([row], kind="smoke")
    emit("engine_throughput_smoke", format_table([row]))
    emit_metrics_sidecar("BENCH_engine", obs)
    assert row["speedup"] > 1.1


def main() -> int:
    from repro.obs import Observability

    rows = []
    for spec in FULL_SCENARIOS:
        print(f"[{spec['name']}] {spec['n_nodes']} nodes, {spec['txs']} txs ...")
        # A fresh bundle per scenario: its collectors are bound to that
        # scenario's network, so one sidecar reflects one run.
        obs = Observability()
        row = compare_scenario(spec, obs=obs)
        emit_metrics_sidecar(f"BENCH_engine.{spec['name']}", obs)
        rows.append(row)
        print(
            f"  legacy {row['legacy']['events_per_sec']:,.0f} ev/s -> "
            f"optimized {row['optimized']['events_per_sec']:,.0f} ev/s "
            f"({row['speedup']:.2f}x, {row['events']} events)"
        )
    write_results(rows, kind="full")
    emit("engine_throughput", format_table(rows))
    gate = next(row for row in rows if row["name"] == "5k")
    if gate["speedup"] < MIN_SPEEDUP_5K:
        print(
            f"FAIL: 5k speedup {gate['speedup']:.2f}x < {MIN_SPEEDUP_5K}x",
            file=sys.stderr,
        )
        return 1
    print(f"OK: 5k speedup {gate['speedup']:.2f}x >= {MIN_SPEEDUP_5K}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
