"""Engine throughput: the optimized simulation hot path vs the pre-PR one.

Runs the same transaction-propagation scenario on the optimized engine and
— where the seed implementation can still reach the size — once more on the
faithful seed hot paths from :mod:`benchmarks._legacy_engine`, reporting
events/sec, wall time and peak RSS per scenario plus the speedup. Both legs
draw from the same seeded RNG streams, so they execute the *identical*
event sequence; the bench asserts that equivalence (event and message
counts must match, and the generated topologies must hash to the same
edge-set fingerprint) before trusting the timing.

The full matrix is a 1k/5k/20k/50k scaling curve. The 1k and 5k rows are
A/B compared against the legacy engine; 20k and 50k run optimized-only
(the quadratic seed paths cannot reach them on one box) with lighter
per-node knobs so generation picks the fast wiring path.

Standalone (full matrix, writes benchmarks/results/BENCH_engine.json)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py

CI scale smoke (1k A/B + a short 20k-node TopoShot measurement)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --scale-smoke

Pytest smoke (small scenario, same JSON artifact)::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_throughput.py \
        -k smoke --benchmark-disable -q
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import platform
import resource
import sys
from pathlib import Path
from time import perf_counter

import pytest

if __package__ in (None, ""):
    # Standalone `python benchmarks/bench_engine_throughput.py`: put the
    # repo root on sys.path so the `benchmarks` package resolves.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._legacy_engine import legacy_hot_paths
from benchmarks.harness import RESULTS_DIR, emit, emit_metrics_sidecar, run_once
from repro.eth.account import Wallet
from repro.eth.transaction import TransactionFactory, gwei
from repro.netgen.ethereum import quick_network

JSON_PATH = RESULTS_DIR / "BENCH_engine.json"

# The 5k scenario is the acceptance gate: the optimized hot path must beat
# the seed by >= MIN_SPEEDUP_5K on events/sec there.
MIN_SPEEDUP_5K = 2.0

# Lighter per-node knobs for the mainnet-scale rows: average degree ~12
# instead of ~16, smaller routing tables. n >= FAST_WIRING_THRESHOLD means
# the default wiring="auto" resolves to the near-linear fast path.
SCALE_OVERRIDES = {
    "outbound_dials": 6,
    "max_peers": 25,
    "routing_table_capacity": 64,
}

FULL_SCENARIOS = (
    {"name": "1k", "n_nodes": 1_000, "txs": 150, "seed": 11, "compare": True},
    {"name": "5k", "n_nodes": 5_000, "txs": 60, "seed": 11, "compare": True},
    {
        "name": "20k",
        "n_nodes": 20_000,
        "txs": 16,
        "seed": 11,
        "compare": False,
        "overrides": SCALE_OVERRIDES,
    },
    {
        "name": "50k",
        "n_nodes": 50_000,
        "txs": 6,
        "seed": 11,
        "compare": False,
        "overrides": SCALE_OVERRIDES,
    },
)

SMOKE_SCENARIO = {"name": "smoke-300", "n_nodes": 300, "txs": 40, "seed": 11}


def _peak_rss_mb() -> float:
    """Process peak RSS in MiB (Linux ru_maxrss is in KiB)."""
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is in bytes
        rss_kb /= 1024
    return rss_kb / 1024


def edge_set_sha(network) -> str:
    """SHA-256 fingerprint of the measurable ground-truth edge set.

    Canonical form: sorted ``a--b`` lines with endpoints in lexicographic
    order, so the digest depends only on the topology, not on set or
    adjacency iteration order.
    """
    lines = sorted(
        "--".join(sorted(edge)) for edge in network.ground_truth_edges()
    )
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


def run_scenario(
    n_nodes: int,
    txs: int,
    seed: int,
    legacy: bool = False,
    obs=None,
    overrides: dict = None,
) -> dict:
    """Build the network, inject ``txs`` transactions, settle, and time it.

    The timed region covers submission + propagation to quiescence — the
    event-loop work a measurement campaign is made of — not topology
    generation (reported separately as ``build_s``). Identical seeds mean
    the legacy and optimized runs execute the same events in the same
    order.

    ``obs`` (a :class:`repro.obs.Observability`) is installed on the
    network before the timed region; the wiring is pull-only, so it reads
    nothing until its collectors run at export time and the timing stands.
    """
    guard = legacy_hot_paths() if legacy else contextlib.nullcontext()
    with guard:
        build_start = perf_counter()
        network = quick_network(n_nodes=n_nodes, seed=seed, **(overrides or {}))
        build_elapsed = perf_counter() - build_start
        edge_sha = edge_set_sha(network)
        if obs is not None:
            network.install_observability(obs)
        wallet = Wallet("bench-engine")
        factory = TransactionFactory()
        ids = network.measurable_node_ids()
        start = perf_counter()
        for index in range(txs):
            origin = network.node(ids[(index * 37) % len(ids)])
            origin.submit_transaction(
                factory.transfer(wallet.fresh_account(), gas_price=gwei(2.0) + index)
            )
        network.settle()
        elapsed = perf_counter() - start
        events = network.sim.executed_events
    return {
        "mode": "legacy" if legacy else "optimized",
        "n_nodes": n_nodes,
        "txs": txs,
        "events": events,
        "messages": network.messages_sent,
        "edge_sha": edge_sha,
        "build_s": round(build_elapsed, 3),
        "elapsed_s": round(elapsed, 3),
        "events_per_sec": round(events / elapsed, 1),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def compare_scenario(spec: dict, obs=None) -> dict:
    """Run one scenario under both engines and cross-check equivalence.

    ``obs`` instruments the *optimized* leg only (the legacy engine
    predates the observability layer); the caller exports the sidecar.
    """
    overrides = spec.get("overrides")
    optimized = run_scenario(
        spec["n_nodes"], spec["txs"], spec["seed"], obs=obs, overrides=overrides
    )
    legacy = run_scenario(
        spec["n_nodes"], spec["txs"], spec["seed"], legacy=True, overrides=overrides
    )
    # Same seed, same scenario: if the hot-path rewrite changed behaviour at
    # all, the event/message counts diverge and the timing is meaningless.
    assert optimized["events"] == legacy["events"], (
        f"{spec['name']}: optimized executed {optimized['events']} events, "
        f"legacy {legacy['events']} — engines are not equivalent"
    )
    assert optimized["messages"] == legacy["messages"]
    # Golden edge sets: the integer-core network must generate the exact
    # topology the seed engine sees (the string-at-the-API contract).
    assert optimized["edge_sha"] == legacy["edge_sha"], (
        f"{spec['name']}: ground-truth edge fingerprints diverge "
        f"({optimized['edge_sha'][:12]} vs {legacy['edge_sha'][:12]})"
    )
    return {
        "name": spec["name"],
        "n_nodes": spec["n_nodes"],
        "txs": spec["txs"],
        "events": optimized["events"],
        "edge_sha": optimized["edge_sha"],
        "optimized": optimized,
        "legacy": legacy,
        "speedup": round(
            optimized["events_per_sec"] / legacy["events_per_sec"], 2
        ),
    }


def solo_scenario(spec: dict, obs=None) -> dict:
    """Run one optimized-only scenario (sizes the seed engine cannot reach)."""
    optimized = run_scenario(
        spec["n_nodes"],
        spec["txs"],
        spec["seed"],
        obs=obs,
        overrides=spec.get("overrides"),
    )
    return {
        "name": spec["name"],
        "n_nodes": spec["n_nodes"],
        "txs": spec["txs"],
        "events": optimized["events"],
        "edge_sha": optimized["edge_sha"],
        "optimized": optimized,
    }


def write_results(rows: list, kind: str, extra: dict = None) -> dict:
    payload = {
        "benchmark": "engine_throughput",
        "kind": kind,
        "python": platform.python_version(),
        "min_speedup_5k": MIN_SPEEDUP_5K,
        "scaling_curve": [
            {
                "name": row["name"],
                "n_nodes": row["n_nodes"],
                "events_per_sec": row["optimized"]["events_per_sec"],
                "peak_rss_mb": row["optimized"]["peak_rss_mb"],
            }
            for row in rows
            if "optimized" in row
        ],
        "scenarios": rows,
    }
    if extra:
        payload.update(extra)
    RESULTS_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def format_table(rows: list) -> str:
    lines = [
        f"{'scenario':<10} {'events':>9} {'seed ev/s':>10} {'opt ev/s':>10} "
        f"{'speedup':>8} {'seed RSS':>9} {'opt RSS':>9}"
    ]
    for row in rows:
        legacy = row.get("legacy")
        lines.append(
            f"{row['name']:<10} {row['events']:>9} "
            + (f"{legacy['events_per_sec']:>10.0f} " if legacy else f"{'—':>10} ")
            + f"{row['optimized']['events_per_sec']:>10.0f} "
            + (f"{row['speedup']:>7.2f}x " if legacy else f"{'—':>8} ")
            + (f"{legacy['peak_rss_mb']:>8.0f}M " if legacy else f"{'—':>9} ")
            + f"{row['optimized']['peak_rss_mb']:>8.0f}M"
        )
    return "\n".join(lines)


@pytest.mark.benchmark(group="engine-throughput")
def test_engine_throughput_smoke(benchmark):
    """CI smoke: a small scenario must already show a real speedup."""
    from repro.obs import Observability

    obs = Observability()
    row = run_once(benchmark, lambda: compare_scenario(SMOKE_SCENARIO, obs=obs))
    write_results([row], kind="smoke")
    emit("engine_throughput_smoke", format_table([row]))
    emit_metrics_sidecar("BENCH_engine", obs)
    assert row["speedup"] > 1.1


def scale_smoke() -> int:
    """CI ``scale-smoke`` job body: golden equivalence + a 20k measurement.

    Two checks, sized for a CI box:

    1. the 1k scenario A/B against the legacy engine, which asserts the
       golden fingerprints (event/message counts and edge-set SHA); and
    2. a short end-to-end TopoShot measurement on a 20k-node network —
       supernode join, preprocessing, parallel schedule and validation all
       exercised at mainnet scale, measuring a small target subset so the
       job stays under a few minutes.
    """
    from repro.core.campaign import TopoShot
    from repro.obs import Observability

    obs = Observability()
    print("[scale-smoke] 1k A/B equivalence ...")
    row_1k = compare_scenario(FULL_SCENARIOS[0], obs=obs)
    print(
        f"  speedup {row_1k['speedup']:.2f}x, "
        f"edge sha {row_1k['edge_sha'][:12]} (optimized == legacy)"
    )

    print("[scale-smoke] 20k-node short measurement ...")
    build_start = perf_counter()
    network = quick_network(n_nodes=20_000, seed=11, **SCALE_OVERRIDES)
    build_elapsed = perf_counter() - build_start
    # Measure one node's neighborhood: an anchor plus its active peers, so
    # the target set is guaranteed to contain true edges (12 uniformly
    # random nodes out of 20k are almost surely pairwise non-adjacent).
    # Skip preprocessing and inter-iteration churn — both are whole-network
    # costs that a CI smoke doesn't need to re-prove.
    measurable = set(network.measurable_node_ids())
    anchor = network.measurable_node_ids()[0]
    neighbors = [pid for pid in network.node(anchor).peers if pid in measurable]
    targets = [anchor, *neighbors[:11]]
    shot = TopoShot.attach(network, targets=targets)
    measure_start = perf_counter()
    measurement = shot.measure_network(
        targets=targets, preprocess=False, churn_between_iterations=False
    )
    measure_elapsed = perf_counter() - measure_start
    score = measurement.score
    smoke = {
        "n_nodes": 20_000,
        "targets": len(targets),
        "build_s": round(build_elapsed, 3),
        "measure_s": round(measure_elapsed, 3),
        "edges_found": len(measurement.edges),
        "transactions_sent": measurement.transactions_sent,
        "precision": round(score.precision, 4) if score else None,
        "recall": round(score.recall, 4) if score else None,
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }
    print(
        f"  {smoke['edges_found']} edges among {smoke['targets']} targets, "
        f"precision {smoke['precision']}, recall {smoke['recall']}, "
        f"build {smoke['build_s']}s, measure {smoke['measure_s']}s"
    )
    write_results([row_1k], kind="scale-smoke", extra={"scale_smoke_20k": smoke})
    emit("engine_scale_smoke", format_table([row_1k]))
    emit_metrics_sidecar("BENCH_engine.scale_smoke", obs)
    if smoke["edges_found"] == 0:
        print("FAIL: 20k measurement found no edges", file=sys.stderr)
        return 1
    if score is not None and score.precision < 1.0:
        print(
            f"FAIL: 20k measurement precision {score.precision:.4f} < 1.0",
            file=sys.stderr,
        )
        return 1
    print("OK: scale smoke passed")
    return 0


def main(argv=None) -> int:
    from repro.obs import Observability

    argv = sys.argv[1:] if argv is None else argv
    if "--scale-smoke" in argv:
        return scale_smoke()

    rows = []
    for spec in FULL_SCENARIOS:
        print(f"[{spec['name']}] {spec['n_nodes']} nodes, {spec['txs']} txs ...")
        # A fresh bundle per scenario: its collectors are bound to that
        # scenario's network, so one sidecar reflects one run.
        obs = Observability()
        if spec["compare"]:
            row = compare_scenario(spec, obs=obs)
            print(
                f"  legacy {row['legacy']['events_per_sec']:,.0f} ev/s -> "
                f"optimized {row['optimized']['events_per_sec']:,.0f} ev/s "
                f"({row['speedup']:.2f}x, {row['events']} events)"
            )
        else:
            row = solo_scenario(spec, obs=obs)
            print(
                f"  optimized {row['optimized']['events_per_sec']:,.0f} ev/s "
                f"({row['events']} events, "
                f"build {row['optimized']['build_s']}s, "
                f"settle {row['optimized']['elapsed_s']}s)"
            )
        emit_metrics_sidecar(f"BENCH_engine.{spec['name']}", obs)
        rows.append(row)
    write_results(rows, kind="full")
    emit("engine_throughput", format_table(rows))
    gate = next(row for row in rows if row["name"] == "5k")
    if gate["speedup"] < MIN_SPEEDUP_5K:
        print(
            f"FAIL: 5k speedup {gate['speedup']:.2f}x < {MIN_SPEEDUP_5K}x",
            file=sys.stderr,
        )
        return 1
    print(f"OK: 5k speedup {gate['speedup']:.2f}x >= {MIN_SPEEDUP_5K}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
