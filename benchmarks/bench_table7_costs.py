"""Table 7: summary of measurement studies — sizes, costs, durations —
plus the Section 6.3 full-mainnet cost estimate (> $60M).

The Ether columns cannot be reproduced absolutely (they depend on 2020/21
gas markets); the bench reproduces the *accounting*: per-pair cost model,
per-campaign totals from our simulated runs, and the paper's own published
numbers side by side, ending with the quadratic mainnet extrapolation.
"""

import pytest

from benchmarks.harness import emit, run_once
from repro.core.cost import (
    CampaignCostRow,
    MainnetEstimate,
    paper_mainnet_estimate,
    summarize_campaigns,
)

# Table 7 of the paper, verbatim.
PAPER_ROWS = [
    ("Ropsten", 588, 0.067, 12.0),
    ("Rinkeby", 446, 2.10, 10.0),
    ("Goerli", 1025, 0.62, 20.0),
    ("mainnet", 9, 0.05858, 0.5),
]


@pytest.mark.benchmark(group="table7")
def test_table7_measurement_summary(benchmark, ropsten_campaign):
    _, shot, measurement = ropsten_campaign

    def build():
        rows = [
            CampaignCostRow(name, n, cost, hours)
            for name, n, cost, hours in PAPER_ROWS
        ]
        # Our simulated Ropsten-like campaign joins the table.
        rows.append(
            CampaignCostRow(
                "ropsten-sim",
                len(measurement.node_ids),
                # Cost model: worst case, every seed eventually pays its
                # intrinsic fee at ~Y (1 gwei) — see Section 5.2.2.
                measurement.transactions_sent and
                len(shot.measurement_senders) * 1e9 * 21_000 / 1e18,
                measurement.duration / 3600.0,
            )
        )
        return rows

    rows = run_once(benchmark, build)
    text = summarize_campaigns(rows)
    estimate = paper_mainnet_estimate()
    text += "\n\n" + estimate.summary()
    scaled_down = MainnetEstimate(
        n_nodes=800, cost_per_pair_ether=estimate.cost_per_pair_ether,
        eth_price_usd=estimate.eth_price_usd,
    )
    text += f"\n(at 1:10 scale for comparison: {scaled_down.summary()})"
    emit("table7_costs", text)

    # The paper's headline: full mainnet > 60M USD, quadratic in N.
    assert estimate.total_usd > 60e6
    assert estimate.pairs == 8000 * 7999 // 2
    ratio = estimate.total_usd / scaled_down.total_usd
    assert 95 <= ratio <= 105  # ~quadratic (100x for 10x nodes)
