"""Table 3: profiling Ethereum clients' replacement/eviction policies.

Runs the paper's black-box mempool unit tests against the five simulated
clients at *full scale* (Geth L=5120, Parity L=8192, ...) and checks the
recovered R / U / P / L against the published values exactly.
"""

import pytest

from benchmarks.harness import emit, run_once
from repro.analysis.report import render_table
from repro.core.profiler import profile_client
from repro.eth.policies import ALETH, BESU, GETH, NETHERMIND, PARITY

PAPER = {
    "geth": (0.10, 4096, 0, 5120),
    "parity": (0.125, 81, 2000, 8192),
    "nethermind": (0.0, 17, 0, 2048),
    "besu": (0.10, None, 0, 4096),
    "aleth": (0.0, 1, 0, 2048),
}


@pytest.mark.benchmark(group="table3")
def test_table3_client_profiling(benchmark):
    profiles = run_once(
        benchmark,
        lambda: [
            profile_client(policy)
            for policy in (GETH, PARITY, NETHERMIND, BESU, ALETH)
        ],
    )
    rows = []
    for profile in profiles:
        paper_r, paper_u, paper_p, paper_l = PAPER[profile.name]
        rows.append(
            {
                "client": profile.name,
                "R measured": profile.replace_bump_percent(),
                "R paper": f"{paper_r * 100:g}%",
                "U measured": profile.future_limit_str(),
                "U paper": "inf" if paper_u is None else paper_u,
                "P measured": profile.eviction_floor,
                "P paper": paper_p,
                "L measured": profile.capacity,
                "L paper": paper_l,
            }
        )
        # The reproduction target: exact match with Table 3.
        assert profile.replace_bump == pytest.approx(paper_r, abs=0.005)
        assert profile.future_limit == paper_u
        assert profile.eviction_floor == paper_p
        assert profile.capacity == paper_l
    emit("table3_client_profiling", render_table(rows, title="Table 3 (measured vs paper)"))
