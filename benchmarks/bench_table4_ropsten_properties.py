"""Table 4: graph properties of the measured Ropsten testnet vs ER/CM/BA.

Paper's qualitative findings (the reproduction targets):

- modularity of the measured network is markedly LOWER than all three
  random baselines (the headline partition-resilience result);
- clustering coefficient is HIGHER than ER's;
- degree assortativity is negative;
- far fewer maximal cliques than ER.
"""

import pytest

from benchmarks.harness import emit, run_once
from repro.analysis.randomgraphs import (
    comparison_table,
    modularity_lower_than_baselines,
)
from repro.analysis.report import render_comparison

PAPER_ROPSTEN = {
    "Diameter": 5,
    "Clustering coefficient": 0.207,
    "Transitivity": 0.127,
    "Degree assortativity": -0.1517,
    "Modularity": 0.0605,
}


@pytest.mark.benchmark(group="table4")
def test_table4_ropsten_graph_properties(benchmark, ropsten_campaign):
    _, _, measurement = ropsten_campaign
    table = run_once(
        benchmark,
        lambda: comparison_table(
            measurement.graph, "Measured", trials=10, seed=1
        ),
    )
    text = render_comparison(table, title="Table 4 analogue (Ropsten-like)")
    text += "\n\npaper (full-scale Ropsten): " + ", ".join(
        f"{key}={value}" for key, value in PAPER_ROPSTEN.items()
    )
    emit("table4_ropsten_properties", text)

    measured = table["Measured"]
    # Headline: modularity strictly below every random baseline.
    assert modularity_lower_than_baselines(table)
    # Clustering above ER's.
    assert measured["Clustering coefficient"] > table["ER"]["Clustering coefficient"]
    # Negative assortativity, like the paper's -0.15.
    assert measured["Degree assortativity"] < 0
    # Clique counts are not asserted: the paper itself reports both
    # directions (Ropsten below its baselines, Rinkeby far above), and at
    # 1:10 scale the density ratio dominates the count.
