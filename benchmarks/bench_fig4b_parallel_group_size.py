"""Figure 4b: precision and recall versus parallel group size.

Paper setup: a controlled node B' joins Ropsten with ~29 detected true
neighbours; ``measurePar`` runs with q=1 sink and p sources swept from 1 to
99. Precision stays 100% at every size; recall stays ~100% for small
groups, then decays (about 60% at p=99) because the source-first
configuration order leaves a growing interference window among the {A}
nodes.

Reproduction: one sink with many true neighbours plus non-neighbour
sources, p swept; same shape expected.
"""

import pytest

from benchmarks.harness import emit, run_once
from repro.core.config import MeasurementConfig
from repro.core.parallel import measure_par
from repro.core.results import edge, score_edges
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.supernode import Supernode
from repro.eth.transaction import gwei
from repro.netgen.workloads import prefill_mempools, refresh_mempools

N_SOURCES = 100
GROUP_SIZES = (1, 5, 10, 20, 30, 50, 70, 99)


def build_star_network(seed=9):
    """One sink connected to every source; sources form a sparse ring so the
    network is connected beyond the sink."""
    network = Network(seed=seed)
    config = NodeConfig(policy=GETH.scaled(256))
    network.create_node("sink", config.__class__(policy=GETH.scaled(256), max_peers=None))
    sources = [f"src-{i:02d}" for i in range(N_SOURCES)]
    for source in sources:
        network.create_node(source, config)
    connected = sources[::2]  # true neighbours of the sink, interleaved
    for source in connected:
        network.connect("sink", source, force=True)
    for i, source in enumerate(sources):
        network.connect(source, sources[(i + 1) % N_SOURCES])
        network.connect(source, sources[(i + 7) % N_SOURCES])
    prefill_mempools(network, median_price=gwei(1.0))
    supernode = Supernode.join(network)
    return network, supernode, set(connected), sources


def sweep():
    """For each group size, the paper runs the parallel measurement three
    times and reports a positive if any run is positive."""
    from repro.core.parallel import measure_par_with_repeats

    rows = []
    for p in GROUP_SIZES:
        network, supernode, connected, sources = build_star_network()
        config = MeasurementConfig.for_policy(GETH.scaled(256)).with_repeats(3)
        chosen = sources[:p]
        pairs = [(source, "sink") for source in chosen]
        report = measure_par_with_repeats(
            network,
            supernode,
            pairs,
            config,
            refresh=lambda net=network: refresh_mempools(net, median_price=gwei(1.0)),
        )
        truth = {edge(s, "sink") for s in chosen if s in connected}
        score = score_edges(report.detected, truth)
        rows.append((p, score))
    return rows


@pytest.mark.benchmark(group="fig4b")
def test_fig4b_precision_recall_vs_group_size(benchmark):
    rows = run_once(benchmark, sweep)
    lines = [f"{'group size p':>12} {'precision':>10} {'recall':>8}"]
    small_recalls, large_recalls = [], []
    for p, score in rows:
        lines.append(f"{p:>12} {score.precision:>10.3f} {score.recall:>8.3f}")
        assert score.precision == 1.0  # Figure 4b: precision always 100%
        (small_recalls if p <= 20 else large_recalls).append(score.recall)
    lines.append("")
    lines.append(
        "paper: precision 100% throughout; recall 100% up to group ~29, "
        "~60% at group 99"
    )
    emit("fig4b_parallel_group_size", "\n".join(lines))
    assert min(small_recalls) >= 0.95  # small groups: near-perfect recall
    assert min(large_recalls) < min(small_recalls)  # decay with group size
