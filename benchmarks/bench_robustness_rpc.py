"""Robustness: recall under an unreliable measurement plane.

The wire-fault benchmark (bench_robustness_faults) degrades the network
*under measurement*; this one degrades the measurer's own view of it —
the JSON-RPC plane the paper's campaigns ran over (throttled public
endpoints, slow txpool dumps, flapping connections, Section 6). An
:class:`~repro.sim.faults.RpcFaultPlan` makes every call attempt time
out or error with probability ``rate`` and serves snapshot reads stale
or truncated at the same rate; the sweep then measures the same seeded
network twice per point:

* **hardened**: the :class:`~repro.eth.rpc.ResilientRpcClient` defaults —
  per-method deadlines, retry with deterministic jitter, hedged snapshot
  reads, circuit breaking, response validation, and degraded-mode
  inference (an unanswerable cross-check downgrades the probe instead of
  reading as a negative);
* **raw**: :data:`~repro.eth.rpc.RAW_POLICY` — one attempt, no
  validation, and every plane failure silently read as "tx not in pool",
  which is what a naive client does and exactly how false negatives (and
  dropped targets) creep into a live campaign.

Gates:

* the fault-free point is bit-identical between the two clients (the
  resilient path is pure passthrough without a plan installed);
* at a 20% per-call fault rate the hardened recall stays within 5% of
  the fault-free baseline while the raw client is measurably worse;
* golden determinism: the same (seed, rate) replays to the identical
  edge set.

Run a single fast smoke point (CI) with::

    PYTHONPATH=src python -m pytest benchmarks/bench_robustness_rpc.py \
        -k smoke --benchmark-disable -q
"""

import json
import os
import platform

import pytest

from benchmarks.harness import RESULTS_DIR, emit, emit_metrics_sidecar, run_once
from repro.core.campaign import TopoShot
from repro.eth.rpc import RAW_POLICY
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools
from repro.obs import Observability
from repro.sim.faults import FaultPlan, RpcFaultPlan

JSON_PATH = RESULTS_DIR / "BENCH_rpc.json"

N_NODES = 24
SEED = 13
RATE_SWEEP = (0.0, 0.1, 0.2, 0.3)
GATE_RATE = 0.2
MAX_RECALL_LOSS_AT_GATE = 0.05


def run_point(rate, raw=False, obs=None):
    """One build-install-measure run; returns the scored measurement and
    the resilient client's counters (empty when no call went through)."""
    network = quick_network(n_nodes=N_NODES, seed=SEED)
    prefill_mempools(network)
    if rate:
        network.install_faults(FaultPlan(rpc=RpcFaultPlan.uniform(rate)))
    if raw:
        network.rpc_client(RAW_POLICY)
    shot = TopoShot.attach(network, obs=obs)
    measurement = shot.measure_network()
    client = network._rpc_client
    counters = client.counters() if client is not None else {}
    return measurement, counters


def sweep(obs=None):
    rows = []
    for rate in RATE_SWEEP:
        raw, raw_counters = run_point(rate, raw=True)
        hardened, hard_counters = run_point(rate, obs=obs)
        rows.append((rate, raw, hardened, raw_counters, hard_counters))
    return rows


def write_results(rows, kind, determinism_ok=None):
    baseline = next(h for rate, _, h, _, _ in rows if rate == 0.0)
    payload = {
        "benchmark": "robustness_rpc",
        "kind": kind,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "n_nodes": N_NODES,
        "seed": SEED,
        "gate_rate": GATE_RATE,
        "max_recall_loss_at_gate": MAX_RECALL_LOSS_AT_GATE,
        "baseline_recall": round(baseline.score.recall, 4),
        "determinism_ok": determinism_ok,
        "points": [
            {
                "fault_rate": rate,
                "raw": {
                    "precision": round(raw.score.precision, 4),
                    "recall": round(raw.score.recall, 4),
                    "targets": len(raw.node_ids),
                    "counters": raw_counters,
                },
                "hardened": {
                    "precision": round(hardened.score.precision, 4),
                    "recall": round(hardened.score.recall, 4),
                    "targets": len(hardened.node_ids),
                    "degraded_probes": sum(
                        1 for f in hardened.failures if f.kind == "rpc_degraded"
                    ),
                    "counters": hard_counters,
                },
            }
            for rate, raw, hardened, raw_counters, hard_counters in rows
        ],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def format_table(rows):
    lines = [
        f"{'fault rate':>10} {'raw recall':>11} {'raw targets':>12} "
        f"{'hard recall':>12} {'hard retries':>13} {'hard hedges':>12}"
    ]
    for rate, raw, hardened, _, hard_counters in rows:
        lines.append(
            f"{rate:>10.2f} {raw.score.recall:>11.3f} "
            f"{len(raw.node_ids):>12} {hardened.score.recall:>12.3f} "
            f"{hard_counters.get('retries', 0):>13} "
            f"{hard_counters.get('hedges', 0):>12}"
        )
    lines.append("")
    lines.append(
        "raw = single attempt, no validation, failures read as negatives "
        "(and unresponsive-looking targets dropped); hardened = deadlines "
        "+ jittered retries + hedged snapshot reads + degraded-mode "
        "inference — plane failures become suspect labels, never false "
        "negatives"
    )
    return "\n".join(lines)


@pytest.mark.benchmark(group="robustness")
def test_rpc_recall_sweep(benchmark):
    obs = Observability()

    def run():
        rows = sweep(obs=obs)
        # Golden determinism: replay the gate point, must be identical.
        replay, _ = run_point(GATE_RATE)
        reference = next(h for rate, _, h, _, _ in rows if rate == GATE_RATE)
        deterministic = (
            replay.edges == reference.edges
            and str(replay.score) == str(reference.score)
        )
        return rows, deterministic

    rows, deterministic = run_once(benchmark, run)
    write_results(rows, kind="full", determinism_ok=deterministic)
    emit("robustness_rpc", format_table(rows))
    emit_metrics_sidecar("BENCH_rpc", obs)

    assert deterministic, "same (seed, rate) must replay identically"
    by_rate = {rate: (raw, hardened) for rate, raw, hardened, _, _ in rows}
    clean_raw, clean_hardened = by_rate[0.0]
    # No plan installed: the resilient client is pure passthrough, so the
    # fault-free point is bit-identical under either policy.
    assert clean_raw.edges == clean_hardened.edges
    baseline_recall = clean_hardened.score.recall
    # The 5%-of-baseline recall gate at the 20% fault rate...
    _, hardened_gate = by_rate[GATE_RATE]
    assert hardened_gate.score.recall >= baseline_recall * (
        1.0 - MAX_RECALL_LOSS_AT_GATE
    )
    # ...where the raw client is measurably worse than the hardened one.
    raw_gate, _ = by_rate[GATE_RATE]
    assert raw_gate.score.recall < hardened_gate.score.recall
    # Degradation is monotone in spirit: the hardened client never does
    # worse than the raw one at any faulty point.
    for rate, raw, hardened, _, _ in rows:
        if rate > 0:
            assert hardened.score.recall >= raw.score.recall, rate
    # Plane faults cost recall at most, never precision.
    for rate, raw, hardened, _, _ in rows:
        assert hardened.score.precision == 1.0, rate


@pytest.mark.benchmark(group="robustness")
def test_rpc_smoke(benchmark):
    """CI smoke: one gate-rate point, hardened vs raw, recall bar."""
    obs = Observability()

    def run():
        baseline, _ = run_point(0.0)
        raw, _ = run_point(GATE_RATE, raw=True)
        hardened, counters = run_point(GATE_RATE, obs=obs)
        return baseline, raw, hardened, counters

    baseline, raw, hardened, counters = run_once(benchmark, run)
    rows = [
        (0.0, baseline, baseline, {}, {}),
        (GATE_RATE, raw, hardened, {}, counters),
    ]
    write_results(rows, kind="smoke", determinism_ok=None)
    emit(
        "rpc_smoke",
        f"baseline: {baseline.score}\n"
        f"raw@{GATE_RATE:.0%}: {raw.score}\n"
        f"hardened@{GATE_RATE:.0%}: {hardened.score}\n"
        f"client counters: {counters}",
    )
    emit_metrics_sidecar("BENCH_rpc", obs)
    assert hardened.score.recall >= baseline.score.recall * (
        1.0 - MAX_RECALL_LOSS_AT_GATE
    )
    assert raw.score.recall < hardened.score.recall
    assert hardened.score.precision == 1.0
