"""Figure 7 (Appendix B): recall versus target mempool size.

Paper's local validation: three mutually connected local nodes; node A's
mempool size X is swept (3120..9120) with X' background transactions
pre-loaded; TopoShot (Z = 5120) achieves 100% recall iff X - X' <= 5120,
dropping to 0% beyond — a hard cliff at the flood size.

Reproduction at 1:10 scale: Z = 512, pool sizes swept around it with a
fixed pending load; the recall cliff must sit exactly where
capacity - pending exceeds Z.
"""

import pytest

from benchmarks.harness import emit, run_once
from repro.core.config import MeasurementConfig
from repro.core.primitive import measure_one_link
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.supernode import Supernode
from repro.eth.transaction import gwei
from repro.netgen.workloads import prefill_mempools

Z = 512
PENDING = 100
CAPACITIES = (312, 412, 512, 612, 712, 812, 912)
TRIALS = 3


def recall_for_capacity(capacity: int, seed: int) -> bool:
    network = Network(seed=seed)
    base = GETH.scaled(512)
    network.create_node("a", NodeConfig(policy=base.with_capacity(capacity)))
    network.create_node("b", NodeConfig(policy=base))
    network.create_node("c", NodeConfig(policy=base))
    network.connect("a", "b")
    network.connect("b", "c")
    network.connect("a", "c")
    # Background transactions priced well above txC, as in the paper's
    # local setup — txC is then the lowest-priced pending transaction and
    # one eviction flushes it, putting the cliff exactly at
    # capacity - pending = Z.
    prefill_mempools(network, median_price=gwei(2.0), sigma=0.1, count=PENDING)
    supernode = Supernode.join(network)
    config = MeasurementConfig.for_policy(base).with_future_count(Z).with_gas_price(
        gwei(0.5)
    )
    return measure_one_link(network, supernode, "a", "b", config).connected


def sweep():
    rows = []
    for capacity in CAPACITIES:
        hits = sum(
            recall_for_capacity(capacity, seed=100 + trial)
            for trial in range(TRIALS)
        )
        rows.append((capacity, hits / TRIALS))
    return rows


@pytest.mark.benchmark(group="fig7")
def test_fig7_recall_vs_mempool_size(benchmark):
    rows = run_once(benchmark, sweep)
    lines = [
        f"Z = {Z} future txs, {PENDING} pending pre-loaded",
        f"{'mempool size':>13} {'size - pending':>15} {'recall':>8}",
    ]
    for capacity, recall in rows:
        gap = capacity - PENDING
        lines.append(f"{capacity:>13} {gap:>15} {recall:>8.2f}")
        if gap <= Z:
            assert recall == 1.0, (capacity, recall)
        else:
            assert recall == 0.0, (capacity, recall)
    lines.append("")
    lines.append(
        "paper: recall 100% iff mempool_size - pending <= Z (5120), else 0% "
        "— the same cliff, at our scaled Z"
    )
    emit("fig7_recall_vs_mempool", "\n".join(lines))
