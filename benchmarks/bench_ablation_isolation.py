"""Ablation: the isolation price band is what buys 100% precision.

TopoShot prices txA at (1 + R/2)Y — deliberately *between* txB's
(1 - R/2)Y and the (1 + R)Y replacement threshold over txC. This ablation
sweeps txA's bump over Y and shows the band is tight on both sides:

- bump < 4.5% (= (1-R/2)(1+R) - 1): txA can no longer replace txB on the
  sink -> recall dies;
- 4.5% <= bump < R: the working band (precision and recall both perfect);
- bump >= R: txA replaces txC on *third parties* and floods -> false
  positives, precision collapses.
"""

import math

import pytest

from benchmarks.harness import emit, run_once
from repro.core.config import MeasurementConfig
from repro.core.gas_estimator import estimate_y
from repro.core.primitive import build_future_flood, rebid
from repro.core.results import edge, score_edges
from repro.eth.account import Wallet
from repro.eth.supernode import Supernode
from repro.eth.transaction import TransactionFactory, gwei
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools
from tests.conftest import pairs_of

BUMPS = (0.02, 0.04, 0.055, 0.07, 0.09, 0.105, 0.12)


def probe_with_bump(bump: float, pairs, seed=19):
    """measure_one_link with a custom txA price: (1 + bump) * Y."""
    detected = set()
    for a, b in pairs:
        network = quick_network(
            n_nodes=16, seed=seed, outbound_dials=3, max_peers=8
        )
        prefill_mempools(network, median_price=gwei(1.0))
        supernode = Supernode.join(network)
        config = MeasurementConfig()
        wallet = Wallet(f"ablate-{bump}-{a}-{b}")
        factory = TransactionFactory()
        y = estimate_y(supernode, config)
        tx_c = factory.transfer(wallet.fresh_account(), y)
        supernode.send_transactions(a, [tx_c])
        network.run(config.flood_wait)
        flood = build_future_flood(wallet, factory, config.with_future_count(128), y)
        tx_b = rebid(factory, tx_c, config.price_b(y))
        supernode.send_transactions(b, [*flood, tx_b])
        network.run(config.settle_wait)
        tx_a = rebid(factory, tx_c, int(math.ceil(y * (1.0 + bump))))
        supernode.send_transactions(a, [*flood, tx_a])
        network.run(config.propagation_wait)
        if supernode.observed_from(b, tx_a.hash):
            detected.add(edge(a, b))
    return detected


def sweep():
    network = quick_network(n_nodes=16, seed=19, outbound_dials=3, max_peers=8)
    truth = network.ground_truth_graph()
    pairs = pairs_of(truth, connected=True, limit=3) + pairs_of(
        truth, connected=False, limit=3
    )
    true_edges = {edge(a, b) for a, b in pairs if truth.has_edge(a, b)}
    rows = []
    for bump in BUMPS:
        detected = probe_with_bump(bump, pairs)
        rows.append((bump, score_edges(detected, true_edges)))
    return rows


@pytest.mark.benchmark(group="ablation-isolation")
def test_ablation_isolation_price_band(benchmark):
    rows = run_once(benchmark, sweep)
    lines = [f"{'txA bump over Y':>16} {'precision':>10} {'recall':>8}  regime"]
    for bump, score in rows:
        # Lower band edge: txA replaces txB iff
        # (1 + bump) >= (1 - R/2)(1 + R) = 1.045 at R = 10%.
        if bump < 0.045:
            regime = "below band: txA cannot replace txB"
            assert score.recall == 0.0, bump
        elif bump < 0.10:
            regime = "working band (TopoShot uses R/2 = 5%)"
            assert score.precision == 1.0 and score.recall == 1.0, bump
        else:
            regime = "above band: txA replaces txC everywhere"
            assert score.precision < 1.0, bump
        lines.append(
            f"{bump:>16.3f} {score.precision:>10.3f} {score.recall:>8.3f}  {regime}"
        )
    lines.append("")
    lines.append(
        "design choice validated: (1+R/2)Y replaces (1-R/2)Y txB "
        "(bump ~10.5% >= R) but never Y-priced txC (bump 5% < R)"
    )
    emit("ablation_isolation", "\n".join(lines))
