"""Section 4.1 / Appendix A: TxProbe's (in)applicability to Ethereum.

Two propagation regimes, same topology, same TxProbe procedure:

- Bitcoin-style announce-only propagation: announcement-hold blocking
  enforces isolation and TxProbe measures correctly (why it works for
  Bitcoin);
- Ethereum's push+announce propagation: pushes bypass the hold, markers
  relay through third parties, and precision collapses with false
  positives ("the existence of direct propagation, no matter how small
  portion it plays, negates the isolation property").
"""

import itertools

import pytest

from benchmarks.harness import emit, run_once
from repro.baselines.txprobe import txprobe_survey
from repro.eth.supernode import Supernode
from repro.eth.transaction import gwei
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools


def survey(announce_only: bool):
    network = quick_network(
        n_nodes=20, seed=31, announce_only=announce_only,
        outbound_dials=4, max_peers=12,
    )
    truth = network.ground_truth_graph()
    prefill_mempools(network, median_price=gwei(1.0))
    supernode = Supernode.join(network)
    pairs = list(
        itertools.islice(itertools.combinations(sorted(truth.nodes()), 2), 40)
    )
    return txprobe_survey(network, supernode, pairs)


@pytest.mark.benchmark(group="baseline-txprobe")
def test_txprobe_inapplicability(benchmark):
    results = run_once(
        benchmark,
        lambda: {
            "bitcoin-style (announce only)": survey(announce_only=True),
            "ethereum (push + announce)": survey(announce_only=False),
        },
    )
    lines = [f"{'propagation regime':<30} {'precision':>10} {'recall':>8} {'FPs':>5}"]
    for name, outcome in results.items():
        score = outcome.score
        lines.append(
            f"{name:<30} {score.precision:>10.3f} {score.recall:>8.3f} "
            f"{score.false_positives:>5}"
        )
    lines.append("")
    lines.append(
        "paper: TxProbe's isolation relies on announcement blocking; "
        "Ethereum's direct pushes negate it (Section 4.1)"
    )
    emit("baseline_txprobe", "\n".join(lines))

    bitcoin = results["bitcoin-style (announce only)"].score
    ethereum = results["ethereum (push + announce)"].score
    assert bitcoin.precision == 1.0  # works on Bitcoin-style propagation
    assert ethereum.false_positives > 0  # breaks on Ethereum
    assert ethereum.precision < bitcoin.precision
