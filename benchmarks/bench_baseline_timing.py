"""Section 4 (W3 prior art): timing-analysis inference is low-accuracy.

Paper on Neudecker et al. (2016): "conducts a timing analysis of Bitcoin
transaction propagation to infer the network topology. Despite the
optimization, both works are limited in terms of low accuracy."

Reproduction: run the rank-vote timing heuristic and TopoShot on the same
sparse network; the timing method must land materially below TopoShot's
precision/recall product.
"""

import pytest

from benchmarks.harness import emit, run_once
from repro.baselines.timing import timing_inference
from repro.core.campaign import TopoShot
from repro.eth.supernode import Supernode
from repro.eth.transaction import gwei
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools


def run_comparison():
    network = quick_network(
        n_nodes=24, seed=37, outbound_dials=4, max_peers=10,
        mempool_capacity=256,
    )
    prefill_mempools(network, median_price=gwei(1.0))
    supernode = Supernode.join(network)
    timing = timing_inference(network, supernode, probes_per_node=3)
    supernode.clear_observations()
    network.forget_known_transactions()
    shot = TopoShot(network, supernode)
    shot.config = shot.config.with_repeats(3)
    measurement = shot.measure_network(preprocess=False)
    return timing, measurement


@pytest.mark.benchmark(group="baseline-timing")
def test_timing_inference_low_accuracy(benchmark):
    timing, measurement = run_once(benchmark, run_comparison)
    t = timing.score_vs_active
    m = measurement.score
    lines = [
        f"{'method':<20} {'precision':>10} {'recall':>8} {'F1':>6}",
        f"{'timing inference':<20} {t.precision:>10.3f} {t.recall:>8.3f} {t.f1:>6.3f}",
        f"{'TopoShot':<20} {m.precision:>10.3f} {m.recall:>8.3f} {m.f1:>6.3f}",
        "",
        "paper: timing-analysis inference is 'limited in terms of low "
        "accuracy' versus TopoShot's guaranteed precision",
    ]
    emit("baseline_timing", "\n".join(lines))
    assert m.precision == 1.0
    assert t.f1 < m.f1
    assert t.f1 < 0.9
