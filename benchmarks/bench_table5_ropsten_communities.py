"""Table 5: Louvain communities detected in the measured Ropsten testnet.

Paper: seven communities; the largest holds ~22% of the nodes; intra-
community densities sit between 6% and 18%; every community has far more
inter-community than intra-community edges (consistent with the very low
modularity of Table 4).
"""

import pytest

from benchmarks.harness import emit, run_once
from repro.analysis.communities import community_table, detect_communities


@pytest.mark.benchmark(group="table5")
def test_table5_ropsten_communities(benchmark, ropsten_campaign):
    _, _, measurement = ropsten_campaign
    rows = run_once(
        benchmark, lambda: detect_communities(measurement.graph, seed=1)
    )
    text = community_table(rows)
    text += (
        "\n\npaper: 7 communities, largest = 22% of nodes, densities "
        "6%-18%, inter >> intra everywhere"
    )
    emit("table5_ropsten_communities", text)

    n_nodes = measurement.graph.number_of_nodes()
    assert 2 <= len(rows) <= 10
    largest_share = rows[0].n_nodes / n_nodes
    assert largest_share <= 0.6
    # The signature of low modularity: inter-community edges dominate
    # intra-community ones for most communities.
    dominated = sum(1 for row in rows if row.inter_edges > row.intra_edges)
    assert dominated >= len(rows) // 2
