"""Robustness: recall degradation under injected faults, and its recovery.

The paper's live campaigns (Sections 6-7) fought lossy links, churning
peers and restarting nodes; recall losses there came from setup failures,
not from the primitive. This benchmark characterizes the reproduction the
same way: sweep message-loss and churn rates over a 24-node network and
report the recall degradation curve, once with the bare campaign and once
with the hardened loop (3 repeats + 2 retries with backoff).

Run a single fast smoke point (CI) with::

    PYTHONPATH=src python -m pytest benchmarks/bench_robustness_faults.py \
        -k smoke --benchmark-disable -q
"""

import pytest

from benchmarks.harness import emit, emit_metrics_sidecar, run_once
from repro.core.campaign import TopoShot
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools
from repro.obs import Observability
from repro.sim.faults import FaultPlan

N_NODES = 24
SEED = 13
LOSS_SWEEP = (0.0, 0.02, 0.05, 0.10)
CHURN_SWEEP = (0.0, 0.01, 0.02)


def run_point(plan, repeats=1, retries=0, obs=None):
    network = quick_network(n_nodes=N_NODES, seed=SEED)
    prefill_mempools(network)
    if plan.enabled:
        network.install_faults(plan)
    shot = TopoShot.attach(network, obs=obs)
    shot.config = shot.config.with_repeats(repeats)
    if retries:
        shot.config = shot.config.with_retries(retries)
    measurement = shot.measure_network()
    return measurement


def sweep(obs=None):
    rows = []
    for loss in LOSS_SWEEP:
        plan = FaultPlan(loss_rate=loss)
        bare = run_point(plan)
        hardened = run_point(plan, repeats=3, retries=2, obs=obs)
        rows.append(("loss", loss, bare.score, hardened.score))
    for churn in CHURN_SWEEP[1:]:
        plan = FaultPlan(churn_rate=churn, churn_downtime=5.0)
        bare = run_point(plan)
        hardened = run_point(plan, repeats=3, retries=2, obs=obs)
        rows.append(("churn", churn, bare.score, hardened.score))
    return rows


@pytest.mark.benchmark(group="robustness")
def test_robustness_recall_degradation(benchmark):
    # One registry across all hardened points: the sidecar reports the
    # sweep's cumulative campaign metrics (failures by kind, retries, ...).
    obs = Observability()
    rows = run_once(benchmark, lambda: sweep(obs=obs))
    emit_metrics_sidecar("robustness_faults", obs)
    lines = [
        f"{'fault':>6} {'rate':>6} {'bare recall':>12} "
        f"{'hardened recall':>16} {'hardened precision':>19}"
    ]
    for kind, rate, bare, hardened in rows:
        lines.append(
            f"{kind:>6} {rate:>6.2f} {bare.recall:>12.3f} "
            f"{hardened.recall:>16.3f} {hardened.precision:>19.3f}"
        )
    lines.append("")
    lines.append(
        "hardened = 3 repeats + 2 retries with exponential backoff; the "
        "union of repeats recovers edges lost to dropped messages, "
        "matching the paper's union-of-three-runs validation (Section 6.1)"
    )
    emit("robustness_faults", "\n".join(lines))

    by_key = {(kind, rate): (bare, hardened) for kind, rate, bare, hardened in rows}
    clean_bare, clean_hard = by_key[("loss", 0.0)]
    assert clean_bare.precision == 1.0 and clean_hard.precision == 1.0
    # Acceptance bar: loss <= 5% with retries enabled keeps recall >= 0.9.
    for rate in LOSS_SWEEP:
        if 0.0 < rate <= 0.05:
            assert by_key[("loss", rate)][1].recall >= 0.9, rate
    # The hardened loop never does worse than the bare one.
    for key, (bare, hardened) in by_key.items():
        assert hardened.recall >= bare.recall, key


@pytest.mark.benchmark(group="robustness")
def test_robustness_smoke(benchmark):
    """One fast fault point for CI: 5% loss, hardened loop, recall bar."""
    obs = Observability()
    measurement = run_once(
        benchmark,
        lambda: run_point(
            FaultPlan(loss_rate=0.05), repeats=3, retries=2, obs=obs
        ),
    )
    emit(
        "robustness_smoke",
        f"loss=0.05 hardened: {measurement.score}\n"
        f"failures: {len(measurement.failures)}",
    )
    emit_metrics_sidecar("robustness_smoke", obs)
    assert measurement.score.recall >= 0.9
