"""Appendix E: TopoShot under EIP-1559 fee markets.

Paper: the mempool prices by max fee and drops transactions whose max fee
falls below the base fee; "as long as we ensure the max fee in measurement
transactions is above the base fee, the measurement process is not
affected by the presence of EIP1559."

Reproduction: the same link measured across a base-fee sweep; detection
must hold whenever Y clears the base fee and fail closed (never falsely
positive) once the base fee overtakes Y.
"""

import pytest

from benchmarks.harness import emit, run_once
from repro.core.config import MeasurementConfig
from repro.core.primitive import measure_one_link
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.supernode import Supernode
from repro.eth.transaction import gwei
from repro.netgen.workloads import prefill_mempools

Y = gwei(1.0)
BASE_FEES = (0, gwei(0.25), gwei(0.5), gwei(0.9), gwei(1.5), gwei(3.0))


def measure_with_base_fee(base_fee: int):
    network = Network(seed=88)
    policy = GETH.scaled(256).with_base_fee_enforcement()
    ids = [f"n{i}" for i in range(6)]
    for node_id in ids:
        network.create_node(node_id, NodeConfig(policy=policy))
    for i in range(len(ids)):
        network.connect(ids[i], ids[(i + 1) % len(ids)])
    network.connect("n0", "n3")
    for node_id in ids:
        network.node(node_id).mempool.base_fee = base_fee
    # Background traffic priced around Y, as on a real network where Y is
    # estimated as the pool median; transactions under the base fee are
    # rejected at admission, exactly as Appendix E describes.
    prefill_mempools(network, median_price=gwei(1.0), sigma=0.3)
    supernode = Supernode.join(network)
    supernode.mempool.base_fee = base_fee
    config = MeasurementConfig(gas_price_y=Y)
    true_link = measure_one_link(network, supernode, "n0", "n1", config)
    supernode.clear_observations()
    network.forget_known_transactions()
    non_link = measure_one_link(network, supernode, "n0", "n2", config)
    return true_link.connected, non_link.connected


def sweep():
    return [(fee, *measure_with_base_fee(fee)) for fee in BASE_FEES]


@pytest.mark.benchmark(group="appe")
def test_appe_eip1559_base_fee_sweep(benchmark):
    rows = run_once(benchmark, sweep)
    lines = [f"Y = {Y / 1e9:.2f} gwei", f"{'base fee (gwei)':>16} {'true link':>10} {'non-link':>9}"]
    for fee, true_hit, false_hit in rows:
        lines.append(
            f"{fee / 1e9:>16.2f} {str(true_hit):>10} {str(false_hit):>9}"
        )
        assert not false_hit  # precision survives any base fee
        if fee < Y:
            assert true_hit  # measurement unaffected while Y clears base fee
        else:
            assert not true_hit  # fails closed once Y is underpriced
    lines.append("")
    lines.append(
        "paper: EIP-1559 does not affect the measurement while the "
        "measurement max fee stays above the base fee"
    )
    emit("appe_eip1559", "\n".join(lines))
