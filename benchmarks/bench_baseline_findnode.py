"""Section 4 (W2): FIND_NODE crawling measures inactive, not active, edges.

Paper: "This method cannot distinguish a node's (50) active neighbors from
its (272) inactive ones and does not reveal the exact topology information
as TopoShot does."

Reproduction: crawl every routing table, compare the inactive-edge graph
against the true active topology, and contrast with TopoShot on the same
network.
"""

import pytest

from benchmarks.harness import emit, run_once
from repro.baselines.findnode import crawl_inactive_edges
from repro.core.campaign import TopoShot
from repro.eth.supernode import Supernode
from repro.eth.transaction import gwei
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools


def run_comparison():
    network = quick_network(
        n_nodes=30, seed=17, outbound_dials=5, max_peers=14,
        mempool_capacity=256, routing_table_capacity=20,
    )
    prefill_mempools(network, median_price=gwei(1.0))
    supernode = Supernode.join(network)
    crawl = crawl_inactive_edges(network, supernode)
    supernode.clear_observations()
    network.forget_known_transactions()
    shot = TopoShot(network, supernode)
    shot.config = shot.config.with_repeats(3)
    measurement = shot.measure_network(preprocess=False)
    return network, crawl, measurement


@pytest.mark.benchmark(group="baseline-findnode")
def test_findnode_inactive_vs_active(benchmark):
    network, crawl, measurement = run_once(benchmark, run_comparison)
    truth_edges = len(network.ground_truth_edges())
    lines = [
        f"true active links              : {truth_edges}",
        f"crawled inactive edges         : {len(crawl.inactive_edges)}",
        f"FIND_NODE precision vs active  : {crawl.active_edge_precision:.3f}",
        f"FIND_NODE recall vs active     : {crawl.active_edge_coverage:.3f}",
        f"TopoShot precision             : {measurement.score.precision:.3f}",
        f"TopoShot recall                : {measurement.score.recall:.3f}",
        "",
        "paper: routing tables hold 272 inactive neighbours vs ~50 active; "
        "crawls cannot reveal the active topology (W2 vs W3)",
    ]
    emit("baseline_findnode", "\n".join(lines))

    # Inactive sets are large and unspecific; TopoShot is exact.
    assert len(crawl.inactive_edges) > truth_edges
    assert crawl.active_edge_precision < measurement.score.precision
    assert measurement.score.precision == 1.0
