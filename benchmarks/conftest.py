"""Shared fixtures for the per-table/per-figure benchmark harness.

Each ``bench_*`` file regenerates one table or figure from the paper's
evaluation: it runs the experiment (scaled to simulator sizes), prints the
same rows/series the paper reports, and writes them to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture.
Absolute numbers differ from the paper (our substrate is a simulator, not
the authors' testbed); the *shape* — who wins, rough factors, crossovers —
is the reproduction target recorded in EXPERIMENTS.md.

Expensive campaigns are session-cached so several benches share one
measured topology (the paper likewise derives Figure 6 and Tables 4/5 from
a single Ropsten snapshot).
"""

from __future__ import annotations

import functools

import pytest

from repro.core.campaign import TopoShot
from repro.netgen.ethereum import (
    generate_network,
    goerli_like,
    rinkeby_like,
    ropsten_like,
)
from repro.netgen.workloads import prefill_mempools


@functools.lru_cache(maxsize=None)
def measured_testnet(name: str, seed: int = 1):
    """One full TopoShot campaign against a testnet preset (cached)."""
    preset = {
        "ropsten": ropsten_like,
        "rinkeby": rinkeby_like,
        "goerli": goerli_like,
    }[name]
    network = generate_network(preset(seed=seed))
    prefill_mempools(network)
    shot = TopoShot.attach(network)
    shot.config = shot.config.with_repeats(3)
    measurement = shot.measure_network()
    return network, shot, measurement


@pytest.fixture(scope="session")
def ropsten_campaign():
    return measured_testnet("ropsten")


@pytest.fixture(scope="session")
def rinkeby_campaign():
    return measured_testnet("rinkeby")


@pytest.fixture(scope="session")
def goerli_campaign():
    return measured_testnet("goerli")
