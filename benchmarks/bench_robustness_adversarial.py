"""Robustness: precision under Byzantine peers, and its recovery.

The fault benchmark (bench_robustness_faults) characterizes network
*weather* — losses and churn cost recall, never precision. Byzantine
peers are a different animal: spoofing relays re-broadcast ``txA`` past
its price band and R=0 replacers admit under-bumped replacements, so the
isolation argument that makes TopoShot's positives structurally sound no
longer holds and *false edges* appear. This benchmark sweeps the
Byzantine population fraction over a 24-node network and reports the
precision degradation curve twice: with the hardened pipeline (RPC
cross-check + evidence labelling + timing-race cross-validation of
suspect edges, ``MeasurementConfig.hardened``) and with hardening
disabled.

Gates:

* all-honest point: hardened and unhardened agree edge-for-edge (the
  hardened verdicts are behavior-neutral on conforming networks), and a
  strict invariant checker records **zero** violations;
* at a 10% Byzantine population the hardened precision stays >= 0.95
  while the unhardened pipeline is measurably worse;
* golden determinism: the same (seed, mix) replays to the identical
  edge set and violation counts.

Run a single fast smoke point (CI) with::

    PYTHONPATH=src python -m pytest benchmarks/bench_robustness_adversarial.py \
        -k smoke --benchmark-disable -q
"""

import json
import os
import platform

import pytest

from benchmarks.harness import RESULTS_DIR, emit, emit_metrics_sidecar, run_once
from repro.core.campaign import TopoShot
from repro.eth.behaviors import BehaviorMix
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools
from repro.obs import Observability

JSON_PATH = RESULTS_DIR / "BENCH_adversarial.json"

N_NODES = 24
SEED = 17
FRACTIONS = (0.0, 0.05, 0.10, 0.20)
CROSS_VALIDATE = 3

# Heavy on the two false-positive mechanisms (spoofing relays, R=0
# replacers), with the recall-eroding kinds filling the rest.
MIX = BehaviorMix(
    spoof_relay=0.4,
    nonconforming_replacer=0.2,
    stale_client=0.2,
    censor=0.1,
    duplicate_spammer=0.1,
)

MIN_HARDENED_PRECISION_AT_10 = 0.95


def run_point(frac, hardened, obs=None, invariants=False):
    """One build-install-measure run; returns (measurement, checker)."""
    network = quick_network(n_nodes=N_NODES, seed=SEED)
    prefill_mempools(network)
    if frac:
        network.install_behaviors(MIX.scaled(frac))
    checker = None
    if invariants:
        checker = network.install_invariants(strict=frac == 0.0)
    shot = TopoShot.attach(network, obs=obs)
    if hardened:
        shot.config = shot.config.with_cross_validation(CROSS_VALIDATE)
    else:
        shot.config = shot.config.with_hardening(False)
    measurement = shot.measure_network()
    return measurement, checker


def sweep(obs=None):
    rows = []
    for frac in FRACTIONS:
        unhardened, _ = run_point(frac, hardened=False)
        hardened, _ = run_point(frac, hardened=True, obs=obs)
        rows.append((frac, unhardened, hardened))
    return rows


def write_results(rows, kind, determinism_ok=None, violations=None):
    payload = {
        "benchmark": "robustness_adversarial",
        "kind": kind,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "n_nodes": N_NODES,
        "seed": SEED,
        "mix": MIX.describe(),
        "cross_validate": CROSS_VALIDATE,
        "min_hardened_precision_at_10pct": MIN_HARDENED_PRECISION_AT_10,
        "determinism_ok": determinism_ok,
        "honest_invariant_violations": violations,
        "points": [
            {
                "byzantine_fraction": frac,
                "unhardened": {
                    "precision": round(unhardened.score.precision, 4),
                    "recall": round(unhardened.score.recall, 4),
                    "false_positive_edges": [
                        list(pair)
                        for pair in unhardened.score.false_positive_edges
                    ],
                },
                "hardened": {
                    "precision": round(hardened.score.precision, 4),
                    "recall": round(hardened.score.recall, 4),
                    "quarantined": len(hardened.quarantined),
                    "suspect_nodes": sorted(hardened.suspect_nodes),
                },
            }
            for frac, unhardened, hardened in rows
        ],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def format_table(rows):
    lines = [
        f"{'byzantine':>10} {'unhard prec':>12} {'unhard rec':>11} "
        f"{'hard prec':>10} {'hard rec':>9} {'quarantined':>12}"
    ]
    for frac, unhardened, hardened in rows:
        lines.append(
            f"{frac:>10.2f} {unhardened.score.precision:>12.3f} "
            f"{unhardened.score.recall:>11.3f} "
            f"{hardened.score.precision:>10.3f} "
            f"{hardened.score.recall:>9.3f} "
            f"{len(hardened.quarantined):>12}"
        )
    lines.append("")
    lines.append(
        "hardened = RPC cross-check + per-edge evidence + timing-race "
        f"cross-validation (1-of-{CROSS_VALIDATE}) of suspect edges; "
        "the precision recovery trades away the recall the adversary "
        "already poisoned"
    )
    return "\n".join(lines)


@pytest.mark.benchmark(group="robustness")
def test_adversarial_precision_sweep(benchmark):
    obs = Observability()

    def run():
        rows = sweep(obs=obs)
        # Golden determinism: replay the 10% point, must be identical.
        replay, _ = run_point(0.10, hardened=True)
        reference = next(h for f, _, h in rows if f == 0.10)
        deterministic = (
            replay.edges == reference.edges
            and str(replay.score) == str(reference.score)
            and replay.quarantined == reference.quarantined
        )
        return rows, deterministic

    rows, deterministic = run_once(benchmark, run)
    write_results(rows, kind="full", determinism_ok=deterministic)
    emit("robustness_adversarial", format_table(rows))
    emit_metrics_sidecar("BENCH_adversarial", obs)

    assert deterministic, "same (seed, mix) must replay identically"
    by_frac = {frac: (u, h) for frac, u, h in rows}
    honest_unhardened, honest_hardened = by_frac[0.0]
    # Behavior-neutral on honest networks: identical verdicts either way.
    assert honest_hardened.edges == honest_unhardened.edges
    assert honest_hardened.score.precision == 1.0
    # The adversary measurably hurts the unhardened pipeline at 10%...
    unhardened_10, hardened_10 = by_frac[0.10]
    assert unhardened_10.score.precision < MIN_HARDENED_PRECISION_AT_10
    # ...and the hardened pipeline holds the precision bar.
    assert hardened_10.score.precision >= MIN_HARDENED_PRECISION_AT_10
    for frac, unhardened, hardened in rows:
        if frac > 0:
            assert hardened.score.precision >= unhardened.score.precision, frac


@pytest.mark.benchmark(group="robustness")
def test_adversarial_smoke(benchmark):
    """CI smoke: the all-honest hardened run is violation-free under a
    strict invariant checker and loses nothing to the hardening."""
    obs = Observability()
    measurement, checker = run_once(
        benchmark,
        lambda: run_point(0.0, hardened=True, obs=obs, invariants=True),
    )
    rows = [(0.0, measurement, measurement)]
    write_results(
        rows,
        kind="smoke",
        determinism_ok=None,
        violations=checker.total_violations,
    )
    emit(
        "adversarial_smoke",
        f"all-honest hardened: {measurement.score}\n{checker.summary()}",
    )
    emit_metrics_sidecar("BENCH_adversarial", obs)
    assert checker.total_violations == 0
    assert measurement.score.precision == 1.0
    assert not measurement.quarantined
    assert not measurement.suspect_nodes
