"""Figure 5: measurement-time speedup of the parallel schedule.

Paper: measuring a 100-node group (~4950 edges) gets about an order of
magnitude faster at group size K=30 compared to K=1, because the iteration
count falls as N/K + log K while per-iteration time stays roughly constant.

Reproduction: measure the same N-node target set at several K and compare
simulated measurement durations (the simulated clock is the analogue of
the paper's wall-clock measurement time).
"""

import pytest

from benchmarks.harness import emit, parallel_map, run_once
from repro.core.campaign import TopoShot
from repro.core.schedule import expected_iteration_count
from repro.netgen.ethereum import NetworkSpec, generate_network
from repro.netgen.workloads import prefill_mempools

N_NODES = 40
K_SWEEP = (1, 2, 5, 10, 20, 30)


def measure_at(k: int):
    # Pools sized so even K=20's 400-edge first iteration fits the slot
    # budget (the paper's 2000-of-5120 ratio).
    network = generate_network(
        NetworkSpec(n_nodes=N_NODES, seed=3, mempool_capacity=1280)
    )
    prefill_mempools(network)
    shot = TopoShot.attach(network)
    measurement = shot.measure_network(group_size=k, preprocess=False)
    return measurement


def sweep():
    # Each K builds its own network, so the sweep parallelises cleanly;
    # parallel_map preserves input order (serial unless REPRO_BENCH_WORKERS).
    return list(zip(K_SWEEP, parallel_map(measure_at, K_SWEEP)))


@pytest.mark.benchmark(group="fig5")
def test_fig5_parallel_speedup(benchmark):
    results = run_once(benchmark, sweep)
    base_duration = results[0][1].duration
    lines = [
        f"{'K':>4} {'iterations':>11} {'sim time (s)':>13} {'speedup':>8} "
        f"{'recall':>8}"
    ]
    speedups = {}
    for k, measurement in results:
        speedup = base_duration / measurement.duration
        speedups[k] = speedup
        lines.append(
            f"{k:>4} {measurement.iterations:>11} {measurement.duration:>13.1f} "
            f"{speedup:>8.1f} {measurement.score.recall:>8.3f}"
        )
        # Iteration count follows N/K + log K.
        assert (
            abs(measurement.iterations - expected_iteration_count(N_NODES, k)) <= 5
        )
    lines.append("")
    lines.append(
        "paper: ~10x reduction in measurement time at K=30 vs serial "
        "(iteration count ~ N/K + log K)"
    )
    emit("fig5_parallel_speedup", "\n".join(lines))
    # Shape: monotone speedup, ~an order of magnitude by K=30.
    assert speedups[30] > speedups[5] > speedups[1] == 1.0
    assert speedups[30] >= 5.0
