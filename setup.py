"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` also works on
offline environments whose setuptools lacks the ``wheel`` package (legacy
editable installs go through ``setup.py develop``, which needs no wheel).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'TopoShot: Uncovering Ethereum's Network Topology "
        "Leveraging Replacement Transactions' (IMC 2021)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["networkx>=3.0", "numpy", "scipy"],
)
