"""TopoShot reproduction: Ethereum topology measurement via replacement transactions.

This package reproduces "TopoShot: Uncovering Ethereum's Network Topology
Leveraging Replacement Transactions" (Li et al., ACM IMC 2021).

The package is organized as:

- :mod:`repro.sim` -- deterministic discrete-event simulation engine.
- :mod:`repro.eth` -- a from-scratch Ethereum node substrate (mempool with the
  paper's R/U/P/L model, transaction propagation, mining, discovery, RPC).
- :mod:`repro.netgen` -- topology and workload generators (testnet-like
  overlays, mainnet critical-service overlays, background transactions).
- :mod:`repro.core` -- TopoShot itself: the ``measure_one_link`` primitive,
  the parallel measurement primitive and schedule, pre-processing,
  client profiling, non-interference verification, campaigns and costs.
- :mod:`repro.baselines` -- TxProbe, FIND_NODE crawling and timing inference
  baselines for comparison.
- :mod:`repro.analysis` -- graph-theoretic analysis used by the paper's
  evaluation (Tables 4/5/9/10, degree figures).

Quickstart::

    from repro import quick_network, TopoShot

    net = quick_network(n_nodes=40, seed=7)
    shot = TopoShot.attach(net)
    result = shot.measure_network()
    print(result.graph.number_of_edges(), "edges recovered")
"""

from repro.core.campaign import TopoShot
from repro.core.config import MeasurementConfig
from repro.core.primitive import LinkProbeOutcome, measure_one_link
from repro.core.results import LinkResult, NetworkMeasurement
from repro.eth.network import Network
from repro.eth.policies import (
    ALETH,
    BESU,
    CLIENT_POLICIES,
    GETH,
    NETHERMIND,
    PARITY,
    MempoolPolicy,
)
from repro.netgen.ethereum import quick_network

__version__ = "1.0.0"

__all__ = [
    "ALETH",
    "BESU",
    "CLIENT_POLICIES",
    "GETH",
    "LinkProbeOutcome",
    "LinkResult",
    "MeasurementConfig",
    "MempoolPolicy",
    "NETHERMIND",
    "Network",
    "NetworkMeasurement",
    "PARITY",
    "TopoShot",
    "__version__",
    "measure_one_link",
    "quick_network",
]
