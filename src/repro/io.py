"""Persistence for measurement results and graphs.

A measurement tool is only useful if its output survives the run: this
module serializes :class:`~repro.core.results.NetworkMeasurement` to JSON
(round-trippable) and exports measured graphs in formats downstream
tooling understands (edge list, GraphML, adjacency JSON, degree CSV).
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path
from typing import Union

import networkx as nx

from repro.core.results import (
    EdgeEvidence,
    MeasurementFailure,
    NetworkMeasurement,
    ValidationScore,
)
from repro.errors import ReproError

PathLike = Union[str, Path]

FORMAT_VERSION = 1


class SerializationError(ReproError):
    """The file could not be parsed as a measurement."""


# ----------------------------------------------------------------------
# Crash-safe file writing (checkpoints, journals)
# ----------------------------------------------------------------------
def atomic_write_text(path: PathLike, text: str) -> Path:
    """Write ``text`` to ``path`` atomically *and durably*.

    The durability discipline matters for checkpoint/journal files that
    must survive a power cut, not just a process kill:

    1. write to a ``<path>.tmp`` sibling;
    2. ``fsync`` the tmp file — the bytes are on disk *before* the rename
       makes them visible (rename-before-fsync can surface a zero-length
       file after a crash on journaling filesystems);
    3. ``os.replace`` onto the target (atomic on POSIX);
    4. ``fsync`` the containing directory so the rename itself is durable.

    A crash at any point leaves either the old complete file or the new
    complete file, never a torn mixture — plus possibly an orphaned
    ``.tmp``, which :func:`cleanup_orphan_tmp` reaps on the next resume.
    """
    target = Path(path)
    tmp = target.with_suffix(target.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    _fsync_dir(target.parent)
    return target


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry; best-effort on platforms without dir fds."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def cleanup_orphan_tmp(path: PathLike) -> bool:
    """Remove a ``<path>.tmp`` left behind by a crash mid-atomic-write.

    Safe to call unconditionally before reading ``path``: the tmp sibling
    is only ever a partial or superseded write (the rename in
    :func:`atomic_write_text` is the commit point), so deleting it can
    never lose committed data. Returns True if an orphan was removed.
    """
    tmp = Path(path).with_suffix(Path(path).suffix + ".tmp")
    try:
        tmp.unlink()
        return True
    except FileNotFoundError:
        return False


def measurement_to_dict(measurement: NetworkMeasurement) -> dict:
    """JSON-safe representation of a measurement."""
    payload = {
        "format_version": FORMAT_VERSION,
        "node_ids": list(measurement.node_ids),
        "edges": sorted(sorted(edge) for edge in measurement.edges),
        "iterations": measurement.iterations,
        "sim_time_start": measurement.sim_time_start,
        "sim_time_end": measurement.sim_time_end,
        "transactions_sent": measurement.transactions_sent,
        "setup_failures": measurement.setup_failures,
        "send_timeouts": measurement.send_timeouts,
        "skipped_nodes": list(measurement.skipped_nodes),
        "failures": [failure.to_dict() for failure in measurement.failures],
        # Hardening state (format-additive: absent keys read back empty).
        "evidence": [
            measurement.evidence[e].to_dict()
            for e in sorted(measurement.evidence, key=sorted)
        ],
        "edge_confidence": [
            [*sorted(e), confidence]
            for e, confidence in sorted(
                measurement.edge_confidence.items(), key=lambda kv: sorted(kv[0])
            )
        ],
        "quarantined": sorted(sorted(e) for e in measurement.quarantined),
        "suspect_nodes": sorted(measurement.suspect_nodes),
    }
    if measurement.score is not None:
        payload["score"] = {
            "true_positives": measurement.score.true_positives,
            "false_positives": measurement.score.false_positives,
            "false_negatives": measurement.score.false_negatives,
            "false_positive_edges": [
                list(pair) for pair in measurement.score.false_positive_edges
            ],
            "false_negative_edges": [
                list(pair) for pair in measurement.score.false_negative_edges
            ],
        }
    return payload


def measurement_from_dict(payload: dict) -> NetworkMeasurement:
    """Inverse of :func:`measurement_to_dict`."""
    try:
        version = payload["format_version"]
        if version != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported measurement format version {version}"
            )
        measurement = NetworkMeasurement(
            node_ids=list(payload["node_ids"]),
            iterations=int(payload["iterations"]),
            sim_time_start=float(payload["sim_time_start"]),
            sim_time_end=float(payload["sim_time_end"]),
            transactions_sent=int(payload["transactions_sent"]),
            setup_failures=int(payload.get("setup_failures", 0)),
            send_timeouts=int(payload.get("send_timeouts", 0)),
            skipped_nodes=list(payload.get("skipped_nodes", [])),
            failures=[
                MeasurementFailure.from_dict(item)
                for item in payload.get("failures", [])
            ],
        )
        measurement.add_edges(
            frozenset(edge) for edge in payload["edges"]
        )
        for item in payload.get("evidence", []):
            evidence = EdgeEvidence.from_dict(item)
            measurement.evidence[evidence.edge] = evidence
        for entry in payload.get("edge_confidence", []):
            a, b, confidence = entry
            measurement.edge_confidence[frozenset((str(a), str(b)))] = str(
                confidence
            )
        measurement.quarantined.update(
            frozenset(edge) for edge in payload.get("quarantined", [])
        )
        measurement.suspect_nodes.update(
            str(node) for node in payload.get("suspect_nodes", [])
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed measurement payload: {exc}") from exc
    score = payload.get("score")
    if score is not None:
        measurement.score = ValidationScore(
            true_positives=score["true_positives"],
            false_positives=score["false_positives"],
            false_negatives=score["false_negatives"],
            false_positive_edges=tuple(
                (str(a), str(b)) for a, b in score.get("false_positive_edges", [])
            ),
            false_negative_edges=tuple(
                (str(a), str(b)) for a, b in score.get("false_negative_edges", [])
            ),
        )
    return measurement


def save_measurement(measurement: NetworkMeasurement, path: PathLike) -> Path:
    """Write a measurement to JSON; returns the path written."""
    target = Path(path)
    target.write_text(
        json.dumps(measurement_to_dict(measurement), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return target


def load_measurement(path: PathLike) -> NetworkMeasurement:
    """Read a measurement back from JSON."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"not valid JSON: {exc}") from exc
    return measurement_from_dict(payload)


def export_graph(graph: nx.Graph, path: PathLike, fmt: str = "edgelist") -> Path:
    """Export a graph as ``edgelist``, ``graphml`` or adjacency ``json``."""
    target = Path(path)
    if fmt == "edgelist":
        with target.open("w", encoding="utf-8") as handle:
            for a, b in sorted(tuple(sorted(e)) for e in graph.edges()):
                handle.write(f"{a} {b}\n")
    elif fmt == "graphml":
        nx.write_graphml(graph, target)
    elif fmt == "json":
        payload = {
            "nodes": sorted(graph.nodes()),
            "edges": sorted(sorted(e) for e in graph.edges()),
        }
        target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    else:
        raise ValueError(f"unknown export format {fmt!r}")
    return target


def export_degree_csv(graph: nx.Graph, path: PathLike) -> Path:
    """Write ``node,degree`` rows (for external plotting of Figures 6/8/9)."""
    target = Path(path)
    with target.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["node", "degree"])
        for node in sorted(graph.nodes()):
            writer.writerow([node, graph.degree(node)])
    return target
