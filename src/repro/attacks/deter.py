"""Mempool denial-of-service (the DETER attacks the paper builds on).

TopoShot's eviction flood *is* a benign, bounded use of the DETER-X
primitive (Li et al., CCS'21): future transactions displace pending ones
from a full pool without ever being minable themselves. Run at full
capacity against a miner it becomes a DoS — the miner's next block loses
the evicted transactions.

The module also demonstrates the R=0 replacement flaw the authors reported
to the Ethereum bug bounty: on a client with a zero price bump, an attacker
replaces the same slot over and over at the *same* price, and every
replacement is re-propagated network-wide — message amplification at no
additional Ether cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.eth.account import Wallet
from repro.eth.miner import Miner
from repro.eth.network import Network
from repro.eth.transaction import Transaction, TransactionFactory, gwei


@dataclass(frozen=True)
class DeterOutcome:
    """Effect of one eviction flood on a victim's pool (and its block)."""

    victim: str
    pending_before: int
    pending_after: int
    flood_sent: int
    flood_admitted: int

    @property
    def evicted(self) -> int:
        return max(0, self.pending_before - self.pending_after)

    @property
    def eviction_ratio(self) -> float:
        if self.pending_before == 0:
            return 0.0
        return self.evicted / self.pending_before

    def summary(self) -> str:
        return (
            f"DETER on {self.victim}: {self.evicted}/{self.pending_before} "
            f"pending evicted ({self.eviction_ratio:.0%}) by "
            f"{self.flood_admitted} admitted future txs"
        )


def run_deter_attack(
    network: Network,
    victim: str,
    flood_size: Optional[int] = None,
    price_multiplier: float = 2.0,
    wallet: Optional[Wallet] = None,
) -> DeterOutcome:
    """Flood ``victim`` with high-priced future transactions.

    ``flood_size`` defaults to the victim's pool capacity. The futures are
    priced above the pool's top bid so every pending transaction is an
    eligible eviction victim.
    """
    node = network.node(victim)
    pool = node.mempool
    wallet = wallet or Wallet(f"deter-{network.sim.now:.3f}")
    factory = TransactionFactory()
    size = flood_size if flood_size is not None else pool.policy.capacity
    top_bid = max(pool.pending_prices(), default=gwei(1.0))
    price = int(top_bid * price_multiplier)
    limit = pool.policy.future_limit_per_account or size

    pending_before = pool.pending_count
    admitted = 0
    sent = 0
    account = wallet.fresh_account(prefix="deter")
    used = 0
    for index in range(size):
        if used >= limit:
            account = wallet.fresh_account(prefix="deter")
            used = 0
        tx = factory.future(account, gas_price=price, index=index)
        sent += 1
        used += 1
        if node.receive_transaction("attacker", tx).admitted:
            admitted += 1
    return DeterOutcome(
        victim=victim,
        pending_before=pending_before,
        pending_after=pool.pending_count,
        flood_sent=sent,
        flood_admitted=admitted,
    )


def block_damage(network: Network, miner_node: str) -> int:
    """Transactions the victim-miner can still put in its next block."""
    miner = Miner(network.node(miner_node), network.chain)
    return len(miner.build_block_transactions())


@dataclass(frozen=True)
class FloodingAmplification:
    """The R=0 replacement flaw: free re-propagation measurements."""

    replace_bump: float
    replacements_accepted: int
    transactions_propagated: int  # deliveries of the spam at other nodes
    extra_cost_wei: int

    def summary(self) -> str:
        return (
            f"R={self.replace_bump:.0%}: {self.replacements_accepted} "
            f"replacements accepted, {self.transactions_propagated} spam "
            f"deliveries network-wide, extra fee exposure "
            f"{self.extra_cost_wei} wei"
        )


def flooding_amplification(
    network: Network,
    entry: str,
    rounds: int = 20,
    wallet: Optional[Wallet] = None,
) -> FloodingAmplification:
    """Replace one pool slot ``rounds`` times at the minimal allowed bump.

    On an R=0 client every equal-priced variant is accepted and
    re-propagated — unbounded traffic for one transaction's worth of fees.
    On a sane client (R>0) the attacker must raise the price exponentially,
    so the same behaviour has a real cost; at equal *zero* extra spend the
    replacements are simply rejected.
    """
    node = network.node(entry)
    policy = node.config.policy
    wallet = wallet or Wallet(f"flood-{network.sim.now:.3f}")
    factory = TransactionFactory()
    account = wallet.fresh_account(prefix="spam")
    spam_sender = account.address

    # Count every delivery of the spammer's transactions anywhere else in
    # the network (packets batch, so raw message counts understate it).
    deliveries = [0]

    def count_spam(_from_id: str, tx: Transaction, _result) -> None:
        if tx.sender == spam_sender:
            deliveries[0] += 1

    for node_id in network.measurable_node_ids():
        if node_id != entry:
            network.node(node_id).tx_observers.append(count_spam)

    base_price = gwei(1.0)
    original = factory.transfer(account, gas_price=base_price, nonce=0)
    node.receive_transaction("attacker", original)
    accepted = 0
    for round_index in range(1, rounds + 1):
        # Zero extra spend: identical price, different payload.
        variant = Transaction(
            sender=account.address,
            nonce=0,
            gas_price=base_price,
            value=round_index,
        )
        if node.receive_transaction("attacker", variant).admitted:
            accepted += 1
    network.run(5.0)
    for node_id in network.measurable_node_ids():
        if node_id != entry:
            observers = network.node(node_id).tx_observers
            if count_spam in observers:
                observers.remove(count_spam)
    return FloodingAmplification(
        replace_bump=policy.replace_bump,
        replacements_accepted=accepted,
        transactions_propagated=deliveries[0],
        extra_cost_wei=0,
    )
