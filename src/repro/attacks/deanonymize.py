"""Transaction-origin deanonymization (Section 3, use case 3).

The Biryukov et al. attack the paper describes: a *client* node (behind a
NAT, no inbound connections) is identified by its set of *server*-node
neighbours; an attacker monitoring transaction traffic on the servers then
links a transaction's origin to the client whose neighbour fingerprint
matches the first servers to relay it.

TopoShot supplies the missing ingredient — the neighbour sets. This module
runs the attack end to end in the simulator:

1. the attacker (a supernode peered with every *server*) watches a target
   transaction and records which servers relayed it first;
2. each candidate client is scored by how well its (measured) neighbour
   set explains the earliest relays;
3. the top-ranked candidate is the accusation.

Knowing the topology is what makes the scores discriminative; the
companion test shows a topology-blind attacker does no better than chance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.eth.account import Wallet
from repro.eth.network import Network
from repro.eth.supernode import Supernode
from repro.eth.transaction import TransactionFactory, gwei


@dataclass(frozen=True)
class DeanonymizationResult:
    """Outcome of one origin-attribution attempt."""

    true_client: str
    accused: str
    ranking: Tuple[Tuple[str, float], ...]  # (candidate, score), best first
    first_relays: Tuple[str, ...]

    @property
    def correct(self) -> bool:
        return self.accused == self.true_client

    @property
    def rank_of_truth(self) -> int:
        """1-based rank of the true client in the accusation list."""
        for index, (candidate, _) in enumerate(self.ranking, start=1):
            if candidate == self.true_client:
                return index
        return len(self.ranking) + 1

    def summary(self) -> str:
        verdict = "CORRECT" if self.correct else f"wrong (true at #{self.rank_of_truth})"
        return (
            f"accused {self.accused} for {self.true_client}'s transaction "
            f"-> {verdict}; evidence: first relays {list(self.first_relays)}"
        )


def score_candidates(
    neighbor_sets: Dict[str, Set[str]],
    relay_order: Sequence[str],
    evidence_size: int = 3,
) -> List[Tuple[str, float]]:
    """Rank candidate clients against the earliest relaying servers.

    A server relaying early earns more weight; a candidate scores the sum
    of weights of evidence servers inside its neighbour set, normalized by
    its degree (a client connected to everything explains nothing).
    """
    evidence = list(relay_order)[:evidence_size]
    weights = {server: 1.0 / (i + 1) for i, server in enumerate(evidence)}
    scores: List[Tuple[str, float]] = []
    for candidate, neighbors in neighbor_sets.items():
        if not neighbors:
            scores.append((candidate, 0.0))
            continue
        raw = sum(w for server, w in weights.items() if server in neighbors)
        scores.append((candidate, raw / len(neighbors) ** 0.5))
    scores.sort(key=lambda item: (-item[1], item[0]))
    return scores


def run_deanonymization(
    network: Network,
    attacker: Supernode,
    true_client: str,
    candidate_neighbor_sets: Dict[str, Set[str]],
    servers: Sequence[str],
    probes: int = 5,
    wait: float = 5.0,
    wallet: Optional[Wallet] = None,
) -> DeanonymizationResult:
    """Attribute ``probes`` transactions submitted at ``true_client``.

    ``candidate_neighbor_sets`` are the *measured* client->servers maps
    (TopoShot's output); ``servers`` are the publicly reachable nodes the
    attacker monitors (the supernode must be peered with them). A single
    transaction's relay order is noisy — per-link latency variance lets a
    two-hop sighting overtake a one-hop one — so, like the real attack,
    scores accumulate over several observed transactions.
    """
    wallet = wallet or Wallet(f"deanon-{network.sim.now:.3f}")
    factory = TransactionFactory()
    totals: Dict[str, float] = {c: 0.0 for c in candidate_neighbor_sets}
    last_relays: Tuple[str, ...] = ()

    for _ in range(max(1, probes)):
        probe = factory.transfer(wallet.fresh_account(), gas_price=gwei(2.0))
        network.node(true_client).submit_transaction(probe)
        network.run(wait)
        sightings = [
            (attacker.first_observation_time(server, probe.hash), server)
            for server in servers
            if attacker.observed_from(server, probe.hash)
        ]
        sightings.sort()
        relay_order = tuple(server for _, server in sightings)
        last_relays = relay_order[:3]
        for candidate, score in score_candidates(
            candidate_neighbor_sets, relay_order
        ):
            totals[candidate] += score
        attacker.clear_observations()
        network.forget_known_transactions()

    ranking = tuple(
        sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    )
    accused = ranking[0][0] if ranking else ""
    return DeanonymizationResult(
        true_client=true_client,
        accused=accused,
        ranking=ranking,
        first_relays=last_relays,
    )
