"""Partition attacks on topology-critical nodes (Section 3, use case 2).

The static analysis (:func:`repro.analysis.security.critical_nodes`) finds
cut nodes on the measured graph; this module *verifies the consequence
dynamically*: knock the node offline in the simulator and show that
transactions injected on one side no longer reach the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import networkx as nx

from repro.eth.account import Wallet
from repro.eth.network import Network
from repro.eth.transaction import TransactionFactory, gwei


@dataclass(frozen=True)
class PartitionOutcome:
    """Effect of removing one node from the live network."""

    removed: str
    component_sizes: tuple
    stranded_nodes: int
    propagation_reached: int
    propagation_total: int

    @property
    def partitioned(self) -> bool:
        return len(self.component_sizes) > 1

    @property
    def coverage(self) -> float:
        if self.propagation_total == 0:
            return 0.0
        return self.propagation_reached / self.propagation_total

    def summary(self) -> str:
        return (
            f"removed {self.removed}: components {self.component_sizes}, "
            f"probe reached {self.propagation_reached}/"
            f"{self.propagation_total} nodes ({self.coverage:.0%})"
        )


def take_node_offline(network: Network, node_id: str) -> List[str]:
    """Disconnect every link of ``node_id`` (a DoS'd node); returns the
    peers it lost."""
    peers = list(network.node(node_id).peer_ids)
    for peer in peers:
        network.disconnect(node_id, peer)
    return peers


def run_partition_attack(
    network: Network,
    target: str,
    probe_wait: float = 10.0,
    wallet: Optional[Wallet] = None,
) -> PartitionOutcome:
    """Knock ``target`` offline and measure propagation coverage.

    A probe transaction is injected at a surviving node; coverage counts
    which other surviving nodes receive it. With a true cut node removed,
    coverage drops to the injector's component.
    """
    take_node_offline(network, target)
    survivors = [
        nid
        for nid in network.measurable_node_ids()
        if nid != target
    ]
    graph = network.ground_truth_graph()
    graph.remove_node(target)
    components = tuple(
        sorted((len(c) for c in nx.connected_components(graph)), reverse=True)
    )

    wallet = wallet or Wallet(f"partition-{network.sim.now:.3f}")
    factory = TransactionFactory()
    origin = survivors[0]
    probe = factory.transfer(wallet.fresh_account(), gas_price=gwei(2.0))
    network.node(origin).submit_transaction(probe)
    network.run(probe_wait)
    reached = sum(
        1 for nid in survivors if probe.hash in network.node(nid).mempool
    )
    return PartitionOutcome(
        removed=target,
        component_sizes=components,
        stranded_nodes=len(survivors) - components[0] if components else 0,
        propagation_reached=reached,
        propagation_total=len(survivors),
    )
