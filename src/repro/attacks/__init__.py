"""Executable versions of the attacks that motivate topology measurement.

Section 3 of the paper argues that knowing the active topology matters
because it enables (or defends against) concrete attacks. This subpackage
implements those attacks *in the simulator*, so the claims become
measurable experiments rather than assertions:

- :mod:`repro.attacks.eclipse` -- use case 1: eclipse a victim by cutting
  exactly its measured active links, and compare against a blind attacker
  with the same budget;
- :mod:`repro.attacks.deter` -- the DETER-style mempool eviction DoS the
  paper cites (Li et al., CCS'21), plus the R=0 free-replacement flooding
  flaw the authors reported to the Ethereum bug bounty;
- :mod:`repro.attacks.partition` -- use case 2: dynamically verify that
  removing topology-critical nodes splits information propagation;
- :mod:`repro.attacks.deanonymize` -- use case 3: attribute transaction
  origins to NAT'd clients via their measured neighbour fingerprints
  (Biryukov et al.).

All of this is defensive/reproduction tooling: the targets are simulated
nodes inside this package's own discrete-event network.
"""

from repro.attacks.deanonymize import DeanonymizationResult, run_deanonymization
from repro.attacks.deter import DeterOutcome, flooding_amplification, run_deter_attack
from repro.attacks.eclipse import EclipseOutcome, run_eclipse_attack
from repro.attacks.partition import PartitionOutcome, run_partition_attack

__all__ = [
    "DeanonymizationResult",
    "DeterOutcome",
    "EclipseOutcome",
    "PartitionOutcome",
    "flooding_amplification",
    "run_deanonymization",
    "run_deter_attack",
    "run_eclipse_attack",
    "run_partition_attack",
]
