"""Targeted eclipse attacks (Section 3, use case 1).

"If a blockchain node is found to be of a low degree, such a node is
particularly vulnerable under a targeted eclipse attack. [...] an attacker
only needs to disable the 50 active neighbors to block information
propagation" — not the 272 inactive ones.

:func:`run_eclipse_attack` cuts a chosen set of the victim's links, then
empirically tests isolation: a transaction submitted elsewhere must never
reach the victim. :func:`compare_informed_vs_blind` quantifies the value of
TopoShot's output: an attacker who knows the victim's *active* links
succeeds with a budget equal to the victim's degree, while a blind attacker
spending the same budget on routing-table (inactive) candidates usually
leaves live links standing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.eth.account import Wallet
from repro.eth.network import Network
from repro.eth.transaction import TransactionFactory, gwei


@dataclass(frozen=True)
class EclipseOutcome:
    """Result of one eclipse attempt."""

    victim: str
    links_cut: int
    links_remaining: int
    isolated: bool  # did the probe transaction fail to reach the victim?

    def summary(self) -> str:
        status = "ISOLATED" if self.isolated else "still connected"
        return (
            f"victim {self.victim}: cut {self.links_cut} links "
            f"({self.links_remaining} remain) -> {status}"
        )


def run_eclipse_attack(
    network: Network,
    victim: str,
    links_to_cut: Optional[Sequence[str]] = None,
    probe_wait: float = 10.0,
    wallet: Optional[Wallet] = None,
) -> EclipseOutcome:
    """Cut the given neighbour links of ``victim`` and probe isolation.

    ``links_to_cut`` defaults to *all* of the victim's current neighbours
    (the fully informed attacker). Supernode links are ignored: measurement
    supernodes never relay transactions, so they are not escape routes.

    The probe: submit a fresh transaction at a node far from the victim and
    check whether it lands in the victim's pool within ``probe_wait``.
    """
    node = network.node(victim)
    neighbors = [
        peer for peer in node.peer_ids if peer not in network.supernode_ids
    ]
    targets = list(links_to_cut) if links_to_cut is not None else neighbors
    cut = 0
    for peer in targets:
        if network.are_connected(victim, peer):
            network.disconnect(victim, peer)
            cut += 1
    remaining = [
        peer
        for peer in network.node(victim).peer_ids
        if peer not in network.supernode_ids
    ]

    wallet = wallet or Wallet(f"eclipse-{network.sim.now:.3f}")
    factory = TransactionFactory()
    origin = next(
        nid
        for nid in network.measurable_node_ids()
        if nid != victim and nid not in remaining
    )
    probe = factory.transfer(wallet.fresh_account(), gas_price=gwei(2.0))
    network.node(origin).submit_transaction(probe)
    network.run(probe_wait)
    isolated = probe.hash not in network.node(victim).mempool
    return EclipseOutcome(
        victim=victim,
        links_cut=cut,
        links_remaining=len(remaining),
        isolated=isolated,
    )


@dataclass(frozen=True)
class InformedVsBlind:
    """Head-to-head: topology-informed vs blind eclipse at equal budget."""

    informed: EclipseOutcome
    blind: EclipseOutcome

    @property
    def knowledge_paid_off(self) -> bool:
        return self.informed.isolated and not self.blind.isolated


def compare_informed_vs_blind(
    build_network,
    victim: str,
    budget: Optional[int] = None,
) -> InformedVsBlind:
    """Run the same eclipse budget with and without topology knowledge.

    ``build_network`` is a zero-argument factory returning a *fresh*,
    identically seeded network (the two worlds must start identical).
    The informed attacker cuts the victim's actual active links; the blind
    attacker spends the same budget on candidates drawn from the victim's
    routing table (the inactive neighbours a FIND_NODE crawl would give).
    """
    informed_net: Network = build_network()
    active = [
        peer
        for peer in informed_net.node(victim).peer_ids
        if peer not in informed_net.supernode_ids
    ]
    spend = len(active) if budget is None else budget
    informed = run_eclipse_attack(informed_net, victim, active[:spend])

    blind_net: Network = build_network()
    table: List[str] = [
        entry
        for entry in blind_net.node(victim).routing_table
        if entry in blind_net.nodes
    ]
    blind = run_eclipse_attack(blind_net, victim, table[:spend])
    return InformedVsBlind(informed=informed, blind=blind)
