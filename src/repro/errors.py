"""Exception hierarchy for the TopoShot reproduction package.

All package-specific exceptions derive from :class:`ReproError` so callers can
catch everything raised by this library with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """The discrete-event engine was driven into an invalid state."""


class ScheduleInPastError(SimulationError):
    """An event was scheduled before the current simulation time."""


class NetworkError(ReproError):
    """Invalid network construction or wiring (unknown node, bad link...)."""


class UnknownNodeError(NetworkError):
    """A node id was referenced that is not part of the network."""

    def __init__(self, node_id: str) -> None:
        super().__init__(f"unknown node id: {node_id!r}")
        self.node_id = node_id


class LinkExistsError(NetworkError):
    """Attempted to connect two nodes that are already linked."""


class NotConnectedError(NetworkError):
    """An operation required a link between two nodes that does not exist."""


class SendTimeoutError(NetworkError):
    """A supernode-side injection timed out before reaching the target.

    Models the RPC/DevP2P send timeouts the real tool hits against live
    peers; the measurement stack converts it into a ``SETUP_FAILED_SEND``
    probe outcome and retries with backoff rather than aborting.
    """

    def __init__(self, peer_id: str, detail: str = "") -> None:
        suffix = f": {detail}" if detail else ""
        super().__init__(f"send to {peer_id!r} timed out{suffix}")
        self.peer_id = peer_id


class FaultPlanError(ReproError):
    """A fault-injection plan is malformed (negative rate, bad probability)."""


class BehaviorPlanError(ReproError):
    """A Byzantine behavior mix is malformed (bad fraction, unknown kind)."""


class InvariantViolationError(SimulationError):
    """A runtime invariant failed on a node with no installed misbehavior.

    Only raised in the checker's strict mode, and only for violations by
    *honest* nodes: a Byzantine node breaking protocol invariants is the
    behavior model working as intended, so those are recorded and counted
    but never fatal.
    """


class SnapshotError(SimulationError):
    """Network/simulator state cannot be snapshotted or restored.

    Raised when a snapshot is requested at a non-quiescent instant (live
    events still queued), while a fault plan is armed, or when a restore
    targets a world that has structurally diverged from the snapshot
    (nodes added or removed, chain advanced by a miner).
    """


class ObservabilityError(ReproError):
    """Invalid metrics/trace usage (type conflict, negative counter step...)."""


class TransactionError(ReproError):
    """Invalid transaction construction or signing."""


class MempoolError(ReproError):
    """Invalid mempool operation (not admission rejections, real misuse)."""


class MeasurementError(ReproError):
    """TopoShot measurement could not be carried out as requested."""


class UnsupportedClientError(MeasurementError):
    """The target runs a client TopoShot cannot measure (R == 0).

    The paper (Section 5.1) shows that Nethermind and Aleth set the
    replacement price bump R to zero, which removes the price band TopoShot
    needs to enforce isolation; those clients are not measurable.
    """


class PreprocessError(MeasurementError):
    """The pre-processing phase failed or rejected a target node."""


class CheckpointError(MeasurementError):
    """A campaign checkpoint could not be read, or does not match the run."""


class NonInterferenceViolation(MeasurementError):
    """Conditions V1/V2 of the non-interference extension failed to hold."""


class AnalysisError(ReproError):
    """Graph analysis could not be computed (e.g. metrics on an empty graph)."""
