"""Exception hierarchy for the TopoShot reproduction package.

All package-specific exceptions derive from :class:`ReproError` so callers can
catch everything raised by this library with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """The discrete-event engine was driven into an invalid state."""


class ScheduleInPastError(SimulationError):
    """An event was scheduled before the current simulation time."""


class NetworkError(ReproError):
    """Invalid network construction or wiring (unknown node, bad link...)."""


class NodeDetachedError(NetworkError):
    """A node operation required network attachment but the node has none."""

    def __init__(self, node_id: str) -> None:
        super().__init__(f"node {node_id} is not attached to a network")
        self.node_id = node_id


class UnknownNodeError(NetworkError):
    """A node id was referenced that is not part of the network."""

    def __init__(self, node_id: str) -> None:
        super().__init__(f"unknown node id: {node_id!r}")
        self.node_id = node_id


class LinkExistsError(NetworkError):
    """Attempted to connect two nodes that are already linked."""


class NotConnectedError(NetworkError):
    """An operation required a link between two nodes that does not exist."""


class SendTimeoutError(NetworkError):
    """A supernode-side injection timed out before reaching the target.

    Models the RPC/DevP2P send timeouts the real tool hits against live
    peers; the measurement stack converts it into a ``SETUP_FAILED_SEND``
    probe outcome and retries with backoff rather than aborting.
    """

    def __init__(self, peer_id: str, detail: str = "") -> None:
        suffix = f": {detail}" if detail else ""
        super().__init__(f"send to {peer_id!r} timed out{suffix}")
        self.peer_id = peer_id


class FaultPlanError(ReproError):
    """A fault-injection plan is malformed (negative rate, bad probability)."""


class BehaviorPlanError(ReproError):
    """A Byzantine behavior mix is malformed (bad fraction, unknown kind)."""


class InvariantViolationError(SimulationError):
    """A runtime invariant failed on a node with no installed misbehavior.

    Only raised in the checker's strict mode, and only for violations by
    *honest* nodes: a Byzantine node breaking protocol invariants is the
    behavior model working as intended, so those are recorded and counted
    but never fatal.
    """


class SnapshotError(SimulationError):
    """Network/simulator state cannot be snapshotted or restored.

    Raised when a snapshot is requested at a non-quiescent instant (live
    events still queued), while a fault plan is armed, or when a restore
    targets a world that has structurally diverged from the snapshot
    (nodes added or removed, chain advanced by a miner).
    """


class ObservabilityError(ReproError):
    """Invalid metrics/trace usage (type conflict, negative counter step...)."""


class TransactionError(ReproError):
    """Invalid transaction construction or signing."""


class MempoolError(ReproError):
    """Invalid mempool operation (not admission rejections, real misuse)."""


class MeasurementError(ReproError):
    """TopoShot measurement could not be carried out as requested."""


class UnsupportedClientError(MeasurementError):
    """The target runs a client TopoShot cannot measure (R == 0).

    The paper (Section 5.1) shows that Nethermind and Aleth set the
    replacement price bump R to zero, which removes the price band TopoShot
    needs to enforce isolation; those clients are not measurable.
    """


class PreprocessError(MeasurementError):
    """The pre-processing phase failed or rejected a target node."""


class CheckpointError(MeasurementError):
    """A campaign checkpoint could not be read, or does not match the run."""


class NonInterferenceViolation(MeasurementError):
    """Conditions V1/V2 of the non-interference extension failed to hold."""


class AnalysisError(ReproError):
    """Graph analysis could not be computed (e.g. metrics on an empty graph)."""


# ----------------------------------------------------------------------
# Measurement-service taxonomy (repro.service)
# ----------------------------------------------------------------------
class ServiceError(ReproError):
    """Base class for measurement-service failures (repro.service).

    Every subclass carries a stable ``code`` used as the machine-readable
    error type in API responses and journal records, so clients and the
    recovery path dispatch on ``code`` rather than parsing messages.
    """

    code = "service_error"
    #: HTTP-ish status the API layer maps this error to.
    http_status = 500

    def to_dict(self) -> dict:
        return {"type": self.code, "detail": str(self)}


class BadRequest(ServiceError):
    """The client's request is malformed (bad job spec, unknown job kind,
    unparsable HTTP request or body) — a 400, not a server fault."""

    code = "bad_request"
    http_status = 400


class NotFound(ServiceError):
    """The referenced job id is unknown to this service incarnation
    (never submitted, or already evicted by terminal-record retention)."""

    code = "not_found"
    http_status = 404


class AdmissionRejected(ServiceError):
    """Base for typed 429-style load-shedding rejections.

    ``retry_after`` is the server's hint (in seconds) for when a retry
    could succeed — the token-bucket refill horizon for quota rejections,
    a fixed pushback for full queues.
    """

    code = "admission_rejected"
    http_status = 429

    def __init__(self, detail: str, retry_after: float = 1.0) -> None:
        super().__init__(detail)
        self.retry_after = float(retry_after)

    def to_dict(self) -> dict:
        payload = super().to_dict()
        payload["retry_after"] = self.retry_after
        return payload


class QuotaExceeded(AdmissionRejected):
    """A tenant's token-bucket quota (jobs/s or node-seconds/s) ran dry."""

    code = "quota_exceeded"


class QueueFull(AdmissionRejected):
    """A bounded queue (global or per-tenant) is at capacity: load is shed
    instead of growing the queue without bound."""

    code = "queue_full"


class JobTimeout(ServiceError):
    """A job exceeded its deadline; completed shards survive as a partial
    result (checkpointed at shard granularity)."""

    code = "job_timeout"
    http_status = 504


class JobCancelled(ServiceError):
    """A job was cancelled (by the client, or requeued by a service drain)."""

    code = "job_cancelled"
    http_status = 409

    def __init__(self, detail: str = "job cancelled", requeue: bool = False) -> None:
        super().__init__(detail)
        #: Drain-time cancellations requeue the job instead of killing it.
        self.requeue = requeue


class CircuitOpen(ServiceError):
    """The worker-pool circuit breaker is open: execution is failing fast
    instead of hammering a broken pool. Jobs are requeued, not failed."""

    code = "circuit_open"
    http_status = 503

    def __init__(self, detail: str, retry_after: float = 0.0) -> None:
        super().__init__(detail)
        self.retry_after = float(retry_after)

    def to_dict(self) -> dict:
        payload = super().to_dict()
        payload["retry_after"] = self.retry_after
        return payload


# ----------------------------------------------------------------------
# RPC transport taxonomy (repro.eth.rpc)
# ----------------------------------------------------------------------
class RpcError(ReproError):
    """Base class for RPC transport failures against a target endpoint.

    Every subclass carries a stable ``code`` so the resilient client and
    the degraded-mode inference path dispatch on the error *kind* (retry?
    back off? comply with a rate limit? give up?) instead of parsing
    messages. ``retryable`` tells the client whether another attempt at
    the same endpoint can ever succeed.
    """

    code = "rpc_error"
    retryable = False


class RpcUnavailableError(RpcError):
    """The target node does not expose an RPC interface.

    A *permanent* condition of the target's configuration
    (``responds_to_rpc=False``): retrying cannot help, so the client
    re-raises immediately and pre-processing rejects the target.
    """

    code = "rpc_unavailable"


class RpcMethodNotFoundError(RpcError, KeyError):
    """The endpoint does not implement the requested method.

    Subclasses :class:`KeyError` for backward compatibility with callers
    that caught the bare ``KeyError`` :meth:`RpcServer.call` used to
    raise; new code should catch this type (or :class:`RpcError`).
    """

    code = "rpc_method_not_found"

    def __init__(self, method: str) -> None:
        super().__init__(f"unknown RPC method {method!r}")
        self.method = method

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


class RpcTimeoutError(RpcError):
    """A call exceeded its per-attempt deadline (slow or wedged endpoint).

    The client has already waited the deadline out when this surfaces;
    retrying (or hedging, for snapshot-critical reads) may succeed.
    """

    code = "rpc_timeout"
    retryable = True

    def __init__(self, node_id: str, method: str, deadline: float) -> None:
        super().__init__(
            f"RPC {method} to {node_id} timed out after {deadline:g}s"
        )
        self.node_id = node_id
        self.method = method
        self.deadline = float(deadline)


class RpcTransientError(RpcError):
    """The endpoint answered with a transient server-side failure (a 5xx:
    overloaded worker, internal error). Retrying after backoff may succeed."""

    code = "rpc_transient"
    retryable = True


class RpcConnectionError(RpcError):
    """The endpoint's transport is down (connection refused / flapping).

    Distinct from :class:`RpcUnavailableError`: the target *does* serve
    RPC, but its listener is currently unreachable — retrying after the
    flap heals may succeed."""

    code = "rpc_connection"
    retryable = True


class RpcRateLimitedError(RpcError):
    """The endpoint rejected the call with a 429-style throttle.

    ``retry_after`` is the server's refill hint in (simulated) seconds; a
    compliant client waits at least that long instead of hammering."""

    code = "rpc_rate_limited"
    retryable = True

    def __init__(self, node_id: str, retry_after: float) -> None:
        super().__init__(
            f"RPC to {node_id} rate-limited, retry after {retry_after:g}s"
        )
        self.node_id = node_id
        self.retry_after = float(retry_after)


class RpcExhaustedError(RpcError):
    """The resilient client gave up on a call: every attempt within the
    retry budget failed, or the endpoint's circuit breaker is open.

    Carries the last transport error so diagnostics keep the root cause;
    degraded-mode inference maps this to *unknown*, never to a negative."""

    code = "rpc_exhausted"

    def __init__(
        self,
        node_id: str,
        method: str,
        attempts: int,
        last_error: "RpcError | None" = None,
    ) -> None:
        detail = f": {last_error}" if last_error is not None else ""
        super().__init__(
            f"RPC {method} to {node_id} failed after {attempts} attempt(s){detail}"
        )
        self.node_id = node_id
        self.method = method
        self.attempts = int(attempts)
        self.last_error = last_error
