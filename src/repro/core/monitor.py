"""Longitudinal topology monitoring.

The paper takes single snapshots ("a snapshot of the Ropsten testnet taken
on Oct. 13, 2020"); an operator deploying TopoShot would run it repeatedly
and watch the overlay *change* — new links dialled, old ones dropped,
critical nodes drifting. :class:`TopologyMonitor` wraps a
:class:`~repro.core.campaign.TopoShot` session into repeated snapshots and
diffs them into churn reports.

Two modes:

- **full**: :meth:`TopologyMonitor.take_snapshot` re-runs a whole campaign
  (O(network) probe cost per tick) — the seed behavior;
- **delta**: :meth:`TopologyMonitor.delta_round` re-probes only edges whose
  per-edge evidence has gone *stale* (older than ``staleness_ttl``) or
  whose endpoints' churn signals fired (peer-count polling over
  ``admin_peers``, or explicit :meth:`note_churn_hint`), via
  :meth:`~repro.core.campaign.TopoShot.measure_pairs`. Probe order comes
  from the shared pool-waterline prioritizer
  (:func:`repro.core.adaptive.probe_priority`), and each round streams a
  :class:`ChurnReport` as one JSON line — O(churn) probe cost per tick,
  the continuous-tracking path ``BENCH_monitor.json`` gates at >= 5x
  cheaper than full re-snapshots.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from itertools import combinations
from typing import Callable, Dict, IO, List, Optional, Sequence, Set, Tuple

from repro.core.campaign import TopoShot
from repro.core.results import Edge, NetworkMeasurement, edge
from repro.errors import MeasurementError


@dataclass(frozen=True)
class TopologySnapshot:
    """One measured topology at one simulated time."""

    taken_at: float
    measurement: NetworkMeasurement

    @property
    def edges(self) -> Set[Edge]:
        return set(self.measurement.edges)


@dataclass(frozen=True)
class ChurnReport:
    """Difference between two snapshots.

    Convention for the degenerate empty-vs-empty diff (both snapshots
    measured zero edges, so the union is empty): the two topologies are
    *identical*, hence ``jaccard_similarity`` is 1.0 and ``churn_rate``
    is 0.0 — nothing changed, even though nothing was there. This keeps
    churn monotone: an edge appearing in the second snapshot strictly
    raises churn above the empty baseline rather than jumping from an
    arbitrary 0/0.
    """

    from_time: float
    to_time: float
    added: Set[Edge]
    removed: Set[Edge]
    stable: Set[Edge]

    @property
    def jaccard_similarity(self) -> float:
        """|stable| / |union|; 1.0 when both snapshots are empty."""
        union = len(self.added) + len(self.removed) + len(self.stable)
        return 1.0 if union == 0 else len(self.stable) / union

    @property
    def churn_rate(self) -> float:
        """Changed edges relative to the union of both snapshots
        (0.0 for the empty-vs-empty diff: identical topologies)."""
        return 1.0 - self.jaccard_similarity

    def summary(self) -> str:
        return (
            f"[{self.from_time:.0f}s -> {self.to_time:.0f}s] "
            f"+{len(self.added)} -{len(self.removed)} "
            f"={len(self.stable)} stable "
            f"(churn {self.churn_rate:.0%})"
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (sorted for deterministic output)."""

        def edge_list(edges: Set[Edge]) -> List[List[str]]:
            return sorted(sorted(e) for e in edges)

        return {
            "from_time": self.from_time,
            "to_time": self.to_time,
            "added": edge_list(self.added),
            "removed": edge_list(self.removed),
            "stable_count": len(self.stable),
            "churn_rate": self.churn_rate,
            "jaccard_similarity": self.jaccard_similarity,
        }


class TopologyMonitor:
    """Repeated measurement of one network with snapshot diffing.

    ``between_rounds`` (if given) runs after every snapshot — tests use it
    to inject real link churn, an operator analogue would simply be the
    passage of time on a live network.
    """

    def __init__(
        self,
        shot: TopoShot,
        between_rounds: Optional[Callable[[], None]] = None,
        staleness_ttl: Optional[float] = None,
        reprobe_percentile: float = 0.1,
        stream: Optional[IO[str]] = None,
    ) -> None:
        self.shot = shot
        self.between_rounds = between_rounds
        self.snapshots: List[TopologySnapshot] = []
        # --- incremental (delta) mode state ---------------------------
        # staleness_ttl=None means evidence never expires: delta rounds
        # re-probe on churn signals only.
        self.staleness_ttl = staleness_ttl
        self.reprobe_percentile = reprobe_percentile
        self.stream = stream
        # edge -> simulated time the edge was last confirmed by a probe.
        self.edge_state: Dict[Edge, float] = {}
        # The live incremental view (seeded by the base snapshot, patched
        # by every delta round).
        self.current_edges: Set[Edge] = set()
        self.targets: List[str] = []
        self._peer_counts: Dict[str, int] = {}
        self._flagged: Set[str] = set()
        # Probe-cost accounting: what delta mode spent vs what repeated
        # full snapshots over the same universe would have.
        self.probe_savings: Dict[str, int] = {
            "delta_rounds": 0,
            "probed_pairs": 0,
            "universe_pairs": 0,
        }

    def take_snapshot(self, **measure_kwargs: object) -> TopologySnapshot:
        measurement = self.shot.measure_network(**measure_kwargs)  # type: ignore[arg-type]
        snapshot = TopologySnapshot(
            taken_at=self.shot.network.sim.now, measurement=measurement
        )
        self.snapshots.append(snapshot)
        self._seed_delta_state(snapshot)
        obs = self.shot.obs
        if obs.enabled:
            from repro.obs import wiring

            obs.metrics.counter(
                wiring.MONITOR_SNAPSHOTS, "Topology snapshots taken"
            ).inc()
            obs.metrics.gauge(
                wiring.MONITOR_LAST_EDGES, "Edges in the latest snapshot"
            ).set(len(snapshot.edges))
            obs.emit(
                snapshot.taken_at, "monitor.snapshot",
                len(self.snapshots) - 1, len(snapshot.edges),
            )
            if len(self.snapshots) >= 2:
                report = self.churn_between(-2, -1)
                obs.metrics.gauge(
                    wiring.MONITOR_LAST_CHURN,
                    "Churn rate between the two latest snapshots",
                ).set(report.churn_rate)
                obs.metrics.counter(
                    wiring.MONITOR_EDGES_ADDED,
                    "Edges that appeared between consecutive snapshots",
                ).inc(len(report.added))
                obs.metrics.counter(
                    wiring.MONITOR_EDGES_REMOVED,
                    "Edges that vanished between consecutive snapshots",
                ).inc(len(report.removed))
                obs.emit(
                    snapshot.taken_at, "monitor.churn",
                    report.from_time, report.to_time,
                    len(report.added), len(report.removed), len(report.stable),
                )
        return snapshot

    # ------------------------------------------------------------------
    # Incremental (delta) mode
    # ------------------------------------------------------------------
    def _seed_delta_state(self, snapshot: TopologySnapshot) -> None:
        """Adopt a full snapshot as the incremental baseline.

        Per-edge confirmation times come from the hardened pipeline's
        :class:`~repro.core.results.EdgeEvidence` where available (PR 5's
        ``observed_at``), falling back to the snapshot time.
        """
        measurement = snapshot.measurement
        self.current_edges = set(measurement.edges)
        self.targets = list(measurement.node_ids)
        evidence = measurement.evidence
        taken_at = snapshot.taken_at
        self.edge_state = {}
        for e in self.current_edges:
            proof = evidence.get(e)
            observed = getattr(proof, "observed_at", None)
            self.edge_state[e] = taken_at if observed is None else observed
        self._flagged.clear()
        self._peer_counts = self._poll_counts()

    def note_churn_hint(self, node_id: str) -> None:
        """Flag a node for re-probing in the next delta round (external
        churn signals: discovery-table drift, gossip anomalies, an
        operator's own alerting)."""
        self._flagged.add(node_id)

    def _poll_counts(self) -> Dict[str, int]:
        """Peer counts of every RPC-answering target (``admin_peers``).

        With an RPC fault plan installed the poll goes through the
        resilient client; a target whose plane is momentarily down
        (timeout, throttle, flap) is simply *absent* from the result —
        its last-known count stands, so a sick plane never fakes a churn
        signal. Without faults this is the seed's direct-call path.
        """
        from repro.eth.rpc import RpcServer, RpcUnavailableError, rpc_faults_active

        counts: Dict[str, int] = {}
        network = self.shot.network
        if rpc_faults_active(network):
            client = network.rpc_client()
            for node_id in self.targets:
                if network.node(node_id).crashed:
                    continue
                count = client.peer_count(node_id)
                if count is not None:
                    counts[node_id] = count
            return counts
        for node_id in self.targets:
            node = network.node(node_id)
            if node.crashed:
                continue
            try:
                counts[node_id] = len(RpcServer(node).call("admin_peers"))
            except RpcUnavailableError:
                continue
        return counts

    def poll_peer_counts(self) -> Set[str]:
        """Flag targets whose ``admin_peers`` count moved since last poll.

        The cheap churn signal: one RPC per target instead of a probe per
        pair. A changed count pins *which* nodes re-wired; the next delta
        round spends real probes only there. Returns the newly flagged
        node ids.
        """
        fresh = self._poll_counts()
        changed = {
            node_id
            for node_id, count in fresh.items()
            if self._peer_counts.get(node_id, count) != count
        }
        self._peer_counts.update(fresh)
        self._flagged |= changed
        return changed

    def stale_edges(self, now: Optional[float] = None) -> Set[Edge]:
        """Known edges whose last confirmation exceeds ``staleness_ttl``."""
        if self.staleness_ttl is None:
            return set()
        if now is None:
            now = self.shot.network.sim.now
        ttl = self.staleness_ttl
        return {
            e
            for e, confirmed_at in self.edge_state.items()
            if now - confirmed_at >= ttl
        }

    def _candidate_pairs(self, now: float) -> List[Tuple[str, str]]:
        """The re-probe set: stale edges, edges incident to flagged nodes,
        and (possibly new) pairs among flagged nodes."""
        candidates: List[Tuple[str, str]] = []
        seen: Set[Edge] = set()

        def offer(a: str, b: str) -> None:
            key = edge(a, b)
            if key not in seen:
                seen.add(key)
                candidates.append(tuple(sorted((a, b))))  # type: ignore[arg-type]

        for e in sorted(self.stale_edges(now), key=sorted):
            a, b = sorted(e)
            offer(a, b)
        flagged = self._flagged
        if flagged:
            for e in sorted(self.current_edges, key=sorted):
                a, b = sorted(e)
                if a in flagged or b in flagged:
                    offer(a, b)
            target_set = set(self.targets)
            for a, b in combinations(sorted(flagged & target_set), 2):
                offer(a, b)
        return candidates

    def delta_round(
        self,
        max_pairs: Optional[int] = None,
        poll: bool = True,
    ) -> ChurnReport:
        """One incremental round: re-probe only stale/churn-flagged pairs.

        Requires a base snapshot (:meth:`take_snapshot`). Candidate pairs
        are ordered by the shared pool-waterline prioritizer
        (:func:`repro.core.adaptive.probe_priority`) — cheapest price band
        first — and optionally truncated to ``max_pairs`` (the rest stays
        flagged-by-staleness for the next round). The confirmed edge set
        patches ``current_edges``; the diff against the pre-round view is
        returned as a :class:`ChurnReport`, appended to ``snapshots`` as a
        lightweight snapshot, and streamed as one JSON line when a
        ``stream`` is attached.
        """
        if not self.snapshots:
            raise MeasurementError(
                "delta_round requires a base snapshot; call take_snapshot() first"
            )
        from repro.core.adaptive import probe_priority

        network = self.shot.network
        if poll:
            self.poll_peer_counts()
        round_start = network.sim.now
        before = set(self.current_edges)
        pairs = self._candidate_pairs(round_start)
        # Endpoint health (when the resilient RPC plane is active) demotes
        # pairs whose endpoints keep timing out: spend the round's budget
        # where the plane can actually confirm the probes.
        from repro.eth.rpc import rpc_faults_active

        health = (
            network.rpc_client().health_report()
            if rpc_faults_active(network)
            else None
        )
        pairs = probe_priority(
            network,
            pairs,
            percentile=self.reprobe_percentile,
            endpoint_health=health,
        )
        if max_pairs is not None:
            pairs = pairs[:max_pairs]

        detected: Set[Edge] = set()
        if pairs:
            detected = self.shot.measure_pairs(pairs)
        now = network.sim.now
        for a, b in pairs:
            key = edge(a, b)
            if key in detected:
                self.edge_state[key] = now
                self.current_edges.add(key)
            else:
                self.current_edges.discard(key)
                self.edge_state.pop(key, None)
        self._flagged.clear()

        after = self.current_edges
        report = ChurnReport(
            from_time=self.snapshots[-1].taken_at,
            to_time=now,
            added=after - before,
            removed=before - after,
            stable=before & after,
        )
        universe = len(self.targets)
        savings = self.probe_savings
        savings["delta_rounds"] += 1
        savings["probed_pairs"] += len(pairs)
        savings["universe_pairs"] += universe * (universe - 1) // 2
        self.snapshots.append(
            TopologySnapshot(
                taken_at=now,
                measurement=NetworkMeasurement(
                    node_ids=list(self.targets),
                    edges=set(after),
                    sim_time_start=round_start,
                    sim_time_end=now,
                ),
            )
        )
        if self.stream is not None:
            record = report.to_dict()
            record["probed_pairs"] = len(pairs)
            record["edge_count"] = len(after)
            self.stream.write(json.dumps(record, sort_keys=True) + "\n")
        obs = self.shot.obs
        if obs.enabled:
            from repro.obs import wiring

            obs.metrics.counter(
                wiring.MONITOR_DELTA_ROUNDS, "Incremental monitor rounds"
            ).inc()
            obs.metrics.counter(
                wiring.MONITOR_DELTA_PROBED,
                "Pairs re-probed by incremental rounds",
            ).inc(len(pairs))
            saved = max(
                0, universe * (universe - 1) // 2 - len(pairs)
            )
            obs.metrics.counter(
                wiring.MONITOR_DELTA_SAVED,
                "Pairs a full re-snapshot would have probed but delta mode skipped",
            ).inc(saved)
            obs.metrics.gauge(
                wiring.MONITOR_LAST_EDGES, "Edges in the latest snapshot"
            ).set(len(after))
            obs.metrics.gauge(
                wiring.MONITOR_LAST_CHURN,
                "Churn rate between the two latest snapshots",
            ).set(report.churn_rate)
            obs.emit(
                now, "monitor.delta",
                len(pairs), len(report.added), len(report.removed),
                len(after),
            )
        return report

    def run_continuous(
        self,
        rounds: int,
        max_pairs: Optional[int] = None,
        **snapshot_kwargs: object,
    ) -> List[ChurnReport]:
        """A continuous run: one full base snapshot, then ``rounds`` delta
        rounds with ``between_rounds`` (the world changing) in between."""
        if rounds <= 0:
            raise MeasurementError("rounds must be positive")
        if not self.snapshots:
            self.take_snapshot(**snapshot_kwargs)
        reports: List[ChurnReport] = []
        for _ in range(rounds):
            if self.between_rounds is not None:
                self.between_rounds()
            reports.append(self.delta_round(max_pairs=max_pairs))
        return reports

    def run_rounds(self, rounds: int, **measure_kwargs: object) -> List[TopologySnapshot]:
        """Take ``rounds`` snapshots, invoking ``between_rounds`` between."""
        if rounds <= 0:
            raise MeasurementError("rounds must be positive")
        taken = []
        for index in range(rounds):
            taken.append(self.take_snapshot(**measure_kwargs))
            if self.between_rounds is not None and index + 1 < rounds:
                self.between_rounds()
        return taken

    def churn_between(self, earlier: int, later: int) -> ChurnReport:
        """Diff two snapshots by index (negative indices allowed)."""
        first = self.snapshots[earlier]
        second = self.snapshots[later]
        return ChurnReport(
            from_time=first.taken_at,
            to_time=second.taken_at,
            added=second.edges - first.edges,
            removed=first.edges - second.edges,
            stable=first.edges & second.edges,
        )

    def churn_series(self) -> List[ChurnReport]:
        """Consecutive-snapshot churn across the whole history."""
        return [
            self.churn_between(i, i + 1)
            for i in range(len(self.snapshots) - 1)
        ]

    def persistent_edges(self) -> Set[Edge]:
        """Edges present in every snapshot (the overlay's stable core)."""
        if not self.snapshots:
            return set()
        core = self.snapshots[0].edges
        for snapshot in self.snapshots[1:]:
            core &= snapshot.edges
        return core


def rewire_random_links(
    network,
    fraction: float = 0.1,
    rng=None,
) -> tuple:
    """Inject churn: drop ``fraction`` of the measurable links and dial the
    same number of fresh ones. Returns (removed, added) edge sets."""
    if not 0 <= fraction <= 1:
        raise MeasurementError("fraction must be in [0, 1]")
    rng = rng or network.sim.rng.stream("rewire")
    links = sorted(tuple(sorted(link)) for link in network.ground_truth_edges())
    count = int(len(links) * fraction)
    removed = set()
    rng.shuffle(links)
    for a, b in links[:count]:
        network.disconnect(a, b)
        removed.add(frozenset((a, b)))
    nodes = network.measurable_node_ids()
    added: Set[Edge] = set()
    attempts = 0
    while len(added) < count and attempts < 50 * count + 50:
        attempts += 1
        a, b = rng.sample(nodes, 2)
        key = frozenset((a, b))
        if network.are_connected(a, b):
            continue
        network.connect(a, b, force=True)
        added.add(key)
    # On dense overlays some dials can recreate just-dropped links; the
    # *net* churn excludes those (they are invisible to any observer).
    return removed - added, added - removed
