"""Longitudinal topology monitoring.

The paper takes single snapshots ("a snapshot of the Ropsten testnet taken
on Oct. 13, 2020"); an operator deploying TopoShot would run it repeatedly
and watch the overlay *change* — new links dialled, old ones dropped,
critical nodes drifting. :class:`TopologyMonitor` wraps a
:class:`~repro.core.campaign.TopoShot` session into repeated snapshots and
diffs them into churn reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set

from repro.core.campaign import TopoShot
from repro.core.results import Edge, NetworkMeasurement
from repro.errors import MeasurementError


@dataclass(frozen=True)
class TopologySnapshot:
    """One measured topology at one simulated time."""

    taken_at: float
    measurement: NetworkMeasurement

    @property
    def edges(self) -> Set[Edge]:
        return set(self.measurement.edges)


@dataclass(frozen=True)
class ChurnReport:
    """Difference between two snapshots.

    Convention for the degenerate empty-vs-empty diff (both snapshots
    measured zero edges, so the union is empty): the two topologies are
    *identical*, hence ``jaccard_similarity`` is 1.0 and ``churn_rate``
    is 0.0 — nothing changed, even though nothing was there. This keeps
    churn monotone: an edge appearing in the second snapshot strictly
    raises churn above the empty baseline rather than jumping from an
    arbitrary 0/0.
    """

    from_time: float
    to_time: float
    added: Set[Edge]
    removed: Set[Edge]
    stable: Set[Edge]

    @property
    def jaccard_similarity(self) -> float:
        """|stable| / |union|; 1.0 when both snapshots are empty."""
        union = len(self.added) + len(self.removed) + len(self.stable)
        return 1.0 if union == 0 else len(self.stable) / union

    @property
    def churn_rate(self) -> float:
        """Changed edges relative to the union of both snapshots
        (0.0 for the empty-vs-empty diff: identical topologies)."""
        return 1.0 - self.jaccard_similarity

    def summary(self) -> str:
        return (
            f"[{self.from_time:.0f}s -> {self.to_time:.0f}s] "
            f"+{len(self.added)} -{len(self.removed)} "
            f"={len(self.stable)} stable "
            f"(churn {self.churn_rate:.0%})"
        )


class TopologyMonitor:
    """Repeated measurement of one network with snapshot diffing.

    ``between_rounds`` (if given) runs after every snapshot — tests use it
    to inject real link churn, an operator analogue would simply be the
    passage of time on a live network.
    """

    def __init__(
        self,
        shot: TopoShot,
        between_rounds: Optional[Callable[[], None]] = None,
    ) -> None:
        self.shot = shot
        self.between_rounds = between_rounds
        self.snapshots: List[TopologySnapshot] = []

    def take_snapshot(self, **measure_kwargs: object) -> TopologySnapshot:
        measurement = self.shot.measure_network(**measure_kwargs)  # type: ignore[arg-type]
        snapshot = TopologySnapshot(
            taken_at=self.shot.network.sim.now, measurement=measurement
        )
        self.snapshots.append(snapshot)
        obs = self.shot.obs
        if obs.enabled:
            from repro.obs import wiring

            obs.metrics.counter(
                wiring.MONITOR_SNAPSHOTS, "Topology snapshots taken"
            ).inc()
            obs.metrics.gauge(
                wiring.MONITOR_LAST_EDGES, "Edges in the latest snapshot"
            ).set(len(snapshot.edges))
            obs.emit(
                snapshot.taken_at, "monitor.snapshot",
                len(self.snapshots) - 1, len(snapshot.edges),
            )
            if len(self.snapshots) >= 2:
                report = self.churn_between(-2, -1)
                obs.metrics.gauge(
                    wiring.MONITOR_LAST_CHURN,
                    "Churn rate between the two latest snapshots",
                ).set(report.churn_rate)
                obs.metrics.counter(
                    wiring.MONITOR_EDGES_ADDED,
                    "Edges that appeared between consecutive snapshots",
                ).inc(len(report.added))
                obs.metrics.counter(
                    wiring.MONITOR_EDGES_REMOVED,
                    "Edges that vanished between consecutive snapshots",
                ).inc(len(report.removed))
                obs.emit(
                    snapshot.taken_at, "monitor.churn",
                    report.from_time, report.to_time,
                    len(report.added), len(report.removed), len(report.stable),
                )
        return snapshot

    def run_rounds(self, rounds: int, **measure_kwargs: object) -> List[TopologySnapshot]:
        """Take ``rounds`` snapshots, invoking ``between_rounds`` between."""
        if rounds <= 0:
            raise MeasurementError("rounds must be positive")
        taken = []
        for index in range(rounds):
            taken.append(self.take_snapshot(**measure_kwargs))
            if self.between_rounds is not None and index + 1 < rounds:
                self.between_rounds()
        return taken

    def churn_between(self, earlier: int, later: int) -> ChurnReport:
        """Diff two snapshots by index (negative indices allowed)."""
        first = self.snapshots[earlier]
        second = self.snapshots[later]
        return ChurnReport(
            from_time=first.taken_at,
            to_time=second.taken_at,
            added=second.edges - first.edges,
            removed=first.edges - second.edges,
            stable=first.edges & second.edges,
        )

    def churn_series(self) -> List[ChurnReport]:
        """Consecutive-snapshot churn across the whole history."""
        return [
            self.churn_between(i, i + 1)
            for i in range(len(self.snapshots) - 1)
        ]

    def persistent_edges(self) -> Set[Edge]:
        """Edges present in every snapshot (the overlay's stable core)."""
        if not self.snapshots:
            return set()
        core = self.snapshots[0].edges
        for snapshot in self.snapshots[1:]:
            core &= snapshot.edges
        return core


def rewire_random_links(
    network,
    fraction: float = 0.1,
    rng=None,
) -> tuple:
    """Inject churn: drop ``fraction`` of the measurable links and dial the
    same number of fresh ones. Returns (removed, added) edge sets."""
    if not 0 <= fraction <= 1:
        raise MeasurementError("fraction must be in [0, 1]")
    rng = rng or network.sim.rng.stream("rewire")
    links = sorted(tuple(sorted(link)) for link in network.ground_truth_edges())
    count = int(len(links) * fraction)
    removed = set()
    rng.shuffle(links)
    for a, b in links[:count]:
        network.disconnect(a, b)
        removed.add(frozenset((a, b)))
    nodes = network.measurable_node_ids()
    added: Set[Edge] = set()
    attempts = 0
    while len(added) < count and attempts < 50 * count + 50:
        attempts += 1
        a, b = rng.sample(nodes, 2)
        key = frozenset((a, b))
        if network.are_connected(a, b):
            continue
        network.connect(a, b, force=True)
        added.add(key)
    # On dense overlays some dials can recreate just-dropped links; the
    # *net* churn excludes those (they are invisible to any observer).
    return removed - added, added - removed
