"""Measurement cost accounting and extrapolation (Sections 5.2.2, 6.3, 6.4).

Costs come only from *pending* measurement transactions (``txA``/``txB``/
``txC``) that miners actually include; future flood transactions are
guaranteed never to be mined and cost nothing. The mainnet full-topology
estimate multiplies the per-pair cost by ``n(n-1)/2`` pairs — the paper's
"more than 60 million USD" figure for 8000 nodes at May-2021 prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.eth.chain import Chain

WEI_PER_ETHER = 10**18

# Constants quoted by the paper (Section 6.3).
PAPER_COST_PER_PAIR_ETHER = 7.1e-4
PAPER_ETH_PRICE_USD_MAY_2021 = 2700.0  # ~1.91 USD / 7.1e-4 ETH
PAPER_MAINNET_NODES = 8000


def wei_to_ether(wei: int) -> float:
    return wei / WEI_PER_ETHER


@dataclass
class CostLedger:
    """Tracks measurement sender accounts and computes realized fees."""

    chain: Chain
    senders_by_category: Dict[str, set] = field(default_factory=dict)

    def register(self, category: str, addresses: Iterable[str]) -> None:
        self.senders_by_category.setdefault(category, set()).update(addresses)

    def spent_wei(self, category: Optional[str] = None) -> int:
        """Fees actually paid on-chain by registered senders."""
        if category is not None:
            addresses = self.senders_by_category.get(category, set())
        else:
            addresses = set().union(*self.senders_by_category.values()) if (
                self.senders_by_category
            ) else set()
        return self.chain.fees_paid_by(addresses)

    def spent_ether(self, category: Optional[str] = None) -> float:
        return wei_to_ether(self.spent_wei(category))

    def included_count(self, category: Optional[str] = None) -> int:
        """How many registered transactions were mined."""
        if category is not None:
            addresses = self.senders_by_category.get(category, set())
        else:
            addresses = set().union(*self.senders_by_category.values()) if (
                self.senders_by_category
            ) else set()
        return sum(
            1
            for block in self.chain.blocks
            for tx in block.txs
            if tx.sender in addresses
        )


@dataclass(frozen=True)
class CampaignCostRow:
    """One row of the Table 7 summary."""

    network: str
    n_nodes: int
    cost_ether: float
    duration_hours: float

    def format(self) -> str:
        return (
            f"{self.network:<10} {self.n_nodes:>7} "
            f"{self.cost_ether:>12.5f} {self.duration_hours:>10.2f}"
        )


def summarize_campaigns(rows: List[CampaignCostRow]) -> str:
    """Render a Table 7-style summary."""
    header = f"{'Network':<10} {'#nodes':>7} {'Cost (ETH)':>12} {'Hours':>10}"
    return "\n".join([header, "-" * len(header)] + [row.format() for row in rows])


@dataclass(frozen=True)
class MainnetEstimate:
    """Full-mainnet measurement cost extrapolation (Section 6.3)."""

    n_nodes: int
    cost_per_pair_ether: float
    eth_price_usd: float

    @property
    def pairs(self) -> int:
        return self.n_nodes * (self.n_nodes - 1) // 2

    @property
    def total_ether(self) -> float:
        return self.pairs * self.cost_per_pair_ether

    @property
    def total_usd(self) -> float:
        return self.total_ether * self.eth_price_usd

    def summary(self) -> str:
        return (
            f"full mainnet: {self.n_nodes} nodes -> {self.pairs:,} pairs, "
            f"{self.total_ether:,.0f} ETH "
            f"(~{self.total_usd / 1e6:,.1f}M USD at "
            f"{self.eth_price_usd:,.0f} USD/ETH)"
        )


def paper_mainnet_estimate() -> MainnetEstimate:
    """The paper's own numbers: ~22.8k ETH, > 60 M USD."""
    return MainnetEstimate(
        n_nodes=PAPER_MAINNET_NODES,
        cost_per_pair_ether=PAPER_COST_PER_PAIR_ETHER,
        eth_price_usd=PAPER_ETH_PRICE_USD_MAY_2021,
    )


def estimate_from_measured_pair_cost(
    ledger: CostLedger,
    pairs_measured: int,
    n_nodes: int = PAPER_MAINNET_NODES,
    eth_price_usd: float = PAPER_ETH_PRICE_USD_MAY_2021,
) -> MainnetEstimate:
    """Extrapolate a full-network cost from this campaign's realized
    per-pair cost."""
    if pairs_measured <= 0:
        raise ValueError("pairs_measured must be positive")
    per_pair = ledger.spent_ether() / pairs_measured
    return MainnetEstimate(
        n_nodes=n_nodes,
        cost_per_pair_ether=per_pair,
        eth_price_usd=eth_price_usd,
    )
