"""Measurement configuration.

Maps one-to-one onto the knobs of the paper's primitive
``measureOneLink(A, B, X, Y, Z, R, U)`` plus the parallel-schedule and
timing parameters of Sections 5.3 and 6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import MeasurementError, UnsupportedClientError
from repro.eth.policies import GETH, MempoolPolicy
from repro.eth.transaction import gwei


@dataclass(frozen=True)
class MeasurementConfig:
    """All parameters of a TopoShot run.

    Attributes
    ----------
    flood_wait:
        ``X``: seconds to wait after planting ``txC`` so it floods the whole
        network (the paper calibrates X = 10 s; our simulated networks
        flood faster, but the default stays conservative).
    gas_price_y:
        ``Y`` in wei/gas, or ``None`` to estimate the median pending price
        from the measurement node's own mempool before each run (§5.2.1).
    future_count:
        ``Z``: number of future transactions per eviction flood. Defaults
        to the target policy's capacity ``L`` (the paper uses Z = 5120 on
        Geth, exactly its L).
    replace_bump:
        ``R`` of the target client. ``txA`` is priced at ``(1+R/2)·Y`` and
        ``txB`` at ``(1-R/2)·Y`` so that txA replaces txB
        (bump ``(1+R/2)/(1-R/2) - 1 >= R``) but never txC (bump R/2 < R).
    future_per_account:
        ``U``: future transactions are spread over ``ceil(Z/U)`` accounts.
        ``None`` (unlimited) uses a single account, like the paper does for
        Besu and (almost) Geth.
    settle_wait:
        Pause between Steps 2 and 3 of the serial primitive.
    propagation_wait:
        Pause before Step 4's check, covering the A->B hop.
    seed_wait:
        Parallel p1: wait after seeding all txC transactions.
    parallel_send_gap:
        Seconds between consecutive per-node configuration packets in the
        parallel primitive. The paper's source-first ordering leaves a race
        window (txA broadcasts can reach still-unconfigured sinks); the gap
        times how fast the window closes, which is what makes recall fall
        for large groups (Figure 4b).
    repeats:
        Measurements per link; the union of positives is reported (§5.2.3's
        passive recall improvement, 3 in the paper's validation).
    max_retries:
        Extra attempts granted when a probe reports a *setup failure* (the
        injection never took hold — crashed target, lost packets, send
        timeout) or an ambiguous low-confidence verdict. Retries do not
        consume repeats; 0 (default) restores the seed behaviour exactly.
    retry_backoff:
        Simulated seconds to wait before the first retry; each further
        retry multiplies the wait by ``retry_backoff_factor`` (exponential
        backoff, so a crashed target has time to come back).
    retry_backoff_factor:
        Growth factor of the retry wait (>= 1).
    send_timeout:
        Simulated seconds burned when an injection attempt times out
        (the supernode waits out its RPC deadline before giving up).
    mempool_slots_budget:
        Max mempool slots the measurement may occupy on targets; the paper
        bounds interference with 2000 of 5120 slots and derives the group
        size ``K = budget / N`` from it (§5.3.2).
    future_nonce_gap:
        Nonce distance guaranteeing flood transactions stay future.
    hardened:
        Byzantine-aware verdicts (default on): a positive additionally
        requires the RPC cross-check (``txA`` actually present in the
        sink's pool, Section 6.1), and per-edge evidence — including
        third-party observers of ``txA``, impossible on a conforming
        network — is collected for confidence labelling. On an
        all-honest network this never changes a verdict, so results are
        bit-identical to the unhardened pipeline; disable only to
        demonstrate the degradation (``bench_robustness_adversarial``).
    cross_validate:
        ``n`` of the k-of-n cross-validation for *suspect* edges (those
        whose evidence shows a broken isolation envelope): each suspect
        is re-probed serially up to ``n`` times and kept only if at
        least ``cross_validate_k`` probes confirm direct adjacency
        (RPC-confirmed positive whose sink demonstrated possession to
        the supernode no later than any third party — see
        ``ProbeReport.confirmed_direct``); edges failing the bar move
        to the measurement's quarantine set. 0 (default) disables the
        extra probes — suspects are kept but downgraded to ``suspect``
        confidence.
    cross_validate_k:
        Confirming probes required to keep a suspect edge (``k``,
        default 1 — see ``with_cross_validation``).
    adaptive_flood:
        Resize each eviction flood from *observed* target occupancy
        instead of the static worst case ``Z = L``. After a traffic
        storm leaves pools persistently oversized, the static flood is
        exactly large enough for an *empty* pool; with the pool full of
        ambient pending transactions a correct flood needs only
        ``free_slots + (pending priced below the flood)`` — the adaptive
        sizing queries each involved node's pool and uses that, bounded
        above by the configured ``future_count``. Off by default: in the
        ambient case it shrinks Z, changing transaction counts (and so
        the run fingerprint) without changing verdicts.
    """

    flood_wait: float = 10.0
    gas_price_y: Optional[int] = None
    default_gas_price_y: int = gwei(1.0)
    future_count: int = GETH.capacity
    replace_bump: float = GETH.replace_bump
    future_per_account: Optional[int] = GETH.future_limit_per_account
    settle_wait: float = 2.0
    propagation_wait: float = 5.0
    seed_wait: float = 3.0
    parallel_send_gap: float = 0.005
    repeats: int = 1
    max_retries: int = 0
    retry_backoff: float = 1.0
    retry_backoff_factor: float = 2.0
    send_timeout: float = 2.0
    mempool_slots_budget: int = 2000
    future_nonce_gap: int = 1_000_000
    hardened: bool = True
    cross_validate: int = 0
    cross_validate_k: int = 1
    adaptive_flood: bool = False

    def __post_init__(self) -> None:
        if self.replace_bump <= 0:
            raise UnsupportedClientError(
                "TopoShot requires a target client with R > 0; Nethermind and "
                "Aleth (R = 0) are not measurable (Section 5.1)"
            )
        if self.future_count <= 0:
            raise MeasurementError("future_count Z must be positive")
        if self.repeats <= 0:
            raise MeasurementError("repeats must be positive")
        if self.future_per_account is not None and self.future_per_account <= 0:
            raise MeasurementError("future_per_account U must be positive or None")
        if self.max_retries < 0:
            raise MeasurementError(
                f"max_retries must be >= 0 (0 disables retries), got {self.max_retries}"
            )
        if self.retry_backoff < 0:
            raise MeasurementError(
                f"retry_backoff must be a non-negative wait in seconds, got "
                f"{self.retry_backoff}"
            )
        if self.cross_validate < 0:
            raise MeasurementError(
                f"cross_validate must be >= 0 (0 disables), got "
                f"{self.cross_validate}"
            )
        if self.cross_validate_k < 1 or (
            self.cross_validate and self.cross_validate_k > self.cross_validate
        ):
            raise MeasurementError(
                f"cross_validate_k must satisfy 1 <= k <= n, got "
                f"k={self.cross_validate_k} n={self.cross_validate}"
            )
        if self.retry_backoff_factor < 1.0:
            raise MeasurementError(
                f"retry_backoff_factor must be >= 1 (backoff never shrinks), got "
                f"{self.retry_backoff_factor}"
            )
        if self.send_timeout < 0:
            raise MeasurementError(
                f"send_timeout must be a non-negative wait in seconds, got "
                f"{self.send_timeout}"
            )

    # ------------------------------------------------------------------
    # Derived prices (Section 5.2, Steps 1-3)
    # ------------------------------------------------------------------
    def price_c(self, y: int) -> int:
        """txC price: exactly ``Y``."""
        return y

    def price_a(self, y: int) -> int:
        """txA price: ``(1 + R/2) * Y``."""
        return int(math.ceil(y * (1.0 + 0.5 * self.replace_bump)))

    def price_b(self, y: int) -> int:
        """txB price: ``(1 - R/2) * Y``."""
        return int(math.floor(y * (1.0 - 0.5 * self.replace_bump)))

    def price_future(self, y: int) -> int:
        """Flood (txO) price: ``(1 + R) * Y``."""
        return int(math.ceil(y * (1.0 + self.replace_bump)))

    @property
    def flood_accounts(self) -> int:
        """Number of EOAs used per future flood: ``ceil(Z / U)``."""
        if self.future_per_account is None:
            return 1
        return max(1, math.ceil(self.future_count / self.future_per_account))

    def group_size_for(self, network_size: int) -> int:
        """``K = slots_budget / N``, shrunk until the first (largest)
        iteration's edge count ``K * (N - K)`` fits the slot budget
        (Section 5.3.2: "we only use no more than 2000 transaction slots").
        """
        if network_size <= 0:
            raise MeasurementError("network size must be positive")
        k = max(2, self.mempool_slots_budget // network_size)
        while k > 2 and k * (network_size - k) > self.mempool_slots_budget:
            k -= 1
        if k * (network_size - k) > self.mempool_slots_budget:
            raise MeasurementError(
                f"even K=2 needs {2 * (network_size - 2)} mempool slots, over "
                f"the budget of {self.mempool_slots_budget}; measure a larger-"
                "mempool network or raise mempool_slots_budget"
            )
        return k

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def for_policy(cls, policy: MempoolPolicy, **overrides: object) -> "MeasurementConfig":
        """A configuration matched to a target client policy."""
        if not policy.measurable:
            raise UnsupportedClientError(
                f"client {policy.name!r} has R = 0 and cannot be measured"
            )
        params = {
            "future_count": policy.capacity,
            "replace_bump": policy.replace_bump,
            "future_per_account": policy.future_limit_per_account,
            # Keep the paper's 2000-of-5120 slot-budget ratio at any scale.
            "mempool_slots_budget": max(16, policy.capacity * 2000 // 5120),
        }
        params.update(overrides)  # type: ignore[arg-type]
        return cls(**params)  # type: ignore[arg-type]

    def with_future_count(self, future_count: int) -> "MeasurementConfig":
        """Copy with a different Z (used by the Z sweep of Figure 4a and by
        the pre-processing calibration of Section 5.2.3)."""
        return replace(self, future_count=future_count)

    def with_repeats(self, repeats: int) -> "MeasurementConfig":
        return replace(self, repeats=repeats)

    def with_retries(
        self,
        max_retries: int,
        backoff: Optional[float] = None,
        factor: Optional[float] = None,
    ) -> "MeasurementConfig":
        """Copy with retry-with-backoff enabled for setup failures."""
        updates: dict = {"max_retries": max_retries}
        if backoff is not None:
            updates["retry_backoff"] = backoff
        if factor is not None:
            updates["retry_backoff_factor"] = factor
        return replace(self, **updates)

    def with_hardening(self, enabled: bool) -> "MeasurementConfig":
        return replace(self, hardened=enabled)

    def with_cross_validation(
        self, n: int, k: Optional[int] = None
    ) -> "MeasurementConfig":
        """Copy with k-of-n cross-validation of suspect edges enabled.

        ``k`` defaults to 1: a genuine edge only has to win the timing
        race once in ``n`` probes (the race is biased against it — the
        sink must beat *every* third-party observer, and each probe
        redraws per-message latencies), while a relay-chain false
        positive must get lucky at least once against strictly positive
        one-way delays. Raising ``k`` buys more precision at a steep
        recall cost under heavy Byzantine presence.
        """
        if k is None:
            k = 1
        return replace(self, cross_validate=n, cross_validate_k=k)

    def with_gas_price(self, y: Optional[int]) -> "MeasurementConfig":
        return replace(self, gas_price_y=y)

    def with_adaptive_flood(self, enabled: bool = True) -> "MeasurementConfig":
        """Copy with occupancy-driven per-round flood sizing toggled."""
        return replace(self, adaptive_flood=enabled)
