"""The non-interference extension (Section 6.3, Appendix C).

A measurement ``P(M, S, C, t1, t2)`` does not interfere with the network
when every block produced in ``[t1, t2 + e]`` (``e`` = mempool expiry,
3 hours on Geth) carries exactly the transactions it would have carried had
the measurement never run. The extension verifies this *a posteriori*
through two conditions:

- **V1**: every block in the window is full (no room for a displaced
  transaction to have been pushed out);
- **V2**: every included transaction bids above the measurement price
  ``Y0`` (the measurement only ever touches transactions at or below
  ``(1+R)·Y0``... so nothing the miner actually wanted was evicted).

Theorem C.2 (blocks identical with and without measurement) is checked
empirically by :func:`compare_worlds` over two deterministic simulation
runs differing only in whether the measurement executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.errors import MeasurementError
from repro.eth.chain import Block, Chain


@dataclass(frozen=True)
class NonInterferenceReport:
    """Outcome of monitoring V1/V2 over a measurement window."""

    t1: float
    t2: float
    expiry: float
    y0: int
    blocks_checked: int
    v1_full_blocks: bool
    v2_prices_above_y0: bool
    violating_blocks_v1: Tuple[int, ...] = field(default_factory=tuple)
    violating_blocks_v2: Tuple[int, ...] = field(default_factory=tuple)

    @property
    def non_interfering(self) -> bool:
        """Both conditions verified: Theorem C.2 applies."""
        return self.v1_full_blocks and self.v2_prices_above_y0

    def summary(self) -> str:
        status = "VERIFIED" if self.non_interfering else "VIOLATED"
        return (
            f"non-interference {status}: {self.blocks_checked} blocks in "
            f"[{self.t1:.0f}, {self.t2 + self.expiry:.0f}]s, "
            f"V1={'ok' if self.v1_full_blocks else self.violating_blocks_v1}, "
            f"V2={'ok' if self.v2_prices_above_y0 else self.violating_blocks_v2}"
        )


def check_conditions(
    chain: Chain,
    t1: float,
    t2: float,
    y0: int,
    expiry: float = 3 * 3600.0,
) -> NonInterferenceReport:
    """Verify V1 and V2 over the blocks produced in ``[t1, t2 + expiry]``."""
    window = chain.blocks_in_window(t1, t2 + expiry)
    v1_violations = tuple(b.number for b in window if not b.is_full)
    v2_violations = tuple(
        b.number
        for b in window
        if b.txs and (b.min_included_price() or 0) <= y0
    )
    return NonInterferenceReport(
        t1=t1,
        t2=t2,
        expiry=expiry,
        y0=y0,
        blocks_checked=len(window),
        v1_full_blocks=not v1_violations,
        v2_prices_above_y0=not v2_violations,
        violating_blocks_v1=v1_violations,
        violating_blocks_v2=v2_violations,
    )


@dataclass(frozen=True)
class SurgeBandReport:
    """Post-hoc check that surge pricing never closed the measurement band.

    Under a live fee market (:mod:`repro.eth.fee_market`) V1/V2 are
    necessary but no longer sufficient evidence that the primitive ran
    cleanly: a surging admission floor could have *rejected* txB at
    ``(1 - R/2) * Y0`` mid-measurement, silently turning a replacement
    probe into a no-op (a false negative, not interference — but a result
    the operator must not trust). This report verifies against the
    market's recorded floor trajectory that every probe price stayed
    admissible throughout ``[t1, t2]``.
    """

    t1: float
    t2: float
    y0: int
    tx_b_price: int
    samples_checked: int
    admissible_throughout: bool
    violating_samples: Tuple[float, ...] = field(default_factory=tuple)
    peak_floor: int = 0
    peak_surge: float = 1.0

    def summary(self) -> str:
        status = "CLEAR" if self.admissible_throughout else "CLOSED"
        return (
            f"surge band {status}: txB at {self.tx_b_price} vs peak floor "
            f"{self.peak_floor} (surge x{self.peak_surge:.2f}) over "
            f"{self.samples_checked} samples in [{self.t1:.0f}, {self.t2:.0f}]s"
        )


def check_surge_band(
    market,
    t1: float,
    t2: float,
    y0: int,
    replace_bump: float = 0.1,
) -> SurgeBandReport:
    """Verify the fee-market floor stayed below every probe price.

    ``market`` is a :class:`repro.eth.fee_market.FeeMarket`; its bounded
    history of (time, floor, surge, occupancy) samples over ``[t1, t2]``
    is compared against the cheapest probe ``txB = (1 - R/2) * Y0``. An
    empty trajectory (market never updated in the window) is vacuously
    clear with zero samples — callers should treat that as "no evidence"
    rather than "verified".
    """
    tx_b = int(y0 * (1.0 - 0.5 * replace_bump))
    trajectory = market.floor_trajectory(t1, t2)
    violations = tuple(
        sample_time
        for sample_time, floor, _surge, _occ in trajectory
        if tx_b < floor
    )
    return SurgeBandReport(
        t1=t1,
        t2=t2,
        y0=y0,
        tx_b_price=tx_b,
        samples_checked=len(trajectory),
        admissible_throughout=not violations,
        violating_samples=violations,
        peak_floor=max((f for _, f, _, _ in trajectory), default=0),
        peak_surge=max((s for _, _, s, _ in trajectory), default=1.0),
    )


@dataclass(frozen=True)
class WorldComparison:
    """Block-by-block diff between the measured and hypothetical worlds."""

    blocks_compared: int
    identical: bool
    first_divergence: Optional[int] = None
    missing_in_measured: int = 0
    extra_in_measured: int = 0

    def summary(self) -> str:
        if self.identical:
            return (
                f"worlds identical over {self.blocks_compared} blocks "
                "(Theorem C.2 holds empirically)"
            )
        return (
            f"worlds diverge at block #{self.first_divergence}: "
            f"{self.missing_in_measured} txs missing, "
            f"{self.extra_in_measured} extra in the measured world"
        )


def compare_worlds(
    measured: Sequence[Block],
    hypothetical: Sequence[Block],
    ignore_senders: Optional[set[str]] = None,
) -> WorldComparison:
    """Compare the transaction sets of two block sequences.

    ``ignore_senders`` excludes the measurement's own accounts: Definition
    C.1 is about the *other* users' transactions, and the measurement world
    legitimately contains txA/txC from the measurement EOAs.
    """
    ignore = ignore_senders or set()
    count = min(len(measured), len(hypothetical))
    first_divergence: Optional[int] = None
    missing = extra = 0
    for index in range(count):
        left = {
            tx.hash for tx in measured[index].txs if tx.sender not in ignore
        }
        right = {
            tx.hash for tx in hypothetical[index].txs if tx.sender not in ignore
        }
        if left != right:
            if first_divergence is None:
                first_divergence = measured[index].number
            missing += len(right - left)
            extra += len(left - right)
    return WorldComparison(
        blocks_compared=count,
        identical=first_divergence is None and len(measured) == len(hypothetical),
        first_divergence=first_divergence,
        missing_in_measured=missing,
        extra_in_measured=extra,
    )


@dataclass
class NonInterferenceMonitor:
    """Live monitor: arm before the measurement, verify after.

    Usage::

        monitor = NonInterferenceMonitor(chain, y0=y)
        monitor.start(sim.now)
        ... run the measurement ...
        monitor.stop(sim.now)
        report = monitor.verify()
    """

    chain: Chain
    y0: int
    expiry: float = 3 * 3600.0
    market: Optional[object] = None  # repro.eth.fee_market.FeeMarket
    replace_bump: float = 0.1
    _t1: Optional[float] = None
    _t2: Optional[float] = None

    def start(self, now: float) -> None:
        self._t1 = now

    def stop(self, now: float) -> None:
        self._t2 = now

    def verify(self) -> NonInterferenceReport:
        if self._t1 is None or self._t2 is None:
            raise MeasurementError("monitor must be started and stopped first")
        return check_conditions(
            self.chain, self._t1, self._t2, self.y0, self.expiry
        )

    def verify_surge(self) -> SurgeBandReport:
        """The fee-market companion check (requires ``market``)."""
        if self._t1 is None or self._t2 is None:
            raise MeasurementError("monitor must be started and stopped first")
        if self.market is None:
            raise MeasurementError(
                "verify_surge requires a FeeMarket (pass market=...)"
            )
        return check_surge_band(
            self.market, self._t1, self._t2, self.y0, self.replace_bump
        )
