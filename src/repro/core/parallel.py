"""The parallel measurement primitive ``measurePar`` (Section 5.3.1).

Measures ``r`` designated (source, sink) pairs in one pass:

- **p1** seed one ``txC`` per edge, each from its own EOA, and flood them
  network-wide;
- **p2** configure every source ``Ak``: Z-future eviction flood, re-seed the
  *other* edges' ``txC``, then install ``txA(k, .)`` for its own edges;
- **p3** configure every sink ``Bl``: eviction flood, then the r-vector of
  ``txB`` (for edges sinking at ``Bl``) / ``txC`` (for the rest);
- **p4** edge (Ak, Bl) is detected iff the measurement node observes
  ``txA(k, .)`` from ``Bl``.

Isolation among measured nodes holds because every node other than the
edge's own source/sink holds that edge's ``txC`` at price Y, which
``txA`` (price ``(1+R/2)Y``) cannot replace.

Faithful to the paper, sources are configured *before* sinks. A source that
admits its ``txA`` broadcasts it immediately; if the broadcast reaches a
sink that p3 has not configured yet, the sink still holds ``txC``, rejects
``txA``, and — since the source now marks the sink as knowing ``txA`` —
never re-sends it. The per-node configuration gap therefore creates an
interference window that grows with the group size, which is exactly the
recall decay of Figure 4b ("TopoShot does not guarantee isolation among
nodes {A}").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import MeasurementConfig
from repro.core.gas_estimator import estimate_y
from repro.core.primitive import _known, build_future_flood, rebid
from repro.core.results import Edge, EdgeEvidence, PairOutcome, edge
from repro.eth.rpc import rpc_tx_in_pool
from repro.errors import MeasurementError, NotConnectedError, SendTimeoutError
from repro.eth.account import Wallet
from repro.eth.network import Network
from repro.eth.supernode import Supernode
from repro.eth.transaction import Transaction, TransactionFactory


@dataclass
class ParallelProbeReport:
    """Result of one ``measurePar`` call."""

    edges_probed: int
    detected: Set[Edge] = field(default_factory=set)
    outcomes: List[PairOutcome] = field(default_factory=list)
    y: int = 0
    seed_senders: List[str] = field(default_factory=list)
    flood_senders: List[str] = field(default_factory=list)
    transactions_sent: int = 0
    send_timeouts: int = 0
    unreachable: List[str] = field(default_factory=list)
    # Hardened-pipeline evidence: per detected edge, and the nodes whose
    # observed behavior was provably nonconforming during this round.
    evidence: Dict[Edge, EdgeEvidence] = field(default_factory=dict)
    suspect_nodes: Set[str] = field(default_factory=set)

    @property
    def setup_failures(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.setup_ok)


def _ordered_unique(items: Sequence[str]) -> List[str]:
    seen: Set[str] = set()
    out: List[str] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out


def measure_par(
    network: Network,
    supernode: Supernode,
    pairs: Sequence[Tuple[str, str]],
    config: Optional[MeasurementConfig] = None,
    wallet: Optional[Wallet] = None,
    source_order_rng: Optional[random.Random] = None,
) -> ParallelProbeReport:
    """Measure the given (source, sink) pairs in parallel.

    Source and sink sets must be disjoint (guaranteed by the schedule of
    Section 5.3.2). ``source_order_rng`` randomizes the per-repeat
    configuration order, so repeated runs lose different edges to the
    interference window and their union improves recall.
    """
    if not pairs:
        return ParallelProbeReport(edges_probed=0)
    config = config or MeasurementConfig()
    if len(pairs) > config.mempool_slots_budget:
        raise MeasurementError(
            f"{len(pairs)} edges need as many txC slots, over the "
            f"{config.mempool_slots_budget}-slot budget; seeds beyond the "
            "pools' below-Y headroom would be rejected and break isolation "
            "(Section 5.3.2 bounds the measurement to 2000 of 5120 slots)"
        )
    wallet = wallet or Wallet(f"toposhot-par-{network.sim.now:.3f}")
    factory = TransactionFactory()

    report = ParallelProbeReport(edges_probed=len(pairs))

    # Graceful degradation: endpoints that are down right now cannot be
    # probed this round. Their pairs are reported as setup failures (never
    # as negatives) so a later repeat — or the campaign's failure section —
    # picks them up.
    down = sorted(
        {nid for pair in pairs for nid in pair if network.node(nid).crashed}
    )
    if down:
        report.unreachable = down
        down_set = set(down)
        for pair in pairs:
            if pair[0] in down_set or pair[1] in down_set:
                report.outcomes.append(
                    PairOutcome(
                        source=pair[0],
                        sink=pair[1],
                        detected=False,
                        setup_ok=False,
                    )
                )
        pairs = [
            p for p in pairs if p[0] not in down_set and p[1] not in down_set
        ]
        if not pairs:
            return report

    sources = _ordered_unique([a for a, _ in pairs])
    sinks = _ordered_unique([b for _, b in pairs])
    overlap = set(sources) & set(sinks)
    if overlap:
        raise MeasurementError(
            f"sources and sinks must be disjoint; overlap: {sorted(overlap)[:3]}"
        )
    if source_order_rng is not None:
        source_order_rng.shuffle(sources)
        source_order_rng.shuffle(sinks)

    y = estimate_y(supernode, config)
    report.y = y

    # One EOA and one txC per edge ("any two different transactions are
    # sent from different EOAs").
    tx_c: Dict[Tuple[str, str], Transaction] = {}
    tx_a: Dict[Tuple[str, str], Transaction] = {}
    tx_b: Dict[Tuple[str, str], Transaction] = {}
    for pair in pairs:
        account = wallet.fresh_account(prefix="edge")
        report.seed_senders.append(account.address)
        seed = factory.transfer(account, gas_price=config.price_c(y))
        tx_c[pair] = seed
        tx_a[pair] = rebid(factory, seed, config.price_a(y))
        tx_b[pair] = rebid(factory, seed, config.price_b(y))
        if network.invariants is not None:
            # TopoShot's isolation invariant: this edge's txC may only
            # ever be replaced on its own (source, sink) pair.
            network.invariants.guard_isolation(seed.hash, frozenset(pair))

    # p1: inject every txC at a few entry peers and let the overlay flood
    # them ("propagates them to the Ethereum network"). Deliberately NOT
    # sent to every peer: a node never pushes a transaction back to the
    # peer it came from, so direct-to-everyone seeding would leave the
    # supernode blind to whether the seeds took hold anywhere.
    def inject(peer_id: str, batch: List[Transaction]) -> None:
        """One injection that survives supernode-side faults: a timed-out
        or unroutable send is counted, not raised, so the rest of the
        round still runs and the pair surfaces as a setup failure."""
        try:
            supernode.send_transactions(peer_id, batch)
        except (SendTimeoutError, NotConnectedError):
            report.send_timeouts += 1
        else:
            report.transactions_sent += len(batch)

    seed_batch = [tx_c[pair] for pair in pairs]
    peer_ids = supernode.peer_ids
    step = max(1, len(peer_ids) // 3)
    entry_peers = peer_ids[::step][:3]
    for peer_id in entry_peers:
        inject(peer_id, seed_batch)
    network.run(config.seed_wait)

    # Isolation precondition: a txC that failed to take hold anywhere (e.g.
    # pools had no below-Y headroom left) cannot shield its edge, so the
    # edge is skipped this round rather than risking a false positive. A
    # seeded txC is re-broadcast by admitting nodes, so the supernode
    # observes it from at least one peer.
    active = [
        pair for pair in pairs if supernode.observers_of(tx_c[pair].hash)
    ]
    for pair in pairs:
        if pair not in active:
            report.outcomes.append(
                PairOutcome(
                    source=pair[0],
                    sink=pair[1],
                    detected=False,
                    setup_ok=False,
                    tx_a_hash=tx_a[pair].hash,
                )
            )
    if not active:
        return report

    flood = build_future_flood(wallet, factory, config, y)
    report.flood_senders.extend({tx.sender for tx in flood})

    # p2: configure sources, spaced by the send gap.
    gap = config.parallel_send_gap
    for index, source in enumerate(sources):
        own = [tx_a[pair] for pair in active if pair[0] == source]
        others = [tx_c[pair] for pair in active if pair[0] != source]
        batch = [*flood, *others, *own]
        network.sim.schedule(
            index * gap,
            lambda s=source, b=batch: inject(s, b),
            label=f"p2:{source}",
        )

    # p3: configure sinks, continuing the same cadence.
    offset = len(sources)
    for index, sink in enumerate(sinks):
        vector = [
            tx_b[pair] if pair[1] == sink else tx_c[pair] for pair in active
        ]
        batch = [*flood, *vector]
        network.sim.schedule(
            (offset + index) * gap,
            lambda s=sink, b=batch: inject(s, b),
            label=f"p3:{sink}",
        )

    network.run((offset + len(sinks)) * gap + config.propagation_wait)

    # p4: detection.
    hardened = config.hardened
    for pair in active:
        source, sink = pair
        a_hash = tx_a[pair].hash
        observed = supernode.observed_from(sink, a_hash)
        pair_degraded = False
        if hardened:
            # Byzantine-aware verdict (see measure_one_link): gossip
            # possession must survive the RPC cross-check, and any third
            # party observed with txA breaks the isolation envelope. Every
            # pool check runs through the (possibly faulty) measurement
            # plane; an *unknown* answer degrades the pair instead of
            # deciding it.
            rpc_check = rpc_tx_in_pool(network, sink, a_hash)
            if rpc_check is None:
                pair_degraded = True
            rpc_confirmed = _known(rpc_check, True)
            extra_observers = tuple(
                sorted(supernode.observers_of(a_hash) - {source, sink})
            )
            detected = observed and rpc_confirmed
            # Suspects: nodes whose demonstrated possession of txA is not
            # backed by their pool over RPC — a spoofing relay's
            # fingerprint. Honest third parties that genuinely pooled
            # txA (eviction fallout) pass this check and are not
            # accused; their presence still dirties the evidence. Only a
            # *definite* miss accuses: an unanswerable plane is not
            # evidence of misbehavior.
            if observed and rpc_check is False:
                report.suspect_nodes.add(sink)
            for observer_id in extra_observers:
                observer_check = rpc_tx_in_pool(network, observer_id, a_hash)
                if observer_check is False:
                    report.suspect_nodes.add(observer_id)
                elif observer_check is None:
                    pair_degraded = True
        else:
            rpc_confirmed = True
            extra_observers = ()
            detected = observed
        # Setup check per p2: txA must have taken hold on its source
        # (verified RPC-style; gossip cannot confirm M's own sends).
        setup_check = rpc_tx_in_pool(network, source, a_hash)
        if setup_check is None:
            pair_degraded = True
        outcome = PairOutcome(
            source=source,
            sink=sink,
            detected=detected,
            setup_ok=_known(setup_check, True),
            tx_a_hash=a_hash,
            observed_at=supernode.first_observation_time(sink, a_hash),
            rpc_confirmed=rpc_confirmed,
            extra_observers=extra_observers,
            rpc_degraded=pair_degraded,
        )
        report.outcomes.append(outcome)
        if detected:
            pair_edge = edge(source, sink)
            report.detected.add(pair_edge)
            if hardened:
                report.evidence[pair_edge] = EdgeEvidence(
                    source=source,
                    sink=sink,
                    tx_hash=a_hash,
                    observed_at=supernode.first_observation_time(sink, a_hash),
                    kind=supernode.observation_kind(sink, a_hash) or "",
                    rpc_confirmed=rpc_confirmed,
                    extra_observers=extra_observers,
                    rpc_degraded=pair_degraded,
                )
    return report


def measure_par_with_repeats(
    network: Network,
    supernode: Supernode,
    pairs: Sequence[Tuple[str, str]],
    config: Optional[MeasurementConfig] = None,
    wallet: Optional[Wallet] = None,
    refresh: Optional[Callable[[], None]] = None,
) -> ParallelProbeReport:
    """Run ``measurePar`` ``config.repeats`` times and union the positives.

    Between repeats the transient per-peer known-transaction state and the
    observation log are cleared, ``refresh`` (typically pool churn, see
    :func:`repro.netgen.workloads.refresh_mempools`) runs, and the source
    configuration order is reshuffled so interference hits different edges.
    """
    config = config or MeasurementConfig()
    shuffler = network.sim.rng.stream("parallel-shuffle")
    merged = ParallelProbeReport(edges_probed=len(pairs))
    best_outcome: Dict[Tuple[str, str], PairOutcome] = {}
    remaining = list(pairs)
    for attempt in range(config.repeats):
        if not remaining:
            break
        report = measure_par(
            network,
            supernode,
            remaining,
            config,
            wallet,
            source_order_rng=shuffler if attempt > 0 else None,
        )
        merged.detected |= report.detected
        for pair_edge, item in report.evidence.items():
            merged.evidence.setdefault(pair_edge, item)
        merged.suspect_nodes |= report.suspect_nodes
        merged.transactions_sent += report.transactions_sent
        merged.seed_senders.extend(report.seed_senders)
        merged.flood_senders.extend(report.flood_senders)
        merged.send_timeouts += report.send_timeouts
        for node_id in report.unreachable:
            if node_id not in merged.unreachable:
                merged.unreachable.append(node_id)
        merged.y = report.y
        for outcome in report.outcomes:
            key = (outcome.source, outcome.sink)
            previous = best_outcome.get(key)
            # Keep the strongest evidence seen: a detection beats anything,
            # and a clean (setup-ok) probe beats an unreachable/failed one.
            if (
                previous is None
                or (outcome.detected and not previous.detected)
                or (
                    not previous.detected
                    and outcome.setup_ok
                    and not previous.setup_ok
                )
            ):
                best_outcome[key] = outcome
        remaining = [
            pair for pair in remaining if edge(*pair) not in merged.detected
        ]
        if remaining and attempt < config.repeats - 1:
            supernode.clear_observations()
            network.forget_known_transactions()
            if refresh is not None:
                refresh()
    merged.outcomes = [best_outcome[(a, b)] for a, b in pairs if (a, b) in best_outcome]
    return merged
