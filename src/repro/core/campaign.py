"""Whole-network measurement orchestration (Section 6).

:class:`TopoShot` glues everything together: it attaches a supernode to a
network, pre-processes targets, walks the parallel schedule, unions the
per-iteration detections, and scores the measured topology against the
simulator's ground truth.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import MeasurementConfig
from repro.core.parallel import ParallelProbeReport, measure_par_with_repeats
from repro.core.preprocess import PreprocessReport, preprocess_targets
from repro.core.primitive import ProbeReport, measure_link_with_repeats
from repro.core.results import (
    Edge,
    LinkResult,
    NetworkMeasurement,
    ValidationScore,
    edge,
)
from repro.core.schedule import ScheduleIteration, build_schedule
from repro.errors import MeasurementError
from repro.eth.account import Wallet
from repro.eth.network import Network
from repro.eth.supernode import Supernode

ProgressCallback = Callable[[int, int, ScheduleIteration, ParallelProbeReport], None]


class TopoShot:
    """A measurement session against one network.

    Typical use::

        net = quick_network(n_nodes=40, seed=7)
        shot = TopoShot.attach(net)
        measurement = shot.measure_network()
        print(measurement.summary())
    """

    def __init__(
        self,
        network: Network,
        supernode: Supernode,
        config: Optional[MeasurementConfig] = None,
        wallet: Optional[Wallet] = None,
    ) -> None:
        self.network = network
        self.supernode = supernode
        self.config = config or self._default_config(network)
        self.wallet = wallet or Wallet("toposhot")
        self.last_preprocess: Optional[PreprocessReport] = None
        self.measurement_senders: List[str] = []
        # Per-target flood-size overrides discovered by calibration
        # (Section 5.2.3: "use a 'right' parameter on the connections
        # involving node A'").
        self.z_overrides: Dict[str, int] = {}
        # Ambient background price, pinned at the first pool refresh so the
        # compressed churn does not ratchet the fee level upward (each
        # measurement evicts the cheap half of a pool, biasing its median).
        self.ambient_price: Optional[int] = None

    @staticmethod
    def _default_config(network: Network) -> MeasurementConfig:
        """Derive Z/R/U from the dominant measurable client in the network
        (the paper configures them per target client, Table 3)."""
        policies = [
            network.node(nid).config.policy
            for nid in network.measurable_node_ids()
        ]
        measurable = [p for p in policies if p.measurable]
        if not measurable:
            raise MeasurementError("network has no measurable clients (R > 0)")
        # The most common *exact* policy wins. Counting by full identity
        # matters: selecting a node's custom high-R variant would price txA
        # at (1 + R_custom/2) * Y, enough to replace txC on default-R nodes
        # and silently break isolation network-wide.
        counts = Counter(measurable)
        dominant, _ = counts.most_common(1)[0]
        return MeasurementConfig.for_policy(dominant)

    @classmethod
    def attach(
        cls,
        network: Network,
        config: Optional[MeasurementConfig] = None,
        targets: Optional[Sequence[str]] = None,
        node_id: str = "supernode-M",
    ) -> "TopoShot":
        """Create and connect a measurement supernode, then wrap it."""
        supernode = Supernode.join(network, node_id=node_id, targets=targets)
        return cls(network, supernode, config=config)

    def _refresh_pools(self) -> None:
        """Compressed organic churn between iterations/repeats (see
        :func:`repro.netgen.workloads.refresh_mempools`).

        The replacement background traffic keeps the *ambient* price level,
        sampled from a target node's current pool — not the measurement
        price Y, which may sit deliberately below it (Section 6.3 sets a
        conservatively low Y on the mainnet).
        """
        from repro.netgen.workloads import refresh_mempools

        self._capture_ambient()
        refresh_mempools(
            self.network,
            median_price=self.ambient_price or self.config.default_gas_price_y,
        )

    def _capture_ambient(self) -> None:
        """Pin the ambient price from the first node with a priced pool.

        Called before the first measurement touches any pool, so later
        refreshes restore the *original* fee level rather than the
        measurement-biased one.
        """
        if self.ambient_price is not None:
            return
        for node_id in self.network.measurable_node_ids():
            median = self.network.node(node_id).mempool.median_pending_price()
            if median:
                self.ambient_price = median
                return

    # ------------------------------------------------------------------
    # Single links (serial primitive)
    # ------------------------------------------------------------------
    def measure_link(self, a: str, b: str) -> LinkResult:
        """Measure one undirected link with the serial primitive,
        ``config.repeats`` times, reporting the union of positives."""
        self._capture_ambient()
        reports: List[ProbeReport] = measure_link_with_repeats(
            self.network,
            self.supernode,
            a,
            b,
            self.config,
            self.wallet,
            refresh=self._refresh_pools,
        )
        for report in reports:
            self.measurement_senders.extend(report.measurement_senders)
        positives = sum(1 for r in reports if r.connected)
        return LinkResult(
            a=a,
            b=b,
            connected=positives > 0,
            attempts=len(reports),
            positive_attempts=positives,
            details=list(reports),
        )

    # ------------------------------------------------------------------
    # Target selection
    # ------------------------------------------------------------------
    def preprocess(
        self, candidates: Optional[Sequence[str]] = None, **kwargs: object
    ) -> PreprocessReport:
        """Run the pre-processing phase and cache its report."""
        if candidates is None:
            candidates = self.network.measurable_node_ids()
        self.last_preprocess = preprocess_targets(
            self.network,
            self.supernode,
            candidates,
            self.config,
            self.wallet,
            **kwargs,  # type: ignore[arg-type]
        )
        self.supernode.clear_observations()
        return self.last_preprocess

    # ------------------------------------------------------------------
    # Whole networks (parallel schedule)
    # ------------------------------------------------------------------
    def measure_network(
        self,
        targets: Optional[Sequence[str]] = None,
        group_size: Optional[int] = None,
        preprocess: bool = True,
        validate: bool = True,
        churn_between_iterations: bool = True,
        progress: Optional[ProgressCallback] = None,
    ) -> NetworkMeasurement:
        """Measure the topology among ``targets`` (default: all nodes that
        survive pre-processing) using the two-round parallel schedule."""
        self._capture_ambient()
        if targets is None:
            targets = self.network.measurable_node_ids()
        skipped: List[str] = []
        if preprocess:
            report = self.preprocess(targets)
            skipped = report.rejected
            targets = report.accepted
        targets = list(targets)
        if len(targets) < 2:
            raise MeasurementError("need at least two targets to measure")
        if group_size is None:
            group_size = self.config.group_size_for(len(targets))

        schedule = build_schedule(targets, group_size)
        measurement = NetworkMeasurement(
            node_ids=targets,
            iterations=len(schedule),
            sim_time_start=self.network.sim.now,
            skipped_nodes=skipped,
        )
        refresh = self._refresh_pools if churn_between_iterations else None
        for index, iteration in enumerate(schedule):
            report = measure_par_with_repeats(
                self.network,
                self.supernode,
                iteration.edges,
                self._config_for_iteration(iteration),
                self.wallet,
                refresh=refresh,
            )
            measurement.add_edges(report.detected)
            measurement.transactions_sent += report.transactions_sent
            measurement.setup_failures += report.setup_failures
            self.measurement_senders.extend(report.seed_senders)
            if progress is not None:
                progress(index, len(schedule), iteration, report)
            # Bound memory and keep iterations independent.
            self.supernode.clear_observations()
            self.network.forget_known_transactions()
            if churn_between_iterations and index + 1 < len(schedule):
                self._refresh_pools()
        measurement.sim_time_end = self.network.sim.now

        if validate:
            truth = self._truth_edges_among(targets)
            measurement.validate_against(truth)
        return measurement

    def measure_pairs(
        self,
        pairs: Sequence[Tuple[str, str]],
        group_size: int = 4,
    ) -> Set[Edge]:
        """Measure an explicit pair list (the mainnet critical-subnetwork
        study of Section 6.3) and return the detected undirected edges."""
        self._capture_ambient()
        nodes: List[str] = []
        for a, b in pairs:
            for nid in (a, b):
                if nid not in nodes:
                    nodes.append(nid)
        wanted = {edge(a, b) for a, b in pairs}
        detected: Set[Edge] = set()
        first_iteration = True
        for iteration in build_schedule(nodes, group_size):
            selected = [e for e in iteration.edges if edge(*e) in wanted]
            if not selected:
                continue
            if not first_iteration:
                self._refresh_pools()
            first_iteration = False
            report = measure_par_with_repeats(
                self.network,
                self.supernode,
                selected,
                self.config,
                self.wallet,
                refresh=self._refresh_pools,
            )
            detected |= report.detected
            self.measurement_senders.extend(report.seed_senders)
            self.supernode.clear_observations()
            self.network.forget_known_transactions()
        return detected & wanted

    # ------------------------------------------------------------------
    # Flood-size calibration (Section 5.2.3)
    # ------------------------------------------------------------------
    def _config_for_iteration(self, iteration: ScheduleIteration) -> MeasurementConfig:
        """Apply per-target Z overrides: an iteration touching a node known
        to run a larger-than-default mempool uses a flood big enough for
        it (the pre-processing phase's "right parameter")."""
        if not self.z_overrides:
            return self.config
        involved = set(iteration.sources) | set(iteration.sinks)
        needed = max(
            (z for node, z in self.z_overrides.items() if node in involved),
            default=0,
        )
        if needed <= self.config.future_count:
            return self.config
        return self.config.with_future_count(needed)

    def set_z_override(self, node_id: str, future_count: int) -> None:
        """Record that measurements involving ``node_id`` need a flood of
        at least ``future_count`` transactions."""
        self.z_overrides[node_id] = future_count

    def calibrate_target(
        self,
        target_id: str,
        local_peer_id: str,
        z_values: Sequence[int],
    ) -> Optional[int]:
        """Run the speculative-B' calibration against one target and store
        the discovered flood size as an override. Returns the Z found."""
        from repro.core.preprocess import calibrate_future_count

        found = calibrate_future_count(
            self.network,
            self.supernode,
            target_id,
            local_peer_id,
            self.config,
            z_values,
            self.wallet,
        )
        if found is not None and found > self.config.future_count:
            self.set_z_override(target_id, found)
        self.supernode.clear_observations()
        self.network.forget_known_transactions()
        self._refresh_pools()
        return found

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _truth_edges_among(self, targets: Sequence[str]) -> Set[Edge]:
        target_set = set(targets)
        return {
            link
            for link in self.network.ground_truth_edges()
            if set(link) <= target_set
        }

    def validate(
        self, measurement: NetworkMeasurement
    ) -> ValidationScore:
        """(Re-)score a measurement against the simulator ground truth."""
        return measurement.validate_against(
            self._truth_edges_among(measurement.node_ids)
        )
