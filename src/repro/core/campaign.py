"""Whole-network measurement orchestration (Section 6).

:class:`TopoShot` glues everything together: it attaches a supernode to a
network, pre-processes targets, runs the parallel schedule, unions the
per-iteration detections, and scores the measured topology against the
simulator's ground truth.

Two execution modes share this machinery:

* **serial** — :meth:`TopoShot.measure_network` walks the schedule
  iterations in order inside one evolving simulated world (pools churn
  between iterations, state carries over);
* **sharded** — :func:`repro.core.parallel_exec.run_campaign` splits the
  same schedule into shards, each replayed from a pristine post-setup
  snapshot (optionally in worker processes), and deterministically merges
  the per-shard results. :meth:`TopoShot.snapshot_state` /
  :meth:`TopoShot.restore_state` provide the snapshot/reset layer the
  sharded mode is built on.

Both modes measure the same schedule; they differ in the background state
each iteration sees, so their edge sets agree in the common case but are
not defined to be bit-identical to each other. Within the sharded mode,
output is bit-identical for any worker count.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field, replace
from pathlib import Path
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.config import MeasurementConfig
from repro.core.gas_estimator import estimate_y
from repro.core.parallel import ParallelProbeReport, measure_par_with_repeats
from repro.core.preprocess import PreprocessReport, preprocess_targets
from repro.core.primitive import (
    ProbeReport,
    measure_link_with_repeats,
    measure_one_link,
)
from repro.core.results import (
    CONFIDENCE_CROSS_VALIDATED,
    CONFIDENCE_HIGH,
    CONFIDENCE_QUARANTINED,
    CONFIDENCE_SUSPECT,
    Edge,
    LinkResult,
    MeasurementFailure,
    NetworkMeasurement,
    ValidationScore,
    edge,
)
from repro.core.schedule import ScheduleIteration, build_schedule
from repro.errors import CheckpointError, MeasurementError
from repro.eth.account import Wallet
from repro.eth.network import Network
from repro.eth.supernode import Supernode
from repro.obs import NULL, Observability

ProgressCallback = Callable[[int, int, ScheduleIteration, ParallelProbeReport], None]

PathLike = Union[str, Path]

CHECKPOINT_VERSION = 1


@dataclass
class CampaignCheckpoint:
    """Everything needed to continue a measurement campaign after a kill.

    Written atomically after every completed iteration, so the file on
    disk is always a consistent prefix of the campaign. Resuming replays
    nothing: completed iterations contribute their recorded edges and the
    schedule walk continues at ``completed_iterations``.
    """

    seed: int
    targets: List[str]
    group_size: int
    completed_iterations: int
    edges: Set[Edge] = field(default_factory=set)
    transactions_sent: int = 0
    setup_failures: int = 0
    send_timeouts: int = 0
    skipped_nodes: List[str] = field(default_factory=list)
    failures: List[MeasurementFailure] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "format_version": CHECKPOINT_VERSION,
            "seed": self.seed,
            "targets": list(self.targets),
            "group_size": self.group_size,
            "completed_iterations": self.completed_iterations,
            "edges": sorted(sorted(e) for e in self.edges),
            "transactions_sent": self.transactions_sent,
            "setup_failures": self.setup_failures,
            "send_timeouts": self.send_timeouts,
            "skipped_nodes": list(self.skipped_nodes),
            "failures": [f.to_dict() for f in self.failures],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignCheckpoint":
        try:
            version = payload["format_version"]
            if version != CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"unsupported checkpoint format version {version}"
                )
            # to_dict serializes each edge as a sorted [a, b] pair; rebuild
            # the canonical two-endpoint Edge explicitly instead of
            # frozenset(e), which would silently accept (and collapse)
            # malformed entries like ["a"] or ["a", "a", "b"].
            edges: Set[Edge] = set()
            for entry in payload["edges"]:
                if len(entry) != 2 or not all(
                    isinstance(endpoint, str) for endpoint in entry
                ):
                    raise ValueError(f"malformed edge entry {entry!r}")
                a, b = entry
                if a == b:
                    raise ValueError(f"self-loop edge entry {entry!r}")
                edges.add(edge(a, b))
            checkpoint = cls(
                seed=int(payload["seed"]),
                targets=list(payload["targets"]),
                group_size=int(payload["group_size"]),
                completed_iterations=int(payload["completed_iterations"]),
                edges=edges,
                transactions_sent=int(payload.get("transactions_sent", 0)),
                setup_failures=int(payload.get("setup_failures", 0)),
                send_timeouts=int(payload.get("send_timeouts", 0)),
                skipped_nodes=list(payload.get("skipped_nodes", [])),
                failures=[
                    MeasurementFailure.from_dict(item)
                    for item in payload.get("failures", [])
                ],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc
        return checkpoint

    def save(self, path: PathLike) -> Path:
        """Atomic durable write (tmp + fsync + rename): a kill mid-save
        leaves the old file, a power cut never surfaces a torn one."""
        from repro.io import atomic_write_text

        return atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: PathLike) -> "CampaignCheckpoint":
        from repro.io import cleanup_orphan_tmp

        # A crash mid-save may leave a partial sibling ``.tmp``; the real
        # checkpoint (the last committed rename) is untouched, so reap the
        # orphan before reading.
        cleanup_orphan_tmp(path)
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        return cls.from_dict(payload)


class TopoShot:
    """A measurement session against one network.

    Typical use::

        net = quick_network(n_nodes=40, seed=7)
        shot = TopoShot.attach(net)
        measurement = shot.measure_network()
        print(measurement.summary())
    """

    def __init__(
        self,
        network: Network,
        supernode: Supernode,
        config: Optional[MeasurementConfig] = None,
        wallet: Optional[Wallet] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.network = network
        self.supernode = supernode
        self.config = config or self._default_config(network)
        self.wallet = wallet or Wallet("toposhot")
        # Observability: passing a live bundle wires the whole stack
        # (network collectors + the campaign's own push instruments).
        self.obs = obs if obs is not None else NULL
        if self.obs.enabled:
            network.install_observability(self.obs)
        self.last_preprocess: Optional[PreprocessReport] = None
        self.measurement_senders: List[str] = []
        # Per-target flood-size overrides discovered by calibration
        # (Section 5.2.3: "use a 'right' parameter on the connections
        # involving node A'").
        self.z_overrides: Dict[str, int] = {}
        # Ambient background price, pinned at the first pool refresh so the
        # compressed churn does not ratchet the fee level upward (each
        # measurement evicts the cheap half of a pool, biasing its median).
        self.ambient_price: Optional[int] = None

    @staticmethod
    def _default_config(network: Network) -> MeasurementConfig:
        """Derive Z/R/U from the dominant measurable client in the network
        (the paper configures them per target client, Table 3)."""
        policies = [
            network.node(nid).config.policy
            for nid in network.measurable_node_ids()
        ]
        measurable = [p for p in policies if p.measurable]
        if not measurable:
            raise MeasurementError("network has no measurable clients (R > 0)")
        # The most common *exact* policy wins. Counting by full identity
        # matters: selecting a node's custom high-R variant would price txA
        # at (1 + R_custom/2) * Y, enough to replace txC on default-R nodes
        # and silently break isolation network-wide.
        counts = Counter(measurable)
        dominant, _ = counts.most_common(1)[0]
        return MeasurementConfig.for_policy(dominant)

    @classmethod
    def attach(
        cls,
        network: Network,
        config: Optional[MeasurementConfig] = None,
        targets: Optional[Sequence[str]] = None,
        node_id: str = "supernode-M",
        obs: Optional[Observability] = None,
    ) -> "TopoShot":
        """Create and connect a measurement supernode, then wrap it.

        Pass ``obs=Observability()`` to wire metrics/events through the
        network, engine and the campaign loop in one step.
        """
        supernode = Supernode.join(network, node_id=node_id, targets=targets)
        return cls(network, supernode, config=config, obs=obs)

    def _refresh_pools(self) -> None:
        """Compressed organic churn between iterations/repeats (see
        :func:`repro.netgen.workloads.refresh_mempools`).

        The replacement background traffic keeps the *ambient* price level,
        sampled from a target node's current pool — not the measurement
        price Y, which may sit deliberately below it (Section 6.3 sets a
        conservatively low Y on the mainnet).
        """
        from repro.netgen.workloads import refresh_mempools

        self._capture_ambient()
        refresh_mempools(
            self.network,
            median_price=self.ambient_price or self.config.default_gas_price_y,
        )

    def restore_ambient(self) -> None:
        """Restore the measurement precondition after a traffic window.

        A heavy workload leaves pools full of its own (typically pricier)
        traffic; probing straight into that with a Y estimated against the
        pre-workload ambient turns whole rounds into false negatives. A
        continuous-monitoring loop calls this between the load window and
        the next delta round — the same compressed drain the campaign
        applies between schedule iterations, pinned to the *original*
        ambient price level.
        """
        self._refresh_pools()

    def _capture_ambient(self) -> None:
        """Pin the ambient price from the first node with a priced pool.

        Called before the first measurement touches any pool, so later
        refreshes restore the *original* fee level rather than the
        measurement-biased one.
        """
        if self.ambient_price is not None:
            return
        for node_id in self.network.measurable_node_ids():
            median = self.network.node(node_id).mempool.median_pending_price()
            if median:
                self.ambient_price = median
                return

    # ------------------------------------------------------------------
    # Snapshot/reset (sharded execution support)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Freeze the session (network + measurement bookkeeping).

        Taken after setup/pre-processing at a quiescent instant (see
        :meth:`repro.eth.network.Network.snapshot` for the preconditions);
        :meth:`restore_state` rewinds to it, which is how the sharded
        executor resets the world between schedule slices instead of
        rebuilding the network.
        """
        return {
            "network": self.network.snapshot(),
            "wallet": self.wallet.capture_state(),
            "ambient_price": self.ambient_price,
            "z_overrides": dict(self.z_overrides),
            "measurement_senders": list(self.measurement_senders),
            "last_preprocess": self.last_preprocess,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Rewind the session to a :meth:`snapshot_state` capture."""
        self.network.restore(state["network"])
        self.wallet.restore_state(state["wallet"])
        self.ambient_price = state["ambient_price"]
        self.z_overrides = dict(state["z_overrides"])
        self.measurement_senders = list(state["measurement_senders"])
        self.last_preprocess = state["last_preprocess"]

    # ------------------------------------------------------------------
    # Single links (serial primitive)
    # ------------------------------------------------------------------
    def measure_link(self, a: str, b: str) -> LinkResult:
        """Measure one undirected link with the serial primitive,
        ``config.repeats`` times, reporting the union of positives."""
        self._capture_ambient()
        reports: List[ProbeReport] = measure_link_with_repeats(
            self.network,
            self.supernode,
            a,
            b,
            self.config,
            self.wallet,
            refresh=self._refresh_pools,
        )
        for report in reports:
            self.measurement_senders.extend(report.measurement_senders)
        positives = sum(1 for r in reports if r.connected)
        return LinkResult(
            a=a,
            b=b,
            connected=positives > 0,
            attempts=len(reports),
            positive_attempts=positives,
            details=list(reports),
        )

    # ------------------------------------------------------------------
    # Target selection
    # ------------------------------------------------------------------
    def preprocess(
        self, candidates: Optional[Sequence[str]] = None, **kwargs: object
    ) -> PreprocessReport:
        """Run the pre-processing phase and cache its report."""
        if candidates is None:
            candidates = self.network.measurable_node_ids()
        self.last_preprocess = preprocess_targets(
            self.network,
            self.supernode,
            candidates,
            self.config,
            self.wallet,
            **kwargs,  # type: ignore[arg-type]
        )
        self.supernode.clear_observations()
        return self.last_preprocess

    # ------------------------------------------------------------------
    # Whole networks (parallel schedule)
    # ------------------------------------------------------------------
    def measure_network(
        self,
        targets: Optional[Sequence[str]] = None,
        group_size: Optional[int] = None,
        preprocess: bool = True,
        validate: bool = True,
        churn_between_iterations: bool = True,
        progress: Optional[ProgressCallback] = None,
        checkpoint_path: Optional[PathLike] = None,
        resume: bool = False,
    ) -> NetworkMeasurement:
        """Measure the topology among ``targets`` (default: all nodes that
        survive pre-processing) using the two-round parallel schedule.

        The campaign degrades gracefully instead of aborting: crashed or
        unreachable targets and failed iterations are recorded in
        ``NetworkMeasurement.failures`` and the walk continues. With
        ``checkpoint_path`` set, a JSON checkpoint is written atomically
        after every iteration; ``resume=True`` continues an interrupted
        campaign from the checkpoint (skipping pre-processing — the
        checkpointed target list is reused so the schedule is identical).
        """
        self._capture_ambient()
        checkpoint: Optional[CampaignCheckpoint] = None
        if resume:
            if checkpoint_path is None:
                raise CheckpointError("resume=True requires a checkpoint_path")
            if Path(checkpoint_path).exists():
                checkpoint = CampaignCheckpoint.load(checkpoint_path)
                if checkpoint.seed != self.network.sim.seed:
                    raise CheckpointError(
                        f"checkpoint was recorded under seed {checkpoint.seed}, "
                        f"this network runs seed {self.network.sim.seed}"
                    )

        skipped: List[str] = []
        if checkpoint is not None:
            targets = list(checkpoint.targets)
            skipped = list(checkpoint.skipped_nodes)
            group_size = checkpoint.group_size
        else:
            if targets is None:
                targets = self.network.measurable_node_ids()
            if preprocess:
                report = self.preprocess(targets)
                skipped = report.rejected
                targets = report.accepted
            targets = list(targets)
            if len(targets) < 2:
                raise MeasurementError("need at least two targets to measure")
            if group_size is None:
                group_size = self.config.group_size_for(len(targets))

        schedule = build_schedule(targets, group_size)
        measurement = NetworkMeasurement(
            node_ids=targets,
            iterations=len(schedule),
            sim_time_start=self.network.sim.now,
            skipped_nodes=skipped,
        )
        completed = 0
        if checkpoint is not None:
            if checkpoint.completed_iterations > len(schedule):
                raise CheckpointError(
                    f"checkpoint claims {checkpoint.completed_iterations} "
                    f"completed iterations but the schedule has {len(schedule)}"
                )
            completed = checkpoint.completed_iterations
            measurement.add_edges(checkpoint.edges)
            measurement.transactions_sent = checkpoint.transactions_sent
            measurement.setup_failures = checkpoint.setup_failures
            measurement.send_timeouts = checkpoint.send_timeouts
            measurement.failures = list(checkpoint.failures)

        obs = self.obs
        if obs.enabled:
            from repro.obs import wiring

            iterations_total = obs.metrics.counter(
                wiring.CAMPAIGN_ITERATIONS, "Completed schedule iterations"
            )
            edges_gauge = obs.metrics.gauge(
                wiring.CAMPAIGN_EDGES, "Distinct edges detected so far"
            )
            txs_total = obs.metrics.counter(
                wiring.CAMPAIGN_TXS, "Measurement transactions injected"
            )
            setup_failures_total = obs.metrics.counter(
                wiring.CAMPAIGN_SETUP_FAILURES, "Per-link setups that failed"
            )
            send_timeouts_total = obs.metrics.counter(
                wiring.CAMPAIGN_SEND_TIMEOUTS, "Supernode injections timed out"
            )
            iter_sim_hist = obs.metrics.histogram(
                wiring.CAMPAIGN_ITER_SIM_SECONDS,
                "Simulated seconds consumed per iteration",
            )
            iter_wall_hist = obs.metrics.histogram(
                wiring.CAMPAIGN_ITER_WALL_SECONDS,
                "Wall-clock seconds spent per iteration",
            )

        refresh = self._refresh_pools if churn_between_iterations else None
        for index, iteration in enumerate(schedule):
            if index < completed:
                continue  # already covered by the checkpoint
            sim_start = self.network.sim.now
            wall_start = perf_counter()
            try:
                report = measure_par_with_repeats(
                    self.network,
                    self.supernode,
                    iteration.edges,
                    self._config_for_iteration(iteration),
                    self.wallet,
                    refresh=refresh,
                )
            except MeasurementError as exc:
                # One broken iteration must not kill the campaign; its
                # pairs stay unmeasured and the failure is reported.
                measurement.add_failure(
                    "iteration_error", iteration=index, detail=str(exc)
                )
                if obs.enabled:
                    obs.emit(
                        self.network.sim.now,
                        "campaign.iteration_error",
                        index,
                        str(exc),
                    )
                    obs.metrics.counter(
                        wiring.CAMPAIGN_FAILURES,
                        "Campaign failures by kind",
                        labels={"kind": "iteration_error"},
                    ).inc()
                self.supernode.clear_observations()
                self.network.forget_known_transactions()
                if churn_between_iterations and index + 1 < len(schedule):
                    self._refresh_pools()
                self._save_checkpoint(
                    checkpoint_path, targets, group_size, index + 1, measurement
                )
                continue
            measurement.add_edges(report.detected)
            for pair_edge, item in report.evidence.items():
                if pair_edge not in measurement.evidence:
                    measurement.evidence[pair_edge] = replace(item, iteration=index)
            measurement.suspect_nodes.update(report.suspect_nodes)
            measurement.transactions_sent += report.transactions_sent
            measurement.setup_failures += report.setup_failures
            measurement.send_timeouts += report.send_timeouts
            for node_id in report.unreachable:
                measurement.add_failure(
                    "unreachable", node=node_id, iteration=index,
                    detail="target was down; its pairs were skipped this iteration",
                )
            if report.send_timeouts:
                measurement.add_failure(
                    "send_timeout", iteration=index,
                    detail=f"{report.send_timeouts} injection(s) timed out",
                )
            degraded = sum(
                1 for outcome in report.outcomes if outcome.rpc_degraded
            )
            if degraded:
                measurement.add_failure(
                    "rpc_degraded", iteration=index,
                    detail=(
                        f"{degraded} probe(s) answered over a degraded RPC "
                        "plane; their verdicts rest on gossip alone"
                    ),
                )
            self.measurement_senders.extend(report.seed_senders)
            if obs.enabled:
                iterations_total.inc()
                edges_gauge.set(len(measurement.edges))
                txs_total.inc(report.transactions_sent)
                setup_failures_total.inc(report.setup_failures)
                send_timeouts_total.inc(report.send_timeouts)
                iter_sim_hist.observe(self.network.sim.now - sim_start)
                iter_wall_hist.observe(perf_counter() - wall_start)
                if report.unreachable:
                    obs.metrics.counter(
                        wiring.CAMPAIGN_FAILURES,
                        "Campaign failures by kind",
                        labels={"kind": "unreachable"},
                    ).inc(len(report.unreachable))
                if degraded:
                    obs.metrics.counter(
                        wiring.CAMPAIGN_FAILURES,
                        "Campaign failures by kind",
                        labels={"kind": "rpc_degraded"},
                    ).inc(degraded)
                obs.emit(
                    self.network.sim.now,
                    "campaign.iteration",
                    index,
                    len(schedule),
                    len(report.detected),
                    report.transactions_sent,
                )
            if progress is not None:
                progress(index, len(schedule), iteration, report)
            # Bound memory and keep iterations independent.
            self.supernode.clear_observations()
            self.network.forget_known_transactions()
            if churn_between_iterations and index + 1 < len(schedule):
                self._refresh_pools()
            self._save_checkpoint(
                checkpoint_path, targets, group_size, index + 1, measurement
            )
        self._harden_measurement(measurement)
        measurement.sim_time_end = self.network.sim.now

        if validate:
            truth = self._truth_edges_among(targets)
            measurement.validate_against(truth)
        return measurement

    # ------------------------------------------------------------------
    # Precision hardening (Byzantine-aware post-pass)
    # ------------------------------------------------------------------
    def _harden_measurement(self, measurement: NetworkMeasurement) -> None:
        """Label per-edge confidence, cross-validate suspects, quarantine.

        A detected edge is *suspect* when its evidence shows a broken
        isolation envelope (third parties observed with ``txA``) or when
        either endpoint was caught behaving nonconformingly elsewhere in
        the campaign. With ``config.cross_validate > 0`` each suspect is
        re-probed serially up to that many times and confirmed iff at
        least ``config.cross_validate_k`` probes confirm direct
        adjacency (positive, RPC-confirmed, and the sink won the timing
        race against every third-party observer — see
        :attr:`repro.core.primitive.ProbeReport.confirmed_direct`).
        Unconfirmed suspects are removed from ``edges`` and recorded in
        ``quarantined``; without a cross-validation budget they stay but
        are labelled ``suspect``. All other edges are ``high``.

        On an all-honest run every positive is clean, so this pass only
        assigns ``high`` labels and changes nothing else — hardening is
        behavior-neutral unless the network actually misbehaves.
        """
        if not self.config.hardened:
            return
        suspects: List[Edge] = []
        for pair_edge in sorted(measurement.edges, key=sorted):
            item = measurement.evidence.get(pair_edge)
            if (item is not None and not item.clean) or (
                measurement.suspect_nodes & pair_edge
            ):
                suspects.append(pair_edge)
            else:
                measurement.edge_confidence[pair_edge] = CONFIDENCE_HIGH
        if not suspects:
            return
        budget = self.config.cross_validate
        cross_validated = 0
        for pair_edge in suspects:
            if budget <= 0:
                measurement.edge_confidence[pair_edge] = CONFIDENCE_SUSPECT
                continue
            a, b = sorted(pair_edge)
            cross_validated += 1
            if self._cross_validate_edge(a, b):
                measurement.edge_confidence[pair_edge] = CONFIDENCE_CROSS_VALIDATED
            else:
                measurement.edges.discard(pair_edge)
                measurement.quarantined.add(pair_edge)
                measurement.edge_confidence[pair_edge] = CONFIDENCE_QUARANTINED
        if self.obs.enabled:
            from repro.obs import wiring

            if cross_validated:
                self.obs.metrics.counter(
                    wiring.CAMPAIGN_CROSS_VALIDATIONS,
                    "Suspect edges re-probed by cross-validation",
                ).inc(cross_validated)
            if measurement.quarantined:
                self.obs.metrics.counter(
                    wiring.CAMPAIGN_QUARANTINED,
                    "Edges quarantined after failed cross-validation",
                ).inc(len(measurement.quarantined))
            self.obs.emit(
                self.network.sim.now,
                "campaign.hardening",
                len(suspects),
                cross_validated,
                len(measurement.quarantined),
            )

    def _cross_validate_edge(self, a: str, b: str) -> bool:
        """Serially re-probe one suspect edge: true iff at least
        ``config.cross_validate_k`` of up to ``config.cross_validate``
        probes confirm direct adjacency. Probes that error count as
        failed.

        A probe whose RPC cross-check came back *unknown* (degraded
        measurement plane) says nothing about the edge either way, so it
        does not consume the cross-validation budget — up to
        ``config.cross_validate`` such probes are retried for free
        before degraded reports start counting like ordinary ones
        (bounding the loop when the plane stays sick)."""
        needed = self.config.cross_validate_k
        clean_positives = 0
        attempts = 0
        degraded_allowance = self.config.cross_validate
        while attempts < self.config.cross_validate:
            remaining = self.config.cross_validate - attempts
            if clean_positives + remaining < needed:
                break  # can no longer reach k
            self.supernode.clear_observations()
            self.network.forget_known_transactions()
            self._refresh_pools()
            try:
                report = measure_one_link(
                    self.network, self.supernode, a, b, self.config, self.wallet
                )
            except MeasurementError:
                attempts += 1
                continue
            self.measurement_senders.extend(report.measurement_senders)
            if report.rpc_degraded and degraded_allowance > 0:
                degraded_allowance -= 1
                continue  # a sick plane is not evidence; re-probe for free
            attempts += 1
            if report.confirmed_direct:
                clean_positives += 1
                if clean_positives >= needed:
                    return True
        return clean_positives >= needed

    def _save_checkpoint(
        self,
        checkpoint_path: Optional[PathLike],
        targets: Sequence[str],
        group_size: int,
        completed_iterations: int,
        measurement: NetworkMeasurement,
    ) -> None:
        if checkpoint_path is None:
            return
        CampaignCheckpoint(
            seed=self.network.sim.seed,
            targets=list(targets),
            group_size=group_size,
            completed_iterations=completed_iterations,
            edges=set(measurement.edges),
            transactions_sent=measurement.transactions_sent,
            setup_failures=measurement.setup_failures,
            send_timeouts=measurement.send_timeouts,
            skipped_nodes=list(measurement.skipped_nodes),
            failures=list(measurement.failures),
        ).save(checkpoint_path)

    def measure_pairs(
        self,
        pairs: Sequence[Tuple[str, str]],
        group_size: int = 4,
    ) -> Set[Edge]:
        """Measure an explicit pair list (the mainnet critical-subnetwork
        study of Section 6.3) and return the detected undirected edges."""
        self._capture_ambient()
        nodes: List[str] = []
        for a, b in pairs:
            for nid in (a, b):
                if nid not in nodes:
                    nodes.append(nid)
        wanted = {edge(a, b) for a, b in pairs}
        detected: Set[Edge] = set()
        first_iteration = True
        for iteration in build_schedule(nodes, group_size):
            selected = [e for e in iteration.edges if edge(*e) in wanted]
            if not selected:
                continue
            if not first_iteration:
                self._refresh_pools()
            first_iteration = False
            config = self.config
            if config.adaptive_flood:
                involved = {nid for pair in selected for nid in pair}
                config = self._apply_adaptive_flood(config, involved)
            report = measure_par_with_repeats(
                self.network,
                self.supernode,
                selected,
                config,
                self.wallet,
                refresh=self._refresh_pools,
            )
            detected |= report.detected
            self.measurement_senders.extend(report.seed_senders)
            self.supernode.clear_observations()
            self.network.forget_known_transactions()
        return detected & wanted

    # ------------------------------------------------------------------
    # Flood-size calibration (Section 5.2.3)
    # ------------------------------------------------------------------
    def _config_for_iteration(self, iteration: ScheduleIteration) -> MeasurementConfig:
        """Apply per-target Z overrides: an iteration touching a node known
        to run a larger-than-default mempool uses a flood big enough for
        it (the pre-processing phase's "right parameter"). With
        ``config.adaptive_flood`` the static Z is then shrunk to what the
        involved pools actually need this round (storm-aware sizing)."""
        config = self.config
        involved = set(iteration.sources) | set(iteration.sinks)
        if self.z_overrides:
            needed = max(
                (z for node, z in self.z_overrides.items() if node in involved),
                default=0,
            )
            if needed > config.future_count:
                config = config.with_future_count(needed)
        if config.adaptive_flood:
            config = self._apply_adaptive_flood(config, involved)
        return config

    def _apply_adaptive_flood(
        self, config: MeasurementConfig, involved: Set[str]
    ) -> MeasurementConfig:
        """Resize the flood from observed occupancy of the involved pools.

        After a traffic storm the target pools sit near capacity, so the
        static worst-case ``Z = L`` overshoots: the flood only needs to
        fill the free slots and evict the cheap residents. The adaptive
        size never exceeds the configured (or overridden) Z, so it can
        only reduce interference, never recall.
        """
        from repro.core.adaptive import adaptive_flood_size

        present = [nid for nid in sorted(involved) if nid in self.network]
        if not present:
            return config
        y = config.gas_price_y
        if y is None:
            y = estimate_y(self.supernode, config)
        z = adaptive_flood_size(self.network, present, config, y)
        if z >= config.future_count:
            return config
        if self.obs.enabled:
            self.obs.emit(
                self.network.sim.now,
                "campaign.adaptive_flood",
                config.future_count,
                z,
            )
        return config.with_future_count(z)

    def set_z_override(self, node_id: str, future_count: int) -> None:
        """Record that measurements involving ``node_id`` need a flood of
        at least ``future_count`` transactions."""
        self.z_overrides[node_id] = future_count

    def calibrate_target(
        self,
        target_id: str,
        local_peer_id: str,
        z_values: Sequence[int],
    ) -> Optional[int]:
        """Run the speculative-B' calibration against one target and store
        the discovered flood size as an override. Returns the Z found."""
        from repro.core.preprocess import calibrate_future_count

        found = calibrate_future_count(
            self.network,
            self.supernode,
            target_id,
            local_peer_id,
            self.config,
            z_values,
            self.wallet,
        )
        if found is not None and found > self.config.future_count:
            self.set_z_override(target_id, found)
        self.supernode.clear_observations()
        self.network.forget_known_transactions()
        self._refresh_pools()
        return found

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _truth_edges_among(self, targets: Sequence[str]) -> Set[Edge]:
        target_set = set(targets)
        return {
            link
            for link in self.network.ground_truth_edges()
            if set(link) <= target_set
        }

    def validate(
        self, measurement: NetworkMeasurement
    ) -> ValidationScore:
        """(Re-)score a measurement against the simulator ground truth."""
        return measurement.validate_against(
            self._truth_edges_among(measurement.node_ids)
        )
