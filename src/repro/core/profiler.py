"""Profilers: client mempool policies (Section 5.1) and engine hot paths.

Two unrelated kinds of "profiling" live here:

1. **Client profiling** (the paper's Table 3): a measurement node drives
   black-box unit tests against a target mempool and reads off R, U, P and
   L from the observed replacement/eviction behaviour. The profiler only
   calls ``Mempool.add`` and inspects outcomes — it never peeks at the
   policy object — so Table 3 is *measured*, not copied.

2. **Engine profiling** (:class:`EngineProfiler`): wall-clock accounting of
   where simulation time goes, aggregated per event-label category. Attach
   one with ``sim.attach_profiler()`` and read ``profiler.report()`` after
   a run to see whether a campaign is bound by transaction pushes,
   announcements, flush batching, or fault machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


class EngineProfiler:
    """Aggregate wall-clock callback cost per event-label category.

    The category of an event is its label up to the first ``:`` (labels
    look like ``Transactions:a->b`` or ``flush:node-3``); unlabeled events
    land in ``<unlabeled>``. The engine feeds ``account()`` from its run
    loop, so attaching a profiler implicitly turns event labels on (see
    :attr:`repro.sim.engine.Simulator.wants_labels`).
    """

    UNLABELED = "<unlabeled>"

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    def account(self, label: str, elapsed: float) -> None:
        """Record one executed callback of ``elapsed`` wall seconds."""
        category = label.partition(":")[0] or self.UNLABELED
        self.seconds[category] = self.seconds.get(category, 0.0) + elapsed
        self.counts[category] = self.counts.get(category, 0) + 1

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    @property
    def total_events(self) -> int:
        return sum(self.counts.values())

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Per-category ``{seconds, events}`` map (JSON-friendly)."""
        return {
            category: {
                "seconds": self.seconds[category],
                "events": self.counts[category],
            }
            for category in self.seconds
        }

    def report(self, top: Optional[int] = None) -> str:
        """Human-readable table, most expensive category first."""
        total = self.total_seconds or 1.0
        rows = sorted(self.seconds.items(), key=lambda kv: -kv[1])
        if top is not None:
            rows = rows[:top]
        lines = [f"{'category':<28} {'events':>10} {'seconds':>10} {'share':>7}"]
        for category, seconds in rows:
            lines.append(
                f"{category:<28} {self.counts[category]:>10} "
                f"{seconds:>10.3f} {seconds / total:>6.1%}"
            )
        lines.append(
            f"{'total':<28} {self.total_events:>10} {self.total_seconds:>10.3f}"
        )
        return "\n".join(lines)

    def clear(self) -> None:
        self.seconds.clear()
        self.counts.clear()

from repro.eth.account import Wallet
from repro.eth.mempool import AddOutcome, Mempool
from repro.eth.policies import MempoolPolicy
from repro.eth.transaction import Transaction, TransactionFactory, gwei

BASE_PRICE = gwei(1.0)
HIGH_PRICE = gwei(100.0)


@dataclass(frozen=True)
class ClientProfile:
    """Measured mempool parameters of one client."""

    name: str
    replace_bump: Optional[float]  # R; None if not found within scan range
    future_limit: Optional[int]  # U; None = unlimited
    eviction_floor: int  # P
    capacity: int  # L

    def replace_bump_percent(self) -> str:
        if self.replace_bump is None:
            return ">max-scanned"
        return f"{self.replace_bump * 100:.1f}%"

    def future_limit_str(self) -> str:
        return "inf" if self.future_limit is None else str(self.future_limit)


def _fresh_pool(policy: MempoolPolicy) -> Mempool:
    return Mempool(policy=policy)


def _fill_pending(
    pool: Mempool,
    wallet: Wallet,
    factory: TransactionFactory,
    count: int,
    price: int = BASE_PRICE,
) -> List[Transaction]:
    """Insert ``count`` pending transactions from distinct accounts."""
    txs = []
    for _ in range(count):
        tx = factory.transfer(wallet.fresh_account(prefix="fill"), gas_price=price)
        result = pool.add(tx)
        if not result.admitted:
            break
        txs.append(tx)
    return txs


def _fill_future(
    pool: Mempool,
    wallet: Wallet,
    factory: TransactionFactory,
    count: int,
    price: int = BASE_PRICE,
    per_account: int = 1,
) -> int:
    """Insert up to ``count`` future transactions, ``per_account`` each."""
    inserted = 0
    while inserted < count:
        account = wallet.fresh_account(prefix="fut")
        for index in range(per_account):
            if inserted >= count:
                break
            result = pool.add(factory.future(account, gas_price=price, index=index))
            if not result.admitted:
                return inserted
            inserted += 1
    return inserted


def measure_replace_bump(
    policy: MempoolPolicy,
    granularity: float = 0.005,
    max_bump: float = 0.30,
) -> Optional[float]:
    """Scan bump ratios to find the minimal successful replacement bump R.

    Each trial uses a fresh pool holding one pending transaction and offers
    a same-sender/nonce transaction at the candidate price.
    """
    steps = int(round(max_bump / granularity))
    for step in range(steps + 1):
        bump = step * granularity
        pool = _fresh_pool(policy)
        wallet = Wallet(f"profile-R-{step}")
        factory = TransactionFactory()
        account = wallet.fresh_account()
        original = factory.transfer(account, gas_price=BASE_PRICE)
        assert pool.add(original).admitted
        challenger = Transaction(
            sender=original.sender,
            nonce=original.nonce,
            gas_price=int(math.ceil(BASE_PRICE * (1.0 + bump))),
        )
        if pool.add(challenger).outcome is AddOutcome.REPLACED:
            return bump
    return None


def measure_capacity(policy: MempoolPolicy, probe_limit: int = 20_000) -> int:
    """Add ever-higher-priced pending transactions until one evicts or is
    rejected; the admitted count without side effects is L."""
    pool = _fresh_pool(policy)
    wallet = Wallet("profile-L")
    factory = TransactionFactory()
    for index in range(probe_limit):
        tx = factory.transfer(
            wallet.fresh_account(prefix="cap"), gas_price=BASE_PRICE + index
        )
        result = pool.add(tx)
        if result.evicted or not result.admitted:
            return index
    return probe_limit


def measure_future_limit(
    policy: MempoolPolicy, capacity: int
) -> Optional[int]:
    """Fill the pool with pending transactions, then flood futures from one
    account until rejection; a future-limit rejection reveals U, while a
    pool-full rejection means U is effectively unlimited."""
    pool = _fresh_pool(policy)
    wallet = Wallet("profile-U")
    factory = TransactionFactory()
    _fill_pending(pool, wallet, factory, capacity)
    account = wallet.fresh_account(prefix="flood")
    admitted = 0
    for index in range(capacity + 2):
        result = pool.add(
            factory.future(account, gas_price=HIGH_PRICE, index=index)
        )
        if result.outcome is AddOutcome.REJECTED_FUTURE_LIMIT:
            return admitted
        if not result.admitted:
            return None  # ran out of evictable pending first: unlimited
        admitted += 1
    return None


def _eviction_succeeds(policy: MempoolPolicy, capacity: int, pending: int) -> bool:
    """One trial of the paper's eviction test: a full pool with ``pending``
    pending transactions and ``L - pending`` futures from other accounts; a
    high-priced future transaction is offered and must evict to succeed."""
    pool = _fresh_pool(policy)
    wallet = Wallet(f"profile-P-{pending}")
    factory = TransactionFactory()
    _fill_pending(pool, wallet, factory, pending)
    per_account = policy.future_limit_per_account or capacity
    _fill_future(pool, wallet, factory, capacity - pending, per_account=per_account)
    probe = factory.future(wallet.fresh_account(prefix="probe"), gas_price=HIGH_PRICE)
    return bool(pool.add(probe).evicted)


def measure_eviction_floor(policy: MempoolPolicy, capacity: int) -> int:
    """Find P: the minimal pending count allowing eviction, minus one.

    Eviction requires strictly more than P pending transactions, so success
    is monotone in the pending count and a binary search suffices (the
    paper sweeps l by hand; Table 3 reports P = minimal successful l - 1).
    """
    if _eviction_succeeds(policy, capacity, 1):
        return 0
    if not _eviction_succeeds(policy, capacity, capacity):
        return capacity  # eviction never triggered
    low, high = 1, capacity  # low fails, high succeeds
    while high - low > 1:
        mid = (low + high) // 2
        if _eviction_succeeds(policy, capacity, mid):
            high = mid
        else:
            low = mid
    return high - 1


def profile_client(policy: MempoolPolicy) -> ClientProfile:
    """Run all four black-box tests against a client policy."""
    capacity = measure_capacity(policy)
    floor = measure_eviction_floor(policy, capacity)
    return ClientProfile(
        name=policy.name,
        replace_bump=measure_replace_bump(policy),
        future_limit=measure_future_limit(policy, capacity),
        eviction_floor=floor,
        capacity=capacity,
    )


def profile_table(policies: Sequence[MempoolPolicy]) -> List[ClientProfile]:
    """Profile several clients (the Table 3 reproduction)."""
    return [profile_client(policy) for policy in policies]
