"""Deterministic multi-core campaign execution (OS-process sharding).

The paper's parallel TopoShot (Section 5, Figure 5) cuts *measurement* time
by probing K-node groups concurrently inside one simulated clock. This
module exploits the orthogonal axis: the reproduction's schedule iterations
are independent given a pristine post-setup world, so they can be executed
as **shards** — slices of the schedule replayed against a snapshot of that
world — on a pool of worker processes.

Determinism contract
--------------------

The shard plan is a function of the campaign alone (never of the worker
count), each shard is a pure function of its :class:`ShardSpec` (the world
is rebuilt or snapshot-restored to the same bits, then re-seeded under the
shard's spawn seed), and the merge walks shards in index order. Hence the
merged :class:`~repro.core.results.NetworkMeasurement` is **bit-identical
for any worker count** — ``workers=4`` reproduces ``workers=1`` exactly,
and a crashed worker's shard can be retried anywhere without changing the
output.

Two equivalent ways to reset the world before a shard:

* **fresh build** (a new worker process): run the canonical setup sequence
  from the :class:`CampaignSpec`, then re-seed under the shard seed;
* **snapshot restore** (a warm worker or the in-process path): restore the
  post-setup snapshot taken right after the canonical setup, then re-seed.

:mod:`repro.sim.snapshot` guarantees the restored world is bit-identical
to the freshly built one, which is what lets warm workers skip the
O(network build) setup and pay only O(state restore) per shard.

Relationship to the serial path: :meth:`TopoShot.measure_network` evolves
one world across the whole schedule (pool churn carries over between
iterations), while shards each start from the pristine snapshot. Both are
deterministic; their edge sets agree in the common case but the two modes
are distinct execution semantics, not byte-for-byte interchangeable.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.campaign import TopoShot
from repro.core.parallel import measure_par_with_repeats
from repro.core.results import (
    Edge,
    MeasurementFailure,
    NetworkMeasurement,
    edge,
)
from repro.core.schedule import build_schedule
from repro.errors import CheckpointError, MeasurementError
from repro.netgen.ethereum import NetworkSpec, generate_network
from repro.obs import Observability
from repro.sim.faults import FaultPlan, LinkFaults
from repro.sim.rng import spawn_seed

PathLike = Union[str, Path]

PARALLEL_CHECKPOINT_VERSION = 1

# Default shard-plan granularity: enough slices to keep a typical pool busy
# without shrinking slices below the per-shard reset cost. Deliberately NOT
# derived from the worker count — the plan must be campaign-only so output
# is invariant under N.
DEFAULT_MAX_SHARDS = 8

ShardProgress = Callable[[int, int, "ShardResult"], None]


def _hash_blake2b(payload: str) -> str:
    import hashlib

    return hashlib.blake2b(payload.encode("utf-8"), digest_size=32).hexdigest()


# ----------------------------------------------------------------------
# Serializable specs
# ----------------------------------------------------------------------
def _fault_plan_to_dict(plan: FaultPlan) -> dict:
    return {
        "loss_rate": plan.loss_rate,
        "extra_delay_mean": plan.extra_delay_mean,
        "churn_rate": plan.churn_rate,
        "churn_downtime": plan.churn_downtime,
        "churn_supernode_links": plan.churn_supernode_links,
        "crash_rate": plan.crash_rate,
        "crash_downtime": plan.crash_downtime,
        "send_timeout_rate": plan.send_timeout_rate,
        "link_overrides": [
            [
                sorted(link),
                {
                    "loss_rate": faults.loss_rate,
                    "extra_delay_mean": faults.extra_delay_mean,
                },
            ]
            for link, faults in sorted(
                plan.link_overrides.items(), key=lambda item: sorted(item[0])
            )
        ],
    }


def _fault_plan_from_dict(payload: dict) -> FaultPlan:
    return FaultPlan(
        loss_rate=payload["loss_rate"],
        extra_delay_mean=payload["extra_delay_mean"],
        churn_rate=payload["churn_rate"],
        churn_downtime=payload["churn_downtime"],
        churn_supernode_links=payload["churn_supernode_links"],
        crash_rate=payload["crash_rate"],
        crash_downtime=payload["crash_downtime"],
        send_timeout_rate=payload["send_timeout_rate"],
        link_overrides={
            frozenset(pair): LinkFaults(**faults)
            for pair, faults in payload["link_overrides"]
        },
    )


@dataclass(frozen=True)
class CampaignSpec:
    """Everything needed to rebuild a deterministic campaign replica.

    A worker process receives (a serialized form of) this spec, rebuilds
    the network from ``network``, applies the setup sequence below in a
    fixed order, and is then bit-identical to every other replica of the
    same spec:

    1. ``generate_network(network)``
    2. ``prefill_mempools`` (if ``prefill``)
    3. ``TopoShot.attach`` + config overrides (``repeats``/``max_retries``/
       ``future_count``)
    4. pre-processing (if ``preprocess``) — fixes the target list
    5. drain the event queue, snapshot

    The fault plan is *not* part of setup: it is armed per shard, after the
    snapshot point, so faults draw from the shard's seed universe.
    """

    network: NetworkSpec
    prefill: bool = True
    preprocess: bool = True
    group_size: Optional[int] = None
    repeats: Optional[int] = None
    max_retries: Optional[int] = None
    future_count: Optional[int] = None
    fault_plan: Optional[FaultPlan] = None
    validate: bool = True
    n_shards: Optional[int] = None
    supernode_id: str = "supernode-M"

    @property
    def seed(self) -> int:
        return self.network.seed

    def to_dict(self) -> dict:
        if self.network.latency is not None:
            raise MeasurementError(
                "CampaignSpec requires NetworkSpec.latency=None (latency "
                "models are not serializable); use region_mix or the default"
            )
        network = asdict(self.network)
        network.pop("latency")
        return {
            "network": network,
            "prefill": self.prefill,
            "preprocess": self.preprocess,
            "group_size": self.group_size,
            "repeats": self.repeats,
            "max_retries": self.max_retries,
            "future_count": self.future_count,
            "fault_plan": (
                None
                if self.fault_plan is None
                else _fault_plan_to_dict(self.fault_plan)
            ),
            "validate": self.validate,
            "n_shards": self.n_shards,
            "supernode_id": self.supernode_id,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSpec":
        return cls(
            network=NetworkSpec(**payload["network"]),
            prefill=payload["prefill"],
            preprocess=payload["preprocess"],
            group_size=payload["group_size"],
            repeats=payload["repeats"],
            max_retries=payload["max_retries"],
            future_count=payload["future_count"],
            fault_plan=(
                None
                if payload["fault_plan"] is None
                else _fault_plan_from_dict(payload["fault_plan"])
            ),
            validate=payload["validate"],
            n_shards=payload["n_shards"],
            supernode_id=payload["supernode_id"],
        )

    def fingerprint(self) -> str:
        """Stable digest of the canonical JSON form (checkpoint identity)."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return _hash_blake2b(canonical)


@dataclass(frozen=True)
class ShardSpec:
    """One slice ``[start, stop)`` of the campaign's schedule iterations."""

    campaign: CampaignSpec
    index: int
    n_shards: int
    start: int
    stop: int

    @property
    def seed(self) -> int:
        """The shard's child master seed (a spawn key off the campaign seed)."""
        return spawn_seed(self.campaign.seed, "shard", self.index)


@dataclass
class ShardResult:
    """Structured outcome of one shard, mergeable in shard-index order."""

    index: int
    start: int
    stop: int
    edges: Set[Edge] = field(default_factory=set)
    transactions_sent: int = 0
    setup_failures: int = 0
    send_timeouts: int = 0
    failures: List[MeasurementFailure] = field(default_factory=list)
    sim_time: float = 0.0
    wall_time: float = 0.0
    obs_snapshot: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "start": self.start,
            "stop": self.stop,
            "edges": sorted(sorted(e) for e in self.edges),
            "transactions_sent": self.transactions_sent,
            "setup_failures": self.setup_failures,
            "send_timeouts": self.send_timeouts,
            "failures": [f.to_dict() for f in self.failures],
            "sim_time": self.sim_time,
            "wall_time": self.wall_time,
            "obs_snapshot": self.obs_snapshot,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardResult":
        return cls(
            index=int(payload["index"]),
            start=int(payload["start"]),
            stop=int(payload["stop"]),
            edges={edge(a, b) for a, b in payload["edges"]},
            transactions_sent=int(payload["transactions_sent"]),
            setup_failures=int(payload["setup_failures"]),
            send_timeouts=int(payload["send_timeouts"]),
            failures=[
                MeasurementFailure.from_dict(item)
                for item in payload["failures"]
            ],
            sim_time=float(payload["sim_time"]),
            wall_time=float(payload["wall_time"]),
            obs_snapshot=payload.get("obs_snapshot"),
        )


def build_shard_plan(
    n_iterations: int, n_shards: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Split ``n_iterations`` into contiguous ``[start, stop)`` slices.

    The plan depends only on the iteration count and the requested shard
    count (default: ``min(n_iterations, DEFAULT_MAX_SHARDS)``) — never on
    how many workers will execute it. Earlier shards get the remainder, so
    sizes differ by at most one.
    """
    if n_iterations <= 0:
        return []
    shards = n_shards if n_shards is not None else DEFAULT_MAX_SHARDS
    shards = max(1, min(shards, n_iterations))
    base, remainder = divmod(n_iterations, shards)
    plan: List[Tuple[int, int]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < remainder else 0)
        plan.append((start, start + size))
        start += size
    return plan


# ----------------------------------------------------------------------
# Replica: canonical build + snapshot/reset between shards
# ----------------------------------------------------------------------
class CampaignReplica:
    """A deterministic instantiation of a :class:`CampaignSpec`.

    Runs the canonical setup sequence once, snapshots the quiescent
    post-setup world, and then serves any number of shards by restoring the
    snapshot (O(state restore)) instead of rebuilding (O(network build)).
    """

    def __init__(self, campaign: CampaignSpec) -> None:
        self.campaign = campaign
        self.network = generate_network(campaign.network)
        if campaign.prefill:
            from repro.netgen.workloads import prefill_mempools

            prefill_mempools(self.network)
        self.shot = TopoShot.attach(
            self.network, node_id=campaign.supernode_id
        )
        config = self.shot.config
        if campaign.repeats is not None:
            config = config.with_repeats(campaign.repeats)
        if campaign.max_retries is not None:
            config = config.with_retries(campaign.max_retries)
        if campaign.future_count is not None:
            config = config.with_future_count(campaign.future_count)
        self.shot.config = config

        self.skipped: List[str] = []
        if campaign.preprocess:
            report = self.shot.preprocess()
            self.targets: List[str] = list(report.accepted)
            self.skipped = list(report.rejected)
        else:
            self.targets = self.network.measurable_node_ids()
        if len(self.targets) < 2:
            raise MeasurementError("need at least two targets to measure")
        self.group_size = (
            campaign.group_size
            if campaign.group_size is not None
            else config.group_size_for(len(self.targets))
        )
        self.schedule = build_schedule(self.targets, self.group_size)

        self.network.settle()
        # Pin the ambient fee level before any shard touches a pool, as
        # the serial path does at the top of measure_network.
        self.shot._capture_ambient()
        # Ground truth is fixed at the snapshot point: per-shard churn
        # faults move links afterwards, but each shard starts from (and is
        # validated against) this pristine overlay.
        target_set = set(self.targets)
        self.truth_edges: Set[Edge] = {
            link
            for link in self.network.ground_truth_edges()
            if set(link) <= target_set
        }
        self.base_sim_time = self.network.sim.now
        self._snapshot = self.shot.snapshot_state()
        self._pristine = True

    def _reset(self, shard_seed: int) -> None:
        """Put the world into the shard's universe: pristine state + seed.

        Fresh-build and restore paths converge here: both end with every
        existing RNG stream re-seeded under ``shard_seed`` (streams created
        later derive from it lazily) and the fault plan — if any — armed
        *after* the pristine state is in place.
        """
        if not self._pristine:
            self.network.clear_faults()
            self.shot.restore_state(self._snapshot)
        self.network.sim.rng.reseed(shard_seed)
        if self.campaign.fault_plan is not None:
            self.network.install_faults(self.campaign.fault_plan)
        self._pristine = False

    def run_shard(
        self, shard: ShardSpec, collect_obs: bool = False
    ) -> ShardResult:
        """Reset to the shard's universe and run its schedule slice.

        With ``collect_obs`` a fresh :class:`~repro.obs.Observability`
        bundle is installed for the shard and its snapshot rides along in
        the result (see :func:`merge_obs_snapshots`). Counter values mirror
        the replica's cumulative simulation counters, which restore to
        their post-setup baseline at every reset — so per-shard counts
        include that shared baseline by construction.
        """
        wall_start = perf_counter()
        self._reset(shard.seed)
        obs: Optional[Observability] = None
        if collect_obs:
            from repro.obs import wiring

            obs = Observability()
            self.network.install_observability(obs)
        network = self.network
        shot = self.shot
        sim_start = network.sim.now
        result = ShardResult(
            index=shard.index, start=shard.start, stop=shard.stop
        )
        schedule = self.schedule
        stop = min(shard.stop, len(schedule))
        for index in range(shard.start, stop):
            iteration = schedule[index]
            iter_sim_start = network.sim.now
            iter_wall_start = perf_counter()
            try:
                report = measure_par_with_repeats(
                    network,
                    shot.supernode,
                    iteration.edges,
                    shot._config_for_iteration(iteration),
                    shot.wallet,
                    refresh=shot._refresh_pools,
                )
            except MeasurementError as exc:
                result.failures.append(
                    MeasurementFailure(
                        kind="iteration_error",
                        iteration=index,
                        detail=str(exc),
                    )
                )
                if obs is not None:
                    obs.metrics.counter(
                        wiring.CAMPAIGN_FAILURES,
                        "Campaign failures by kind",
                        labels={"kind": "iteration_error"},
                    ).inc()
                shot.supernode.clear_observations()
                network.forget_known_transactions()
                if index + 1 < stop:
                    shot._refresh_pools()
                continue
            result.edges |= report.detected
            result.transactions_sent += report.transactions_sent
            result.setup_failures += report.setup_failures
            result.send_timeouts += report.send_timeouts
            for node_id in report.unreachable:
                result.failures.append(
                    MeasurementFailure(
                        kind="unreachable",
                        node=node_id,
                        iteration=index,
                        detail=(
                            "target was down; its pairs were skipped this "
                            "iteration"
                        ),
                    )
                )
            if report.send_timeouts:
                result.failures.append(
                    MeasurementFailure(
                        kind="send_timeout",
                        iteration=index,
                        detail=(
                            f"{report.send_timeouts} injection(s) timed out"
                        ),
                    )
                )
            if obs is not None:
                obs.metrics.counter(
                    wiring.CAMPAIGN_ITERATIONS,
                    "Completed schedule iterations",
                ).inc()
                obs.metrics.counter(
                    wiring.CAMPAIGN_TXS,
                    "Measurement transactions injected",
                ).inc(report.transactions_sent)
                obs.metrics.counter(
                    wiring.CAMPAIGN_SETUP_FAILURES,
                    "Per-link setups that failed",
                ).inc(report.setup_failures)
                obs.metrics.counter(
                    wiring.CAMPAIGN_SEND_TIMEOUTS,
                    "Supernode injections timed out",
                ).inc(report.send_timeouts)
                if report.unreachable:
                    obs.metrics.counter(
                        wiring.CAMPAIGN_FAILURES,
                        "Campaign failures by kind",
                        labels={"kind": "unreachable"},
                    ).inc(len(report.unreachable))
                obs.metrics.histogram(
                    wiring.CAMPAIGN_ITER_SIM_SECONDS,
                    "Simulated seconds consumed per iteration",
                ).observe(network.sim.now - iter_sim_start)
                obs.metrics.histogram(
                    wiring.CAMPAIGN_ITER_WALL_SECONDS,
                    "Wall-clock seconds spent per iteration",
                ).observe(perf_counter() - iter_wall_start)
            shot.supernode.clear_observations()
            network.forget_known_transactions()
            if index + 1 < stop:
                shot._refresh_pools()
        result.sim_time = network.sim.now - sim_start
        result.wall_time = perf_counter() - wall_start
        if obs is not None:
            result.obs_snapshot = obs.snapshot()
        return result


# ----------------------------------------------------------------------
# Worker entry point (module-level: must be picklable under spawn)
# ----------------------------------------------------------------------
# One replica per worker process, keyed by the campaign fingerprint: the
# first shard a worker receives pays the canonical build, every later shard
# of the same campaign pays only the snapshot restore.
_REPLICA_CACHE: Dict[str, CampaignReplica] = {}


def _worker_run_shard(
    campaign_payload: dict,
    fingerprint: str,
    index: int,
    n_shards: int,
    start: int,
    stop: int,
    collect_obs: bool,
) -> dict:
    replica = _REPLICA_CACHE.get(fingerprint)
    if replica is None:
        campaign = CampaignSpec.from_dict(campaign_payload)
        replica = CampaignReplica(campaign)
        _REPLICA_CACHE.clear()  # one campaign at a time per worker
        _REPLICA_CACHE[fingerprint] = replica
    shard = ShardSpec(
        campaign=replica.campaign,
        index=index,
        n_shards=n_shards,
        start=start,
        stop=stop,
    )
    return replica.run_shard(shard, collect_obs=collect_obs).to_dict()


def _mp_context():
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform-dependent
        return multiprocessing.get_context("spawn")


# ----------------------------------------------------------------------
# Checkpoint (shard-granular; boundaries ARE iteration boundaries)
# ----------------------------------------------------------------------
@dataclass
class ParallelCheckpoint:
    """Completed shards of a sharded campaign, written atomically.

    Shard boundaries are schedule-iteration ranges, so this checkpoint is
    aligned with the serial path's per-iteration checkpoints: a completed
    shard covers exactly its ``[start, stop)`` iterations. Resume verifies
    the campaign fingerprint and re-runs only the missing shards.
    """

    fingerprint: str
    n_shards: int
    completed: Dict[int, ShardResult] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "format_version": PARALLEL_CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "n_shards": self.n_shards,
            "completed": {
                str(index): result.to_dict()
                for index, result in sorted(self.completed.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ParallelCheckpoint":
        try:
            version = payload["format_version"]
            if version != PARALLEL_CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"unsupported parallel checkpoint version {version}"
                )
            return cls(
                fingerprint=str(payload["fingerprint"]),
                n_shards=int(payload["n_shards"]),
                completed={
                    int(index): ShardResult.from_dict(result)
                    for index, result in payload["completed"].items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed parallel checkpoint: {exc}"
            ) from exc

    def save(self, path: PathLike) -> Path:
        """Atomic durable write (tmp + fsync + rename), like the serial
        checkpoint."""
        from repro.io import atomic_write_text

        return atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: PathLike) -> "ParallelCheckpoint":
        from repro.io import cleanup_orphan_tmp

        cleanup_orphan_tmp(path)
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"cannot read parallel checkpoint {path}: {exc}"
            ) from exc
        return cls.from_dict(payload)


# ----------------------------------------------------------------------
# Observability merging
# ----------------------------------------------------------------------
def merge_obs_snapshots(snapshots: Sequence[dict]) -> dict:
    """Merge per-shard ``Observability.snapshot()`` payloads into one.

    Merge rules per metric family, keyed by (name, labels):

    * **counter** — values sum (each shard's count includes the replica's
      shared post-setup baseline, see :meth:`CampaignReplica.run_shard`);
    * **gauge** — last shard (highest position in the input) wins;
    * **histogram** — ``count``/``sum`` add, ``min``/``max`` combine;
      quantiles are dropped (reservoirs are not mergeable).

    Event-log payloads carry counts only; they sum.
    """
    merged_metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], dict] = {}
    events = {"recorded": 0, "retained": 0, "dropped": 0}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for sample in snapshot.get("metrics", []):
            key = (
                sample["name"],
                tuple(sorted(sample.get("labels", {}).items())),
            )
            existing = merged_metrics.get(key)
            if existing is None:
                merged_metrics[key] = dict(sample)
                if sample["type"] == "histogram":
                    for quantile in ("p50", "p90", "p99"):
                        merged_metrics[key][quantile] = None
                continue
            kind = sample["type"]
            if kind == "counter":
                existing["value"] += sample["value"]
            elif kind == "gauge":
                existing["value"] = sample["value"]
            else:  # histogram
                existing["count"] += sample["count"]
                existing["sum"] += sample["sum"]
                for bound, pick in (("min", min), ("max", max)):
                    values = [
                        v for v in (existing[bound], sample[bound]) if v is not None
                    ]
                    existing[bound] = pick(values) if values else None
        shard_events = snapshot.get("events", {})
        for count_key in events:
            events[count_key] += shard_events.get(count_key, 0)
    return {
        "metrics": [merged_metrics[key] for key in sorted(merged_metrics)],
        "events": events,
    }


def load_metrics_into_registry(registry, samples: Sequence[dict]) -> None:
    """Write merged metric samples into a live :class:`MetricsRegistry`.

    Counters adopt the merged totals (``set_total``), gauges are set, and
    histograms get their exact ``count``/``sum``/``min``/``max`` with an
    empty reservoir (quantiles report ``None``). Used by
    :func:`run_campaign` so ``--metrics-out`` exports work unchanged in
    sharded mode.
    """
    for sample in samples:
        name = sample["name"]
        labels = sample.get("labels") or None
        kind = sample["type"]
        if kind == "counter":
            registry.counter(name, labels=labels).set_total(sample["value"])
        elif kind == "gauge":
            registry.gauge(name, labels=labels).set(sample["value"])
        else:
            histogram = registry.histogram(name, labels=labels)
            histogram.count = sample["count"]
            histogram.sum = sample["sum"]
            histogram.min = sample["min"]
            histogram.max = sample["max"]


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_campaign(
    campaign: CampaignSpec,
    workers: int = 1,
    checkpoint_path: Optional[PathLike] = None,
    resume: bool = False,
    obs: Optional[Observability] = None,
    progress: Optional[ShardProgress] = None,
) -> NetworkMeasurement:
    """Execute a sharded campaign and deterministically merge the shards.

    ``workers <= 1`` runs every shard in this process against one replica,
    resetting via snapshot restore between shards. ``workers > 1`` fans the
    shards out to a process pool; warm workers likewise reset via restore.
    The merged measurement is bit-identical for every ``workers`` value.

    Worker-pool failures reuse the measurement config's retry machinery:
    a failed shard is retried up to ``max_retries`` times on a fresh pool
    with geometric wall-clock backoff (``retry_backoff`` /
    ``retry_backoff_factor``); shards that keep failing fall back to
    in-process execution on the driver's replica, and only if that also
    fails does the shard surface as a ``shard_error`` failure in the
    merged result (the campaign never aborts).

    With ``checkpoint_path`` set a :class:`ParallelCheckpoint` is written
    atomically after every completed shard; ``resume=True`` verifies the
    campaign fingerprint and skips completed shards.
    """
    collect_obs = obs is not None and obs.enabled
    replica = CampaignReplica(campaign)
    plan = build_shard_plan(len(replica.schedule), campaign.n_shards)
    fingerprint = campaign.fingerprint()

    completed: Dict[int, ShardResult] = {}
    if resume:
        if checkpoint_path is None:
            raise CheckpointError("resume=True requires a checkpoint_path")
        if Path(checkpoint_path).exists():
            checkpoint = ParallelCheckpoint.load(checkpoint_path)
            if checkpoint.fingerprint != fingerprint:
                raise CheckpointError(
                    "parallel checkpoint belongs to a different campaign "
                    f"(fingerprint {checkpoint.fingerprint[:12]}... != "
                    f"{fingerprint[:12]}...)"
                )
            if checkpoint.n_shards != len(plan):
                raise CheckpointError(
                    f"parallel checkpoint has {checkpoint.n_shards} shards, "
                    f"this campaign plans {len(plan)}"
                )
            completed = dict(checkpoint.completed)

    shards = [
        ShardSpec(
            campaign=campaign,
            index=index,
            n_shards=len(plan),
            start=start,
            stop=stop,
        )
        for index, (start, stop) in enumerate(plan)
    ]
    pending = [shard for shard in shards if shard.index not in completed]

    def _record(shard: ShardSpec, result: ShardResult) -> None:
        completed[shard.index] = result
        if checkpoint_path is not None:
            ParallelCheckpoint(
                fingerprint=fingerprint,
                n_shards=len(plan),
                completed=completed,
            ).save(checkpoint_path)
        if progress is not None:
            progress(shard.index, len(plan), result)

    def _run_inprocess(shard: ShardSpec) -> ShardResult:
        try:
            return replica.run_shard(shard, collect_obs=collect_obs)
        except MeasurementError as exc:
            result = ShardResult(
                index=shard.index, start=shard.start, stop=shard.stop
            )
            result.failures.append(
                MeasurementFailure(
                    kind="shard_error",
                    iteration=shard.start,
                    detail=str(exc),
                )
            )
            return result

    if workers <= 1 or len(pending) <= 1:
        for shard in pending:
            _record(shard, _run_inprocess(shard))
    else:
        config = replica.shot.config
        payload = campaign.to_dict()
        context = _mp_context()
        remaining = list(pending)
        attempt = 0
        backoff = config.retry_backoff
        while remaining:
            executor = ProcessPoolExecutor(
                max_workers=min(workers, len(remaining)),
                mp_context=context,
            )
            failed: List[ShardSpec] = []
            try:
                futures: List[Tuple[ShardSpec, Future]] = [
                    (
                        shard,
                        executor.submit(
                            _worker_run_shard,
                            payload,
                            fingerprint,
                            shard.index,
                            shard.n_shards,
                            shard.start,
                            shard.stop,
                            collect_obs,
                        ),
                    )
                    for shard in remaining
                ]
                for shard, future in futures:
                    try:
                        result = ShardResult.from_dict(future.result())
                    except Exception:
                        # BrokenProcessPool, pickling trouble, a worker
                        # OOM-kill — the shard is retried, the campaign
                        # continues either way.
                        failed.append(shard)
                        continue
                    _record(shard, result)
            finally:
                executor.shutdown(wait=False, cancel_futures=True)
            if not failed:
                break
            if attempt >= config.max_retries:
                for shard in failed:
                    _record(shard, _run_inprocess(shard))
                break
            attempt += 1
            time.sleep(backoff)
            backoff *= config.retry_backoff_factor
            remaining = failed

    measurement = NetworkMeasurement(
        node_ids=list(replica.targets),
        iterations=len(replica.schedule),
        sim_time_start=replica.base_sim_time,
        skipped_nodes=list(replica.skipped),
    )
    sim_total = 0.0
    obs_snapshots: List[dict] = []
    for shard in shards:
        result = completed[shard.index]
        measurement.add_edges(result.edges)
        measurement.transactions_sent += result.transactions_sent
        measurement.setup_failures += result.setup_failures
        measurement.send_timeouts += result.send_timeouts
        measurement.failures.extend(result.failures)
        sim_total += result.sim_time
        if result.obs_snapshot:
            obs_snapshots.append(result.obs_snapshot)
    # Shards run in disjoint copies of the same simulated world, so the
    # campaign's simulated duration is the sum of per-shard durations laid
    # end to end after the shared setup.
    measurement.sim_time_end = replica.base_sim_time + sim_total

    if collect_obs and obs_snapshots:
        from repro.obs import wiring

        merged = merge_obs_snapshots(obs_snapshots)
        load_metrics_into_registry(obs.metrics, merged["metrics"])
        # Distinct-edge count is a cross-shard fact, so the driver sets it
        # after the merge rather than trusting any shard's gauge.
        obs.metrics.gauge(
            wiring.CAMPAIGN_EDGES, "Distinct edges detected so far"
        ).set(len(measurement.edges))

    if campaign.validate:
        measurement.validate_against(replica.truth_edges)
    return measurement
