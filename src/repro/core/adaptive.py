"""Workload-adaptive measurement configuration (Section 6.3).

The mainnet study "proposes workload-adaptive mechanisms to configure
TopoShot for minimal service interruption": the measurement price Y must
sit *below* what miners are currently including (so txC is never the best
candidate and V2 holds) yet *above* the eviction waterline (so txC is not
immediately evicted by organic traffic). Both bounds move with the
workload, so Y is chosen from live observations:

- the inclusion floor: the minimum effective price across recent blocks;
- the pool waterline: a low percentile of the pool's pending prices.

``choose_adaptive_y`` picks a Y under the inclusion floor by a safety
margin, clamped above the waterline; ``AdaptiveYController`` re-estimates
before every measurement round, which is the "we apply the estimation
method before every measurement study and obtain Y dynamically" of
Section 5.2.1 taken to the mainnet's moving fee market.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import MeasurementError
from repro.eth.chain import Chain
from repro.eth.node import Node


@dataclass(frozen=True)
class YDecision:
    """A chosen measurement price and the evidence behind it."""

    y: int
    inclusion_floor: Optional[int]
    pool_waterline: Optional[int]
    blocks_inspected: int

    def summary(self) -> str:
        floor = self.inclusion_floor
        waterline = self.pool_waterline
        return (
            f"Y={self.y} (inclusion floor="
            f"{floor if floor is not None else 'n/a'}, pool waterline="
            f"{waterline if waterline is not None else 'n/a'}, "
            f"{self.blocks_inspected} blocks inspected)"
        )


def inclusion_floor(chain: Chain, window: int = 10) -> Optional[int]:
    """Minimum effective gas price included over the last ``window`` blocks
    (ignoring empty blocks). None when no priced block exists yet."""
    floors = []
    for block in chain.blocks[-window:]:
        price = block.min_included_price()
        if price is not None:
            floors.append(price)
    return min(floors) if floors else None


def pool_waterline(node: Node, percentile: float = 0.1) -> Optional[int]:
    """A low percentile of the node's pending prices: anything priced below
    this is living on borrowed time in the pool."""
    prices = sorted(node.mempool.pending_prices())
    if not prices:
        return None
    index = min(len(prices) - 1, int(percentile * len(prices)))
    return prices[index]


def probe_priority(
    network,
    pairs,
    percentile: float = 0.1,
    endpoint_health: Optional[dict] = None,
):
    """Order probe pairs by endpoint pool waterline, cheapest first.

    The shared re-probe prioritizer (used by the incremental
    :class:`~repro.core.monitor.TopologyMonitor`): a pair's cost is the
    *higher* of its endpoints' waterlines — both pools take the
    measurement flood, so the pricier one binds. Probing low-waterline
    pairs first spends the safe price band where it is widest and defers
    surging pools until the fee market calms. Stable sort, no RNG: the
    order is deterministic given the pool states.

    ``endpoint_health`` (node id -> score in [0, 1], from
    ``ResilientRpcClient.health_report``) optionally demotes pairs whose
    RPC endpoints have been misbehaving: a pair sorts by its *sickest*
    endpoint first, so probes that are likely to come back degraded run
    after the ones the plane can actually answer. Omitted or empty, the
    ordering is exactly the waterline-only one.
    """
    cache: dict = {}

    def node_waterline(node_id: str) -> int:
        value = cache.get(node_id)
        if value is None:
            level = pool_waterline(
                network.node(node_id), percentile=percentile
            )
            value = cache[node_id] = 0 if level is None else level
        return value

    def pair_sickness(pair) -> float:
        if not endpoint_health:
            return 0.0
        return max(
            1.0 - float(endpoint_health.get(pair[0], 1.0)),
            1.0 - float(endpoint_health.get(pair[1], 1.0)),
        )

    return sorted(
        pairs,
        key=lambda pair: (
            pair_sickness(pair),
            max(node_waterline(pair[0]), node_waterline(pair[1])),
        ),
    )


def adaptive_flood_size(
    network,
    node_ids,
    config,
    y: int,
) -> int:
    """Flood size Z resized from observed pool occupancy (per round).

    The static worst case ``Z = L`` assumes the flood must fill an empty
    pool by itself. After a traffic storm the pools are already near
    capacity with ambient pending transactions, and the flood only has
    to (a) fill the remaining free slots and (b) evict the pending
    transactions priced *below* the flood price — eviction removes
    exactly one resident per admitted future, so the requirement is
    their sum. Pending priced at or above the flood price cannot be
    evicted by it and must not be counted (the paper's primitive accepts
    that such traffic survives; the replacement check still works).

    Returns the max requirement across ``node_ids`` — every involved
    pool must be cleared — plus a small safety margin for traffic that
    lands mid-flood, clamped to ``[margin, config.future_count]`` so the
    adaptive size never exceeds the configured static Z.
    """
    flood_price = config.price_future(y)
    margin = max(4, config.future_count // 16)
    required = 0
    for node_id in node_ids:
        pool = network.node(node_id).mempool
        evictable = sum(
            1 for price in pool.pending_prices() if price < flood_price
        )
        required = max(required, pool.free_slots + evictable)
    return max(margin, min(config.future_count, required + margin))


def choose_adaptive_y(
    chain: Chain,
    observer: Node,
    margin: float = 0.8,
    window: int = 10,
    percentile: float = 0.1,
    fee_floor: Optional[int] = None,
    replace_bump: float = 0.1,
) -> YDecision:
    """Pick Y = margin * inclusion_floor, clamped above the pool waterline.

    Raises :class:`MeasurementError` when the two constraints cannot be
    satisfied together (floor*margin below the waterline): the fee market
    leaves no safe band and the measurement should wait — exactly the
    condition under which the paper's V1/V2 verification would fail.

    ``fee_floor`` (taken from the observer's network market when omitted)
    adds the live-admission bound: txB at ``(1 - R/2) * Y`` must clear the
    floor, so Y is additionally clamped to
    :func:`repro.eth.fee_market.min_measurement_y`; a clamp that would
    push Y to (or above) the inclusion floor is the same no-safe-band
    condition and raises.
    """
    if not 0 < margin < 1:
        raise MeasurementError("margin must be in (0, 1)")
    if fee_floor is None:
        market = getattr(getattr(observer, "network", None), "fee_market", None)
        if market is not None:
            fee_floor = market.floor_for(observer.sim.now)
    floor = inclusion_floor(chain, window=window)
    waterline = pool_waterline(observer, percentile=percentile)
    fee_bound: Optional[int] = None
    if fee_floor is not None:
        from repro.eth.fee_market import min_measurement_y

        fee_bound = min_measurement_y(fee_floor, replace_bump)
    blocks = min(window, len(chain.blocks))

    if floor is None:
        # No mining signal (testnets before the background workload): fall
        # back to the pool median, the Section 5.2.1 estimator.
        median = observer.mempool.median_pending_price()
        if median is None:
            raise MeasurementError(
                "no inclusion data and an empty pool: cannot choose Y"
            )
        if fee_bound is not None and median < fee_bound:
            median = fee_bound
        return YDecision(
            y=median,
            inclusion_floor=None,
            pool_waterline=waterline,
            blocks_inspected=blocks,
        )

    y = int(floor * margin)
    if waterline is not None and y < waterline:
        raise MeasurementError(
            f"no safe price band: {margin:.0%} of the inclusion floor "
            f"({y}) sits below the pool waterline ({waterline}); wait for "
            "the fee market to widen"
        )
    if fee_bound is not None and y < fee_bound:
        raise MeasurementError(
            f"no safe price band: {margin:.0%} of the inclusion floor "
            f"({y}) sits below the live fee-market admission bound "
            f"({fee_bound}); wait for the surge to pass"
        )
    return YDecision(
        y=y,
        inclusion_floor=floor,
        pool_waterline=waterline,
        blocks_inspected=blocks,
    )


class AdaptiveYController:
    """Re-estimates Y before every round and remembers the decisions."""

    def __init__(
        self,
        chain: Chain,
        observer: Node,
        margin: float = 0.8,
        window: int = 10,
    ) -> None:
        self.chain = chain
        self.observer = observer
        self.margin = margin
        self.window = window
        self.decisions: list[YDecision] = []

    def next_y(self) -> int:
        decision = choose_adaptive_y(
            self.chain, self.observer, margin=self.margin, window=self.window
        )
        self.decisions.append(decision)
        return decision.y

    @property
    def last_decision(self) -> Optional[YDecision]:
        return self.decisions[-1] if self.decisions else None
