"""Result containers and precision/recall scoring.

The paper validates TopoShot against ground truth available on locally
controlled nodes (Section 6.1, Appendix B); in the simulator the ground
truth is the network's true link set, so every measurement can be scored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import networkx as nx

Edge = FrozenSet[str]


def edge(a: str, b: str) -> Edge:
    """Canonical undirected edge key."""
    return frozenset((a, b))


def _sorted_pairs(edges: Iterable[Edge]) -> Tuple[Tuple[str, str], ...]:
    """Edges as sorted (a, b) tuples, deterministically ordered."""
    return tuple(sorted(tuple(sorted(e)) for e in edges))


# Per-edge confidence labels assigned by the hardened pipeline
# (see docs/adversarial.md). Plain strings so they serialize as-is.
CONFIDENCE_HIGH = "high"
CONFIDENCE_CROSS_VALIDATED = "cross_validated"
CONFIDENCE_SUSPECT = "suspect"
CONFIDENCE_QUARANTINED = "quarantined"


@dataclass(frozen=True)
class EdgeEvidence:
    """Why one edge was claimed: which tx returned, from whom, when, how.

    The paper's positives rest on the supernode observing ``txA`` back
    from the probed target; this record pins that observation down so an
    adversarial false positive can be diagnosed after the fact.
    ``rpc_confirmed`` is the Section 6.1 cross-check (``txA`` present in
    the sink's pool when queried); ``extra_observers`` are third-party
    nodes that also demonstrated possession of ``txA`` — on a conforming
    network the price band makes that set empty, so any entry marks a
    broken isolation envelope (and a Byzantine suspect).
    """

    source: str
    sink: str
    tx_hash: str
    observed_at: Optional[float] = None
    kind: str = ""  # "push" / "announce" / "" (not observed)
    rpc_confirmed: bool = True
    extra_observers: Tuple[str, ...] = ()
    iteration: int = -1
    # True when the RPC cross-check behind this claim came back *unknown*
    # (degraded measurement plane): the edge stands on gossip alone and
    # is labeled suspect rather than silently trusted.
    rpc_degraded: bool = False

    @property
    def edge(self) -> Edge:
        return edge(self.source, self.sink)

    @property
    def clean(self) -> bool:
        """RPC-confirmed over a healthy plane, intact isolation envelope."""
        return (
            self.rpc_confirmed
            and not self.rpc_degraded
            and not self.extra_observers
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "source": self.source,
            "sink": self.sink,
            "tx_hash": self.tx_hash,
            "observed_at": self.observed_at,
            "kind": self.kind,
            "rpc_confirmed": self.rpc_confirmed,
            "extra_observers": list(self.extra_observers),
            "iteration": self.iteration,
            "rpc_degraded": self.rpc_degraded,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "EdgeEvidence":
        observed_at = payload.get("observed_at")
        return cls(
            source=str(payload["source"]),
            sink=str(payload["sink"]),
            tx_hash=str(payload.get("tx_hash", "")),
            observed_at=None if observed_at is None else float(observed_at),  # type: ignore[arg-type]
            kind=str(payload.get("kind", "")),
            rpc_confirmed=bool(payload.get("rpc_confirmed", True)),
            extra_observers=tuple(
                str(x) for x in payload.get("extra_observers", ())  # type: ignore[union-attr]
            ),
            iteration=int(payload.get("iteration", -1)),  # type: ignore[arg-type]
            rpc_degraded=bool(payload.get("rpc_degraded", False)),
        )


@dataclass(frozen=True)
class ValidationScore:
    """Precision/recall of a measured edge set against ground truth.

    ``false_positive_edges``/``false_negative_edges`` list the actual
    offending edges (sorted (a, b) tuples) so adversarial false-positive
    diagnosis is possible from bench output; ``__str__`` reports counts
    only, unchanged.
    """

    true_positives: int
    false_positives: int
    false_negatives: int
    false_positive_edges: Tuple[Tuple[str, str], ...] = ()
    false_negative_edges: Tuple[Tuple[str, str], ...] = ()

    @property
    def precision(self) -> float:
        """1.0 on an empty measurement (no false claims were made)."""
        claimed = self.true_positives + self.false_positives
        return 1.0 if claimed == 0 else self.true_positives / claimed

    @property
    def recall(self) -> float:
        """1.0 when there was nothing to find."""
        actual = self.true_positives + self.false_negatives
        return 1.0 if actual == 0 else self.true_positives / actual

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 0.0 if p + r == 0 else 2 * p * r / (p + r)

    def __str__(self) -> str:
        return (
            f"precision={self.precision:.3f} recall={self.recall:.3f} "
            f"(tp={self.true_positives}, fp={self.false_positives}, "
            f"fn={self.false_negatives})"
        )


def score_edges(measured: Iterable[Edge], truth: Iterable[Edge]) -> ValidationScore:
    """Score measured undirected edges against the true link set."""
    measured_set = set(measured)
    truth_set = set(truth)
    tp = len(measured_set & truth_set)
    fp_edges = _sorted_pairs(measured_set - truth_set)
    fn_edges = _sorted_pairs(truth_set - measured_set)
    return ValidationScore(
        true_positives=tp,
        false_positives=len(fp_edges),
        false_negatives=len(fn_edges),
        false_positive_edges=fp_edges,
        false_negative_edges=fn_edges,
    )


@dataclass
class LinkResult:
    """Outcome of measuring one candidate link, over one or more repeats."""

    a: str
    b: str
    connected: bool
    attempts: int = 1
    positive_attempts: int = 0
    details: List[object] = field(default_factory=list)

    @property
    def edge(self) -> Edge:
        return edge(self.a, self.b)


@dataclass(frozen=True)
class MeasurementFailure:
    """One adverse event the campaign survived instead of aborting on.

    ``kind`` is one of ``"unreachable"`` (a target was down when its
    iteration ran), ``"send_timeout"`` (supernode injections timed out),
    or ``"iteration_error"`` (a whole iteration failed and was skipped).
    """

    kind: str
    node: str = ""
    iteration: int = -1
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "node": self.node,
            "iteration": self.iteration,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "MeasurementFailure":
        return cls(
            kind=str(payload["kind"]),
            node=str(payload.get("node", "")),
            iteration=int(payload.get("iteration", -1)),  # type: ignore[arg-type]
            detail=str(payload.get("detail", "")),
        )


@dataclass
class NetworkMeasurement:
    """A measured topology snapshot plus metadata and optional validation."""

    node_ids: List[str]
    edges: Set[Edge] = field(default_factory=set)
    iterations: int = 0
    sim_time_start: float = 0.0
    sim_time_end: float = 0.0
    transactions_sent: int = 0
    score: Optional[ValidationScore] = None
    setup_failures: int = 0
    send_timeouts: int = 0
    skipped_nodes: List[str] = field(default_factory=list)
    failures: List[MeasurementFailure] = field(default_factory=list)
    # Precision-hardening state (see docs/adversarial.md): per-edge
    # evidence and confidence labels, edges quarantined by cross-
    # validation (claimed once but excluded from ``edges``), and nodes
    # whose observed behavior was provably nonconforming.
    evidence: Dict[Edge, EdgeEvidence] = field(default_factory=dict)
    edge_confidence: Dict[Edge, str] = field(default_factory=dict)
    quarantined: Set[Edge] = field(default_factory=set)
    suspect_nodes: Set[str] = field(default_factory=set)

    @property
    def duration(self) -> float:
        """Simulated measurement duration in seconds (Table 7's column)."""
        return self.sim_time_end - self.sim_time_start

    @property
    def graph(self) -> nx.Graph:
        """The measured overlay as a networkx graph."""
        g = nx.Graph()
        g.add_nodes_from(self.node_ids)
        for e in self.edges:
            a, b = tuple(e)
            g.add_edge(a, b)
        return g

    def add_edges(self, edges: Iterable[Edge]) -> None:
        self.edges.update(edges)

    def add_failure(
        self, kind: str, node: str = "", iteration: int = -1, detail: str = ""
    ) -> None:
        """Record an adverse event without aborting the campaign."""
        self.failures.append(
            MeasurementFailure(kind=kind, node=node, iteration=iteration, detail=detail)
        )

    def failed_nodes(self) -> List[str]:
        """Nodes that were unreachable at least once, sorted."""
        return sorted({f.node for f in self.failures if f.node})

    def validate_against(self, truth: Iterable[Edge]) -> ValidationScore:
        """Score and cache precision/recall against ground truth."""
        self.score = score_edges(self.edges, truth)
        return self.score

    def degree_histogram(self) -> Dict[int, int]:
        """Node-degree histogram of the measured graph (Figures 6/8/9)."""
        histogram: Dict[int, int] = {}
        for _, degree in self.graph.degree():
            histogram[degree] = histogram.get(degree, 0) + 1
        return dict(sorted(histogram.items()))

    def summary(self) -> str:
        lines = [
            f"nodes measured : {len(self.node_ids)}",
            f"edges detected : {len(self.edges)}",
            f"iterations     : {self.iterations}",
            f"sim duration   : {self.duration:.1f} s",
        ]
        if self.score is not None:
            lines.append(f"validation     : {self.score}")
        if self.failures:
            kinds: Dict[str, int] = {}
            for failure in self.failures:
                kinds[failure.kind] = kinds.get(failure.kind, 0) + 1
            detail = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
            lines.append(f"failures       : {len(self.failures)} ({detail})")
        if self.quarantined:
            lines.append(f"quarantined    : {len(self.quarantined)} edges")
        if self.suspect_nodes:
            lines.append(
                f"suspect nodes  : {', '.join(sorted(self.suspect_nodes))}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class PairOutcome:
    """Per-pair record inside a parallel iteration (for diagnostics)."""

    source: str
    sink: str
    detected: bool
    setup_ok: bool
    tx_a_hash: str = ""
    observed_at: Optional[float] = None
    # Hardened-pipeline fields (defaults match an honest positive).
    rpc_confirmed: bool = True
    extra_observers: Tuple[str, ...] = ()
    # Any pool check behind this outcome came back unknown (sick plane).
    rpc_degraded: bool = False

    @property
    def edge(self) -> Edge:
        return edge(self.source, self.sink)


def union_results(results: Iterable[Set[Edge]]) -> Set[Edge]:
    """Union of repeated measurements (the paper's passive recall fix)."""
    merged: Set[Edge] = set()
    for result in results:
        merged |= result
    return merged
