"""Result containers and precision/recall scoring.

The paper validates TopoShot against ground truth available on locally
controlled nodes (Section 6.1, Appendix B); in the simulator the ground
truth is the network's true link set, so every measurement can be scored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

import networkx as nx

Edge = FrozenSet[str]


def edge(a: str, b: str) -> Edge:
    """Canonical undirected edge key."""
    return frozenset((a, b))


@dataclass(frozen=True)
class ValidationScore:
    """Precision/recall of a measured edge set against ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """1.0 on an empty measurement (no false claims were made)."""
        claimed = self.true_positives + self.false_positives
        return 1.0 if claimed == 0 else self.true_positives / claimed

    @property
    def recall(self) -> float:
        """1.0 when there was nothing to find."""
        actual = self.true_positives + self.false_negatives
        return 1.0 if actual == 0 else self.true_positives / actual

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 0.0 if p + r == 0 else 2 * p * r / (p + r)

    def __str__(self) -> str:
        return (
            f"precision={self.precision:.3f} recall={self.recall:.3f} "
            f"(tp={self.true_positives}, fp={self.false_positives}, "
            f"fn={self.false_negatives})"
        )


def score_edges(measured: Iterable[Edge], truth: Iterable[Edge]) -> ValidationScore:
    """Score measured undirected edges against the true link set."""
    measured_set = set(measured)
    truth_set = set(truth)
    tp = len(measured_set & truth_set)
    return ValidationScore(
        true_positives=tp,
        false_positives=len(measured_set - truth_set),
        false_negatives=len(truth_set - measured_set),
    )


@dataclass
class LinkResult:
    """Outcome of measuring one candidate link, over one or more repeats."""

    a: str
    b: str
    connected: bool
    attempts: int = 1
    positive_attempts: int = 0
    details: List[object] = field(default_factory=list)

    @property
    def edge(self) -> Edge:
        return edge(self.a, self.b)


@dataclass(frozen=True)
class MeasurementFailure:
    """One adverse event the campaign survived instead of aborting on.

    ``kind`` is one of ``"unreachable"`` (a target was down when its
    iteration ran), ``"send_timeout"`` (supernode injections timed out),
    or ``"iteration_error"`` (a whole iteration failed and was skipped).
    """

    kind: str
    node: str = ""
    iteration: int = -1
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "node": self.node,
            "iteration": self.iteration,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "MeasurementFailure":
        return cls(
            kind=str(payload["kind"]),
            node=str(payload.get("node", "")),
            iteration=int(payload.get("iteration", -1)),  # type: ignore[arg-type]
            detail=str(payload.get("detail", "")),
        )


@dataclass
class NetworkMeasurement:
    """A measured topology snapshot plus metadata and optional validation."""

    node_ids: List[str]
    edges: Set[Edge] = field(default_factory=set)
    iterations: int = 0
    sim_time_start: float = 0.0
    sim_time_end: float = 0.0
    transactions_sent: int = 0
    score: Optional[ValidationScore] = None
    setup_failures: int = 0
    send_timeouts: int = 0
    skipped_nodes: List[str] = field(default_factory=list)
    failures: List[MeasurementFailure] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Simulated measurement duration in seconds (Table 7's column)."""
        return self.sim_time_end - self.sim_time_start

    @property
    def graph(self) -> nx.Graph:
        """The measured overlay as a networkx graph."""
        g = nx.Graph()
        g.add_nodes_from(self.node_ids)
        for e in self.edges:
            a, b = tuple(e)
            g.add_edge(a, b)
        return g

    def add_edges(self, edges: Iterable[Edge]) -> None:
        self.edges.update(edges)

    def add_failure(
        self, kind: str, node: str = "", iteration: int = -1, detail: str = ""
    ) -> None:
        """Record an adverse event without aborting the campaign."""
        self.failures.append(
            MeasurementFailure(kind=kind, node=node, iteration=iteration, detail=detail)
        )

    def failed_nodes(self) -> List[str]:
        """Nodes that were unreachable at least once, sorted."""
        return sorted({f.node for f in self.failures if f.node})

    def validate_against(self, truth: Iterable[Edge]) -> ValidationScore:
        """Score and cache precision/recall against ground truth."""
        self.score = score_edges(self.edges, truth)
        return self.score

    def degree_histogram(self) -> Dict[int, int]:
        """Node-degree histogram of the measured graph (Figures 6/8/9)."""
        histogram: Dict[int, int] = {}
        for _, degree in self.graph.degree():
            histogram[degree] = histogram.get(degree, 0) + 1
        return dict(sorted(histogram.items()))

    def summary(self) -> str:
        lines = [
            f"nodes measured : {len(self.node_ids)}",
            f"edges detected : {len(self.edges)}",
            f"iterations     : {self.iterations}",
            f"sim duration   : {self.duration:.1f} s",
        ]
        if self.score is not None:
            lines.append(f"validation     : {self.score}")
        if self.failures:
            kinds: Dict[str, int] = {}
            for failure in self.failures:
                kinds[failure.kind] = kinds.get(failure.kind, 0) + 1
            detail = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
            lines.append(f"failures       : {len(self.failures)} ({detail})")
        return "\n".join(lines)


@dataclass(frozen=True)
class PairOutcome:
    """Per-pair record inside a parallel iteration (for diagnostics)."""

    source: str
    sink: str
    detected: bool
    setup_ok: bool
    tx_a_hash: str = ""
    observed_at: Optional[float] = None

    @property
    def edge(self) -> Edge:
        return edge(self.source, self.sink)


def union_results(results: Iterable[Set[Edge]]) -> Set[Edge]:
    """Union of repeated measurements (the paper's passive recall fix)."""
    merged: Set[Edge] = set()
    for result in results:
        merged |= result
    return merged
