"""TopoShot: the paper's primary contribution.

- :mod:`repro.core.primitive` -- ``measure_one_link`` (Section 5.2).
- :mod:`repro.core.parallel` -- the parallel measurement primitive (5.3.1).
- :mod:`repro.core.schedule` -- the two-round group schedule (5.3.2).
- :mod:`repro.core.preprocess` -- target filtering/calibration (5.2.3, 6.2.1).
- :mod:`repro.core.profiler` -- black-box client profiling (5.1, Table 3).
- :mod:`repro.core.noninterference` -- the V1/V2 extension (6.3, Appendix C).
- :mod:`repro.core.campaign` -- whole-network orchestration (Section 6).
- :mod:`repro.core.cost` -- Ether cost accounting and extrapolation (6.3/6.4).
"""

from repro.core.campaign import TopoShot
from repro.core.config import MeasurementConfig
from repro.core.parallel import ParallelProbeReport, measure_par
from repro.core.primitive import LinkProbeOutcome, ProbeReport, measure_one_link
from repro.core.results import LinkResult, NetworkMeasurement, ValidationScore
from repro.core.schedule import ScheduleIteration, build_schedule

__all__ = [
    "LinkProbeOutcome",
    "LinkResult",
    "MeasurementConfig",
    "NetworkMeasurement",
    "ParallelProbeReport",
    "ProbeReport",
    "ScheduleIteration",
    "TopoShot",
    "ValidationScore",
    "build_schedule",
    "measure_one_link",
    "measure_par",
]
