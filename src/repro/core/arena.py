"""The inference-protocol arena: every method, one network, one scorecard.

TopoShot's headline claim is comparative — replacement-transaction
probing beats prior topology-inference methods on precision and cost
(Sections 4 and 8). The arena substantiates that claim in one run: all
seven protocols — ``toposhot``, ``txprobe``, ``timing``, ``findnode``,
``census``, ``dethna``, ``ethna`` — are executed against the *same*
generated topology, seed, :class:`~repro.sim.faults.FaultPlan`, and
:class:`~repro.eth.behaviors.BehaviorMix`, and scored against the same
ground truth over the same target set.

Fairness and determinism rest on one construction rule: each protocol
gets a **fresh network built from the identical spec** (same
``NetworkSpec``, same seed, same prefill, same fault/behavior draws, a
supernode joined the same way). Protocols therefore cannot contaminate
each other's mempools or observation logs, and every protocol sees the
byte-identical starting state — so two arena runs with the same
:class:`ArenaSpec` produce bit-identical results
(:meth:`ArenaResult.canonical_dict`; wall-clock timings are reported but
excluded from the canonical form).

Scoring is uniform: edge-measuring protocols are scored with
:func:`repro.core.results.score_edges` against the ground-truth edges
*within the target set* — one shared universe, so a protocol cannot
look better by predicting outside the evaluated subset. Protocols that
do not measure active edges report what they do measure (``findnode``:
inactive edges scored against active truth; ``ethna``: degree error;
``census``: node attributes) with null edge metrics.

See ``docs/arena.md`` for the threat/assumption table, CLI walkthrough
and a worked read-through of ``BENCH_arena.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.results import Edge, ValidationScore, score_edges
from repro.errors import MeasurementError
from repro.eth.network import Network
from repro.eth.supernode import Supernode
from repro.io import PathLike, atomic_write_text
from repro.netgen.ethereum import NetworkSpec, generate_network
from repro.obs import NULL, Observability
from repro.sim.faults import FaultPlan

#: Canonical protocol order — arena output always lists protocols this way.
PROTOCOLS: Tuple[str, ...] = (
    "toposhot",
    "txprobe",
    "timing",
    "findnode",
    "census",
    "dethna",
    "ethna",
)

#: What each protocol's primary output is (the "measures" column).
MEASURES: Dict[str, str] = {
    "toposhot": "active_edges",
    "txprobe": "active_edges",
    "timing": "active_edges",
    "findnode": "inactive_edges",
    "census": "node_attributes",
    "dethna": "active_edges",
    "ethna": "degrees",
}

ARENA_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ArenaSpec:
    """Everything that identifies one arena run (and nothing that doesn't).

    The spec is pure data so it serializes into ``BENCH_arena.json`` and
    two runs from equal specs are bit-identical. Fault and Byzantine
    configuration are kept in source form (rates / spec string) rather
    than as live objects for the same reason.
    """

    n_nodes: int = 24
    seed: int = 0
    n_targets: Optional[int] = None  # None: every measurable node
    outbound_dials: Optional[int] = None  # None: NetworkSpec default
    protocols: Tuple[str, ...] = PROTOCOLS
    loss_rate: float = 0.0
    churn_rate: float = 0.0
    crash_rate: float = 0.0
    byzantine_spec: Optional[str] = None  # BehaviorMix.from_spec() string
    byzantine_frac: Optional[float] = None
    toposhot_repeats: int = 1
    toposhot_cross_validate: int = 3  # k=1-of-n re-probes for suspect edges
    txprobe_wait: float = 3.0
    timing_probes: int = 3
    dethna_rounds: int = 12
    ethna_txs: int = 60

    def __post_init__(self) -> None:
        unknown = [p for p in self.protocols if p not in PROTOCOLS]
        if unknown:
            raise ValueError(
                f"unknown protocols {unknown}; choose from {list(PROTOCOLS)}"
            )
        if self.byzantine_spec and self.byzantine_frac is not None:
            raise ValueError(
                "byzantine_spec and byzantine_frac are mutually exclusive"
            )

    @property
    def ordered_protocols(self) -> Tuple[str, ...]:
        """Requested protocols in canonical arena order, deduplicated."""
        requested = set(self.protocols)
        return tuple(p for p in PROTOCOLS if p in requested)

    def fault_plan(self) -> FaultPlan:
        return FaultPlan(
            loss_rate=self.loss_rate,
            churn_rate=self.churn_rate,
            crash_rate=self.crash_rate,
        )

    def behavior_mix(self):
        from repro.eth.behaviors import BehaviorMix

        if self.byzantine_spec:
            return BehaviorMix.from_spec(self.byzantine_spec)
        if self.byzantine_frac is not None:
            return BehaviorMix.uniform(self.byzantine_frac)
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_nodes": self.n_nodes,
            "seed": self.seed,
            "n_targets": self.n_targets,
            "outbound_dials": self.outbound_dials,
            "protocols": list(self.ordered_protocols),
            "loss_rate": self.loss_rate,
            "churn_rate": self.churn_rate,
            "crash_rate": self.crash_rate,
            "byzantine_spec": self.byzantine_spec,
            "byzantine_frac": self.byzantine_frac,
            "toposhot_repeats": self.toposhot_repeats,
            "toposhot_cross_validate": self.toposhot_cross_validate,
            "txprobe_wait": self.txprobe_wait,
            "timing_probes": self.timing_probes,
            "dethna_rounds": self.dethna_rounds,
            "ethna_txs": self.ethna_txs,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ArenaSpec":
        data = dict(payload)
        if "protocols" in data:
            data["protocols"] = tuple(data["protocols"])  # type: ignore[arg-type]
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class ProtocolOutcome:
    """One protocol's scorecard: accuracy, probe cost, and runtime."""

    protocol: str
    measures: str
    score: Optional[ValidationScore] = None
    predicted_edges: Optional[int] = None
    transactions: int = 0
    messages: int = 0
    sim_seconds: float = 0.0
    wall_clock_seconds: float = 0.0
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def precision(self) -> Optional[float]:
        return None if self.score is None else self.score.precision

    @property
    def recall(self) -> Optional[float]:
        return None if self.score is None else self.score.recall

    @property
    def f1(self) -> Optional[float]:
        return None if self.score is None else self.score.f1

    def to_dict(self, include_wall_clock: bool = True) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "protocol": self.protocol,
            "measures": self.measures,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "true_positives": None if self.score is None else self.score.true_positives,
            "false_positives": None if self.score is None else self.score.false_positives,
            "false_negatives": None if self.score is None else self.score.false_negatives,
            "predicted_edges": self.predicted_edges,
            "probe_cost": {
                "transactions": self.transactions,
                "messages": self.messages,
            },
            "sim_seconds": round(self.sim_seconds, 6),
            "extras": dict(sorted(self.extras.items())),
        }
        if include_wall_clock:
            payload["wall_clock_seconds"] = round(self.wall_clock_seconds, 3)
        return payload


@dataclass
class ArenaResult:
    """All protocol outcomes for one arena spec, plus the shared universe."""

    spec: ArenaSpec
    targets: List[str]
    true_edges: int  # ground-truth edges within the target set
    network_edges: int  # ground-truth edges in the whole topology
    outcomes: List[ProtocolOutcome] = field(default_factory=list)

    def outcome(self, protocol: str) -> ProtocolOutcome:
        for outcome in self.outcomes:
            if outcome.protocol == protocol:
                return outcome
        raise KeyError(protocol)

    def to_dict(self, include_wall_clock: bool = True) -> Dict[str, object]:
        return {
            "format_version": ARENA_FORMAT_VERSION,
            "spec": self.spec.to_dict(),
            "universe": {
                "targets": list(self.targets),
                "true_edges": self.true_edges,
                "network_edges": self.network_edges,
            },
            "protocols": {
                outcome.protocol: outcome.to_dict(include_wall_clock)
                for outcome in self.outcomes
            },
        }

    def canonical_dict(self) -> Dict[str, object]:
        """The deterministic view: everything except wall-clock timings.

        Two arena runs from equal specs produce equal canonical dicts
        (the determinism acceptance test); wall-clock readings are host
        noise by definition and live only in the full :meth:`to_dict`.
        """
        return self.to_dict(include_wall_clock=False)

    def summary(self) -> str:
        """Fixed-width scorecard, one protocol per row."""
        header = (
            f"{'protocol':<10} {'measures':<16} {'prec':>6} {'recall':>6} "
            f"{'f1':>6} {'edges':>6} {'txs':>7} {'msgs':>9} {'sim s':>8} {'wall s':>7}"
        )
        lines = [header, "-" * len(header)]

        def fmt(value: Optional[float]) -> str:
            return "-" if value is None else f"{value:.3f}"

        for outcome in self.outcomes:
            edges = "-" if outcome.predicted_edges is None else str(outcome.predicted_edges)
            lines.append(
                f"{outcome.protocol:<10} {outcome.measures:<16} "
                f"{fmt(outcome.precision):>6} {fmt(outcome.recall):>6} "
                f"{fmt(outcome.f1):>6} {edges:>6} {outcome.transactions:>7} "
                f"{outcome.messages:>9} {outcome.sim_seconds:>8.1f} "
                f"{outcome.wall_clock_seconds:>7.2f}"
            )
        lines.append(
            f"universe: {len(self.targets)} targets, {self.true_edges} true edges "
            f"(topology total {self.network_edges})"
        )
        return "\n".join(lines)


def write_arena_json(result: ArenaResult, path: PathLike) -> Path:
    """Write ``BENCH_arena.json`` atomically (sorted keys, trailing newline)."""
    text = json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    return atomic_write_text(path, text)


# ----------------------------------------------------------------------
# Network construction: one fresh, identical world per protocol
# ----------------------------------------------------------------------

def _build_world(spec: ArenaSpec) -> Tuple[Network, Supernode]:
    """Build the shared starting state one protocol will run against.

    Called once per protocol with the same spec: same topology draw, same
    prefill, same fault/behavior installation, same supernode join and
    handshake settle — the whole point of the arena's fairness claim.
    """
    from repro.netgen.workloads import prefill_mempools

    overrides: Dict[str, object] = {}
    if spec.outbound_dials is not None:
        overrides["outbound_dials"] = spec.outbound_dials
    network = generate_network(
        NetworkSpec(n_nodes=spec.n_nodes, seed=spec.seed, **overrides)  # type: ignore[arg-type]
    )
    prefill_mempools(network)
    plan = spec.fault_plan()
    if plan.enabled:
        network.install_faults(plan)
    mix = spec.behavior_mix()
    if mix is not None and mix.enabled:
        network.install_behaviors(mix)
    supernode = Supernode.join(network)
    network.run(1.0)  # let Status handshakes land before anyone measures
    return network, supernode


def _select_targets(network: Network, spec: ArenaSpec) -> List[str]:
    measurable = list(network.measurable_node_ids())
    if spec.n_targets is None:
        return measurable
    if spec.n_targets < 2:
        raise MeasurementError("arena needs at least two targets")
    return measurable[: spec.n_targets]


def _universe_truth(network: Network, targets: Sequence[str]) -> Set[Edge]:
    target_set = set(targets)
    return {
        link for link in network.ground_truth_edges() if set(link) <= target_set
    }


# ----------------------------------------------------------------------
# Protocol runners. Contract: run against (network, supernode, targets),
# return (predicted_edges_or_None, transactions_sent, extras).
# ----------------------------------------------------------------------

def _run_toposhot(network, supernode, targets, spec):
    from repro.core.campaign import TopoShot

    shot = TopoShot(network, supernode)
    shot.config = shot.config.with_repeats(spec.toposhot_repeats)
    if spec.toposhot_cross_validate > 0:
        # On an honest network suspects never arise, so this is
        # behavior-neutral; under a Byzantine mix it is the quarantine
        # step that keeps the precision column honest (adversarial.md).
        shot.config = shot.config.with_cross_validation(
            spec.toposhot_cross_validate
        )
    measurement = shot.measure_network(targets=list(targets), validate=False)
    extras = {
        "iterations": measurement.iterations,
        "skipped_nodes": len(measurement.skipped_nodes),
        "failures": len(measurement.failures),
        "quarantined_edges": len(measurement.quarantined),
    }
    return set(measurement.edges), measurement.transactions_sent, extras


def _run_txprobe(network, supernode, targets, spec):
    from repro.baselines.txprobe import txprobe_survey

    pairs = [
        (targets[i], targets[j])
        for i in range(len(targets))
        for j in range(i + 1, len(targets))
    ]
    survey = txprobe_survey(network, supernode, pairs, wait=spec.txprobe_wait)
    extras = {"pairs_probed": len(pairs)}
    return set(survey.detected), len(pairs), extras


def _run_timing(network, supernode, targets, spec):
    from repro.baselines.timing import timing_inference

    result = timing_inference(
        network,
        supernode,
        probes_per_node=spec.timing_probes,
        targets=list(targets),
    )
    return set(result.predicted), result.probes, {"probes": result.probes}


def _run_findnode(network, supernode, targets, spec):
    from repro.baselines.findnode import crawl_inactive_edges

    crawl = crawl_inactive_edges(network, supernode)
    target_set = set(targets)
    within = {e for e in crawl.inactive_edges if set(e) <= target_set}
    extras = {
        "responses": crawl.responses,
        "inactive_edges_total": len(crawl.inactive_edges),
    }
    return within, 0, extras


def _run_census(network, supernode, targets, spec):
    from repro.baselines.census import measurable_targets, run_census

    census = run_census(network, supernode)
    extras = {
        "network_size": census.network_size,
        "dominant_client": census.dominant_client,
        "rpc_responsive": census.rpc_responsive,
        "relaying": census.relaying,
        "measurable_targets": len(measurable_targets(census)),
    }
    return None, 0, extras


def _run_dethna(network, supernode, targets, spec):
    from repro.baselines.dethna import run_dethna

    report = run_dethna(
        network,
        supernode,
        targets=list(targets),
        rounds=spec.dethna_rounds,
        validate=False,
    )
    extras = {
        "rounds": report.rounds,
        "send_failures": report.send_failures,
    }
    return set(report.predicted), report.marks_sent, extras


def _run_ethna(network, supernode, targets, spec):
    from repro.baselines.ethna import run_ethna

    report = run_ethna(
        network,
        supernode,
        targets=list(targets),
        observation_txs=spec.ethna_txs,
    )
    extras = {
        "observed_txs": report.observed_txs,
        "peers_estimated": len(report.degree_estimates),
        "skipped_low_sample": report.skipped_low_sample,
        "degree_mae": round(report.degree_mae, 4),
        "degree_mape": round(report.degree_mape, 4),
    }
    return None, 0, extras


_RUNNERS: Dict[str, Callable] = {
    "toposhot": _run_toposhot,
    "txprobe": _run_txprobe,
    "timing": _run_timing,
    "findnode": _run_findnode,
    "census": _run_census,
    "dethna": _run_dethna,
    "ethna": _run_ethna,
}


def run_arena(
    spec: ArenaSpec,
    obs: Optional[Observability] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ArenaResult:
    """Run every requested protocol on identical worlds and score them.

    ``progress`` (if given) is called with the protocol name as each one
    starts — the CLI uses it for live output. ``obs`` receives per-
    protocol push instruments (see ``toposhot_arena_*`` in
    :mod:`repro.obs.wiring`).
    """
    obs = obs if obs is not None else NULL
    reference_network, _ = _build_world(spec)
    targets = _select_targets(reference_network, spec)
    truth = _universe_truth(reference_network, targets)
    result = ArenaResult(
        spec=spec,
        targets=list(targets),
        true_edges=len(truth),
        network_edges=len(reference_network.ground_truth_edges()),
    )

    for protocol in spec.ordered_protocols:
        if progress is not None:
            progress(protocol)
        network, supernode = _build_world(spec)
        messages_before = network.messages_sent
        sim_before = network.sim.now
        wall_before = perf_counter()
        predicted, transactions, extras = _RUNNERS[protocol](
            network, supernode, targets, spec
        )
        wall_clock = perf_counter() - wall_before
        outcome = ProtocolOutcome(
            protocol=protocol,
            measures=MEASURES[protocol],
            score=None if predicted is None else score_edges(predicted, truth),
            predicted_edges=None if predicted is None else len(predicted),
            transactions=transactions,
            messages=network.messages_sent - messages_before,
            sim_seconds=network.sim.now - sim_before,
            wall_clock_seconds=wall_clock,
            extras=extras,
        )
        result.outcomes.append(outcome)
        _observe_outcome(obs, outcome)
    return result


def _observe_outcome(obs: Observability, outcome: ProtocolOutcome) -> None:
    """Push one protocol's scorecard into the metrics registry."""
    if not obs.enabled:
        return
    from repro.obs.wiring import (
        ARENA_PREDICTED_EDGES,
        ARENA_PROBE_MESSAGES,
        ARENA_PROBE_TXS,
        ARENA_PROTOCOLS_RUN,
        ARENA_SIM_SECONDS,
        ARENA_WALL_SECONDS,
    )

    labels = {"protocol": outcome.protocol}
    registry = obs.metrics
    registry.counter(
        ARENA_PROTOCOLS_RUN, "Arena protocol executions", labels=labels
    ).inc()
    registry.counter(
        ARENA_PROBE_TXS, "Probe transactions sent per protocol", labels=labels
    ).inc(outcome.transactions)
    registry.counter(
        ARENA_PROBE_MESSAGES,
        "Network messages attributable to each protocol's run",
        labels=labels,
    ).inc(outcome.messages)
    registry.histogram(
        ARENA_SIM_SECONDS, "Simulated seconds per protocol run", labels=labels
    ).observe(outcome.sim_seconds)
    registry.histogram(
        ARENA_WALL_SECONDS, "Wall-clock seconds per protocol run", labels=labels
    ).observe(outcome.wall_clock_seconds)
    if outcome.predicted_edges is not None:
        registry.gauge(
            ARENA_PREDICTED_EDGES,
            "Edges predicted by each edge-measuring protocol",
            labels=labels,
        ).set(outcome.predicted_edges)
