"""Pre-processing of measurement targets (Sections 5.2.3 and 6.2.1).

Before a campaign, TopoShot:

- keeps only clients it can measure (handshake client-version prefix:
  Geth-like clients with a known non-zero R);
- drops *unresponsive* nodes;
- drops nodes that forward **future** transactions (a non-default setting
  that would break the eviction floods' invisibility) — detected by
  sending each target a throwaway future transaction and watching whether
  the target propagates it back (Section 6.2.1's monitor-node method, with
  the supernode itself as the monitor);
- optionally calibrates the per-target flood size ``Z`` against a locally
  controlled node with known ground truth (Section 5.2.3's speculative B'
  technique).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import MeasurementConfig
from repro.core.gas_estimator import estimate_y
from repro.errors import RpcError, RpcUnavailableError
from repro.eth.account import Wallet
from repro.eth.network import Network
from repro.eth.rpc import RpcServer, rpc_faults_active
from repro.eth.supernode import Supernode
from repro.eth.transaction import TransactionFactory

MEASURABLE_CLIENT_PREFIXES: Tuple[str, ...] = ("Geth",)


@dataclass
class PreprocessReport:
    """Which candidates survived pre-processing, and why others did not."""

    accepted: List[str] = field(default_factory=list)
    rejected_client: List[str] = field(default_factory=list)
    rejected_unresponsive: List[str] = field(default_factory=list)
    rejected_future_forwarders: List[str] = field(default_factory=list)
    # Endpoints the resilient RPC client could not get an answer from (or
    # whose health score / circuit breaker flags them): skipped for this
    # campaign rather than measured through a plane that will turn their
    # probes into noise.
    rejected_degraded: List[str] = field(default_factory=list)
    z_overrides: Dict[str, int] = field(default_factory=dict)

    @property
    def rejected(self) -> List[str]:
        return (
            self.rejected_client
            + self.rejected_unresponsive
            + self.rejected_future_forwarders
            + self.rejected_degraded
        )

    def summary(self) -> str:
        return (
            f"accepted={len(self.accepted)} "
            f"non-measurable-client={len(self.rejected_client)} "
            f"unresponsive={len(self.rejected_unresponsive)} "
            f"future-forwarders={len(self.rejected_future_forwarders)} "
            f"degraded-endpoint={len(self.rejected_degraded)}"
        )


def preprocess_targets(
    network: Network,
    supernode: Supernode,
    candidates: Sequence[str],
    config: Optional[MeasurementConfig] = None,
    wallet: Optional[Wallet] = None,
    client_prefixes: Sequence[str] = MEASURABLE_CLIENT_PREFIXES,
    check_future_forwarding: bool = True,
    check_responsiveness: bool = True,
    forwarding_probe_wait: float = 2.0,
) -> PreprocessReport:
    """Filter ``candidates`` down to measurable targets."""
    config = config or MeasurementConfig()
    wallet = wallet or Wallet("preprocess")
    factory = TransactionFactory()
    report = PreprocessReport()

    survivors: List[str] = []
    for node_id in candidates:
        node = network.node(node_id)
        # Handshake client version is public information exchanged in the
        # DevP2P Status message; non-Geth-style clients are skipped.
        version = node.config.client_version
        if not any(version.startswith(prefix) for prefix in client_prefixes):
            report.rejected_client.append(node_id)
            continue
        if check_responsiveness:
            if rpc_faults_active(network):
                # Route the probe through the resilient client so transient
                # plane faults (timeouts, throttling, flaps) get retried
                # instead of condemning a perfectly responsive node.
                client = network.rpc_client()
                try:
                    client.call(node_id, "web3_clientVersion")
                except RpcUnavailableError:
                    report.rejected_unresponsive.append(node_id)
                    continue
                except RpcError:
                    report.rejected_degraded.append(node_id)
                    continue
            else:
                try:
                    RpcServer(node).call("web3_clientVersion")
                except RpcUnavailableError:
                    report.rejected_unresponsive.append(node_id)
                    continue
        survivors.append(node_id)

    # Endpoints whose health score or circuit breaker already flags them
    # (from earlier traffic through the shared resilient client) are skipped
    # up front: measuring through them yields degraded probes, not data.
    if rpc_faults_active(network) and survivors:
        client = network.rpc_client()
        unhealthy = set(client.unhealthy_endpoints())
        if unhealthy:
            report.rejected_degraded.extend(
                nid for nid in survivors if nid in unhealthy
            )
            survivors = [nid for nid in survivors if nid not in unhealthy]

    if check_future_forwarding and survivors:
        forwarders = detect_future_forwarders(
            network, supernode, survivors, config, wallet, forwarding_probe_wait
        )
        report.rejected_future_forwarders.extend(forwarders)
        survivors = [nid for nid in survivors if nid not in forwarders]

    report.accepted = survivors
    return report


def detect_future_forwarders(
    network: Network,
    supernode: Supernode,
    candidates: Sequence[str],
    config: MeasurementConfig,
    wallet: Wallet,
    wait: float = 2.0,
) -> List[str]:
    """Send each candidate a throwaway future transaction and watch whether
    it re-propagates (the Section 6.2.1 filter).

    A node never sends a transaction back to the peer it came from, so the
    measurement node cannot observe the forwarding itself; the paper
    launches "an additional monitor node (to the measurement node) to
    connect to the target node" — we do the same with a throwaway
    supernode, detached again afterwards.
    """
    y = estimate_y(supernode, config)
    factory = TransactionFactory()
    monitor = Supernode.join(
        network,
        node_id=f"monitor-{len(network.nodes)}-{network.sim.now:.3f}",
        targets=candidates,
    )
    probes: Dict[str, str] = {}
    for node_id in candidates:
        probe = factory.future(
            wallet.fresh_account(prefix="fwdprobe"),
            gas_price=config.price_future(y),
            nonce_gap=config.future_nonce_gap,
        )
        probes[node_id] = probe.hash
        supernode.send_transactions(node_id, [probe])
    network.run(wait)
    forwarders = [
        node_id
        for node_id, probe_hash in probes.items()
        if monitor.observed_from(node_id, probe_hash)
    ]
    for node_id in list(monitor.peer_ids):
        network.disconnect(monitor.id, node_id)
    return forwarders


def calibrate_future_count(
    network: Network,
    supernode: Supernode,
    target_id: str,
    local_peer_id: str,
    config: MeasurementConfig,
    z_values: Sequence[int],
    wallet: Optional[Wallet] = None,
) -> Optional[int]:
    """Find the smallest flood size Z that detects the known link between
    ``target_id`` and the locally controlled ``local_peer_id``.

    This is the proactive recall fix of Section 5.2.3: the local node's
    true neighbours are known (``admin_peers``), so a false negative at
    some Z implies the remote target runs a larger-than-default mempool;
    the discovered Z is then used for all measurements involving it.
    Returns None when no candidate Z succeeds.
    """
    from repro.core.primitive import measure_one_link  # local import: cycle

    if not network.are_connected(target_id, local_peer_id):
        raise ValueError(
            "calibration requires a known-true link between the target and "
            "the locally controlled node"
        )
    wallet = wallet or Wallet("calibrate")
    for z in sorted(z_values):
        attempt = measure_one_link(
            network,
            supernode,
            target_id,
            local_peer_id,
            config.with_future_count(z),
            wallet,
        )
        supernode.clear_observations()
        network.forget_known_transactions()
        if attempt.connected:
            return z
    return None
