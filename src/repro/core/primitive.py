"""The serial measurement primitive ``measureOneLink`` (Section 5.2).

Four steps, exactly as Figure 2a:

1. plant ``txC`` (price ``Y``) on node A and wait X seconds for it to flood
   the whole network;
2. flood node B with Z future transactions priced ``(1+R)Y`` (evicting
   ``txC`` there) immediately followed by ``txB`` priced ``(1-R/2)Y``;
3. flood node A the same way, immediately followed by ``txA`` priced
   ``(1+R/2)Y``;
4. conclude A--B is an active link iff the measurement node receives
   ``txA`` *from node B*.

Isolation: txA's bump over txC is R/2 < R, so no other node ever accepts
(or re-propagates) txA; its bump over txB is (1+R/2)/(1-R/2)-1 >= R, so B —
and only B — replaces and forwards it.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.core.config import MeasurementConfig
from repro.core.gas_estimator import estimate_y
from repro.errors import NotConnectedError, SendTimeoutError
from repro.eth.account import Wallet
from repro.eth.network import Network
from repro.eth.rpc import rpc_tx_in_pool
from repro.eth.supernode import Supernode
from repro.eth.transaction import Transaction, TransactionFactory


def _known(value: Optional[bool], default: bool) -> bool:
    """Collapse a tri-state RPC answer: *unknown* takes the default.

    Every pool check below runs through the (possibly faulty) measurement
    plane and may come back ``None``. Defaults are chosen so a broken
    plane can only ever *weaken* a verdict (degrade to suspect/LOW), never
    manufacture a negative — the paper's false-negative discussion, §6.1.
    """
    return default if value is None else value


class LinkProbeOutcome(enum.Enum):
    """Diagnosis of one serial probe."""

    CONNECTED = "connected"
    NOT_CONNECTED = "not_connected"
    SETUP_FAILED_A = "setup_failed_a"  # txA never took hold on node A
    SETUP_FAILED_B = "setup_failed_b"  # txB never took hold on node B
    SETUP_FAILED_SEND = "setup_failed_send"  # an injection never left M


SETUP_FAILURES = (
    LinkProbeOutcome.SETUP_FAILED_A,
    LinkProbeOutcome.SETUP_FAILED_B,
    LinkProbeOutcome.SETUP_FAILED_SEND,
)


class ProbeConfidence(enum.Enum):
    """How much a verdict should be trusted under real-network adversity.

    ``CONNECTED`` is always HIGH: txA's price band makes a false positive
    structurally impossible, no matter the weather. A negative verdict is
    HIGH only when every setup check passed *and* txC demonstrably flooded
    to the sink — otherwise lost packets or a mid-probe crash could have
    masked a real edge, the verdict is LOW, and the link is worth
    re-probing (the paper's Section 6.1 false-negative discussion).
    """

    HIGH = "high"
    LOW = "low"


@dataclass
class ProbeReport:
    """Everything observed while probing one directed pair A -> B."""

    a: str
    b: str
    outcome: LinkProbeOutcome
    y: int
    tx_c_hash: str
    tx_a_hash: str
    tx_b_hash: str
    flood_confirmed: bool
    setup_a_ok: bool
    setup_b_ok: bool
    observed_at: Optional[float] = None
    measurement_senders: List[str] = field(default_factory=list)
    confidence: ProbeConfidence = ProbeConfidence.HIGH
    # Hardened-verdict evidence (meaningful when config.hardened):
    # rpc_confirmed is the Section 6.1 cross-check (txA in the sink's
    # pool); extra_observers are third parties that demonstrated
    # possession of txA — empty on any conforming network — and
    # extra_observed_at is the earliest time any of them did.
    rpc_confirmed: bool = True
    extra_observers: Tuple[str, ...] = ()
    extra_observed_at: Optional[float] = None
    # True when any pool check behind this verdict came back *unknown*
    # (exhausted retries, open breaker on the measurement plane): the
    # verdict stands, but it is degraded — suspect, worth a re-probe.
    rpc_degraded: bool = False

    @property
    def connected(self) -> bool:
        return self.outcome is LinkProbeOutcome.CONNECTED

    @property
    def setup_failed(self) -> bool:
        return self.outcome in SETUP_FAILURES

    @property
    def ambiguous(self) -> bool:
        """A verdict weak enough to warrant an automatic re-probe."""
        return self.confidence is ProbeConfidence.LOW

    @property
    def clean(self) -> bool:
        """A positive with an intact isolation envelope: RPC-confirmed
        over a healthy plane, and nobody but the sink ever showed
        ``txA``."""
        return (
            self.connected
            and self.rpc_confirmed
            and not self.rpc_degraded
            and not self.extra_observers
        )

    @property
    def confirmed_direct(self) -> bool:
        """The cross-validation verdict for one probe.

        A clean positive proves direct adjacency outright. With the
        envelope broken (third parties also showed ``txA``), the timing
        race decides: one-way delays are strictly positive, so a sink
        that received ``txA`` *through* a third party demonstrates
        possession to the supernode only after that party does. A sink
        whose possession arrives no later than every third party's
        therefore cannot sit behind a relay chain. Per-message latency
        noise makes one race fallible both ways; the campaign amplifies
        it k-of-n (see ``MeasurementConfig.cross_validate``).
        """
        if not (self.connected and self.rpc_confirmed):
            return False
        if not self.extra_observers:
            return True
        return (
            self.observed_at is not None
            and self.extra_observed_at is not None
            and self.observed_at <= self.extra_observed_at
        )


def build_future_flood(
    wallet: Wallet,
    factory: TransactionFactory,
    config: MeasurementConfig,
    y: int,
) -> List[Transaction]:
    """Create the Z-transaction eviction flood, spread over ``ceil(Z/U)``
    fresh accounts at price ``(1+R)Y`` (Step 2/3 of the primitive)."""
    price = config.price_future(y)
    accounts = wallet.fresh_accounts(config.flood_accounts, prefix="flood")
    per_account = math.ceil(config.future_count / len(accounts))
    flood: List[Transaction] = []
    for account in accounts:
        for index in range(per_account):
            if len(flood) >= config.future_count:
                break
            flood.append(
                factory.future(
                    account,
                    gas_price=price,
                    nonce_gap=config.future_nonce_gap,
                    index=index,
                )
            )
    return flood


def rebid(factory: TransactionFactory, original: Transaction, price: int) -> Transaction:
    """Same sender and nonce as ``original`` at an explicit price."""
    return Transaction(
        sender=original.sender,
        nonce=original.nonce,
        gas_price=price,
        gas_limit=original.gas_limit,
        to=original.to,
        value=original.value,
    )


def measure_one_link(
    network: Network,
    supernode: Supernode,
    a_id: str,
    b_id: str,
    config: Optional[MeasurementConfig] = None,
    wallet: Optional[Wallet] = None,
) -> ProbeReport:
    """Run one serial ``measureOneLink(A, B, X, Y, Z, R, U)`` probe.

    The call advances the shared simulation by roughly
    ``X + settle + propagation`` seconds and leaves flood transactions in
    the targets' pools (as the real tool does; they are future transactions
    and cost nothing, Section 5.2.2).
    """
    if a_id == b_id:
        raise ValueError("cannot measure a node against itself")
    if a_id in network.supernode_ids or b_id in network.supernode_ids:
        raise ValueError("measurement infrastructure cannot be a target")
    config = config or MeasurementConfig()
    wallet = wallet or Wallet(f"toposhot-{network.sim.now:.3f}")
    factory = TransactionFactory()

    y = estimate_y(supernode, config)
    senders: List[str] = []

    def send_failed(tx_c_hash: str, tx_a_hash: str = "", tx_b_hash: str = "",
                    flood_confirmed: bool = False) -> ProbeReport:
        # The injection itself died (timeout, churned supernode link): wait
        # out the timeout budget and fail the setup — never the link.
        network.run(config.send_timeout)
        return ProbeReport(
            a=a_id,
            b=b_id,
            outcome=LinkProbeOutcome.SETUP_FAILED_SEND,
            y=y,
            tx_c_hash=tx_c_hash,
            tx_a_hash=tx_a_hash,
            tx_b_hash=tx_b_hash,
            flood_confirmed=flood_confirmed,
            setup_a_ok=False,
            setup_b_ok=False,
            measurement_senders=senders,
            confidence=ProbeConfidence.LOW,
        )

    # Step 1: plant txC on A; it floods to everyone, including B.
    seed_account = wallet.fresh_account(prefix="seed")
    senders.append(seed_account.address)
    tx_c = factory.transfer(seed_account, gas_price=config.price_c(y))
    if network.invariants is not None:
        # Arm the TopoShot isolation invariant: this txC may only ever be
        # replaced on the probed pair. The guard stays registered (the
        # property must hold for the rest of the run, not just the probe).
        network.invariants.guard_isolation(tx_c.hash, frozenset((a_id, b_id)))
    try:
        supernode.send_transactions(a_id, [tx_c])
    except (SendTimeoutError, NotConnectedError):
        return send_failed(tx_c.hash)
    network.run(config.flood_wait)
    flood_confirmed = supernode.observed_from(b_id, tx_c.hash)

    # Step 2: evict txC on B and slot txB in its place.
    flood_b = build_future_flood(wallet, factory, config, y)
    senders.extend({tx.sender for tx in flood_b})
    tx_b = rebid(factory, tx_c, config.price_b(y))
    try:
        supernode.send_transactions(b_id, [*flood_b, tx_b])
    except (SendTimeoutError, NotConnectedError):
        return send_failed(tx_c.hash, tx_b_hash=tx_b.hash,
                           flood_confirmed=flood_confirmed)
    network.run(config.settle_wait)

    # Step 3: evict txC on A and slot txA in its place. The paper re-uses
    # the same future set {txO1..txOZ} for both targets.
    tx_a = rebid(factory, tx_c, config.price_a(y))
    try:
        supernode.send_transactions(a_id, [*flood_b, tx_a])
    except (SendTimeoutError, NotConnectedError):
        return send_failed(tx_c.hash, tx_a_hash=tx_a.hash, tx_b_hash=tx_b.hash,
                           flood_confirmed=flood_confirmed)
    network.run(config.propagation_wait)

    # Step 4: did B demonstrably possess txA? Setup diagnostics use the
    # eth_getTransactionByHash validation of Section 6.1 (a node never
    # propagates a transaction back to the peer it came from, so M cannot
    # verify its own injections through gossip).
    a_has_a = rpc_tx_in_pool(network, a_id, tx_a.hash)
    b_has_b = rpc_tx_in_pool(network, b_id, tx_b.hash)
    # Short-circuit like the seed's ``or``: only consult txA on B when txB
    # is demonstrably absent.
    b_has_a = b_has_b if b_has_b else rpc_tx_in_pool(network, b_id, tx_a.hash)
    rpc_degraded = a_has_a is None or b_has_b is None or b_has_a is None
    # Unknown setup answers default to "ok": a sick measurement plane must
    # not convert a live probe into a setup failure.
    setup_a_ok = _known(a_has_a, True)
    setup_b_ok = _known(b_has_b, True) if b_has_b is not False else _known(b_has_a, True)
    observed = supernode.observed_from(b_id, tx_a.hash)
    if config.hardened:
        # Byzantine-aware verdict: possession claimed via gossip must be
        # backed by the RPC cross-check (a spoofing relay can forward txA
        # without ever pooling it), and third-party observers of txA are
        # recorded — on a conforming network the price band keeps that
        # set empty, so any entry marks a broken isolation envelope.
        rpc_check = rpc_tx_in_pool(network, b_id, tx_a.hash)
        if rpc_check is None:
            rpc_degraded = True
        # An unconfirmable cross-check keeps the gossip verdict (degraded,
        # never a manufactured negative).
        rpc_confirmed = _known(rpc_check, True)
        extra_observers = tuple(
            sorted(supernode.observers_of(tx_a.hash) - {a_id, b_id})
        )
        extra_times = [
            t
            for t in (
                supernode.first_observation_time(x, tx_a.hash)
                for x in extra_observers
            )
            if t is not None
        ]
        extra_observed_at = min(extra_times) if extra_times else None
        detected = observed and rpc_confirmed
    else:
        rpc_confirmed = True
        extra_observers = ()
        extra_observed_at = None
        detected = observed

    if detected:
        outcome = LinkProbeOutcome.CONNECTED
    elif not setup_a_ok:
        outcome = LinkProbeOutcome.SETUP_FAILED_A
    elif not setup_b_ok:
        outcome = LinkProbeOutcome.SETUP_FAILED_B
    else:
        outcome = LinkProbeOutcome.NOT_CONNECTED

    # On a *conforming* network a positive is always trustworthy (the
    # price band forbids false positives); against Byzantine relays the
    # hardened verdict above adds the RPC cross-check, and the evidence
    # fields let the campaign quarantine what remains. A negative is only
    # trustworthy when the whole setup demonstrably worked end to end.
    if outcome is LinkProbeOutcome.CONNECTED:
        confidence = ProbeConfidence.HIGH
    elif (
        outcome is LinkProbeOutcome.NOT_CONNECTED
        and flood_confirmed
        and not rpc_degraded
    ):
        # A negative reached through an unanswerable plane is never HIGH:
        # it gets the ambiguous/re-probe treatment, not a false negative.
        confidence = ProbeConfidence.HIGH
    else:
        confidence = ProbeConfidence.LOW

    return ProbeReport(
        a=a_id,
        b=b_id,
        outcome=outcome,
        y=y,
        tx_c_hash=tx_c.hash,
        tx_a_hash=tx_a.hash,
        tx_b_hash=tx_b.hash,
        flood_confirmed=flood_confirmed,
        setup_a_ok=setup_a_ok,
        setup_b_ok=setup_b_ok,
        observed_at=supernode.first_observation_time(b_id, tx_a.hash),
        measurement_senders=senders,
        confidence=confidence,
        rpc_confirmed=rpc_confirmed,
        extra_observers=extra_observers,
        extra_observed_at=extra_observed_at,
        rpc_degraded=rpc_degraded,
    )


def measure_link_with_repeats(
    network: Network,
    supernode: Supernode,
    a_id: str,
    b_id: str,
    config: Optional[MeasurementConfig] = None,
    wallet: Optional[Wallet] = None,
    refresh: Optional[Callable[[], None]] = None,
) -> List[ProbeReport]:
    """Run the primitive ``config.repeats`` times (Section 6.1 runs each
    pair three times and takes the union of positives), clearing transient
    observation state — and running ``refresh`` (pool churn) — between
    runs.

    With ``config.max_retries > 0`` the loop additionally retries setup
    failures (crashed target, lost injection, send timeout) after an
    exponentially growing backoff wait, and re-probes ambiguous
    low-confidence negatives immediately. Retries come out of a separate
    budget and do not consume repeats, so the union semantics of the
    paper's validation are unchanged.
    """
    config = config or MeasurementConfig()
    reports: List[ProbeReport] = []
    repeats_left = config.repeats
    retries_left = config.max_retries
    backoff = config.retry_backoff
    while repeats_left > 0:
        report = measure_one_link(network, supernode, a_id, b_id, config, wallet)
        reports.append(report)
        if report.connected:
            break  # union semantics: one positive settles the question
        if retries_left > 0 and report.setup_failed:
            # The probe never ran end to end; back off (give a crashed
            # target time to restart, a churned link time to return) and
            # try again without burning a repeat.
            retries_left -= 1
            network.run(backoff)
            backoff *= config.retry_backoff_factor
        elif retries_left > 0 and report.ambiguous:
            # The probe ran but its negative verdict is weak (txC never
            # confirmed on B): re-probe immediately.
            retries_left -= 1
        else:
            repeats_left -= 1
        supernode.clear_observations()
        network.forget_known_transactions()
        if refresh is not None:
            refresh()
    return reports
