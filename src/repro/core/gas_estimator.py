"""Estimating the measurement gas price ``Y`` (Section 5.2.1).

"To estimate a proper Gas price in the presence of current transactions, we
rank all pending transactions in the mempool of Node M by their Gas prices,
and use the median Gas price for txC. [...] We apply the estimation method
before every measurement study and obtain Y dynamically."
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import MeasurementConfig
from repro.eth.node import Node


def estimate_y(measurement_node: Node, config: MeasurementConfig) -> int:
    """Resolve ``Y`` for a run.

    Order of precedence: an explicit ``config.gas_price_y``; the median
    pending gas price observed in the measurement node's own mempool; and
    finally ``config.default_gas_price_y`` on an empty pool (the
    "underwhelmed testnet" situation of Section 6.2.1, where background
    transactions must be injected before measuring).

    Under a live fee market (``Network.install_fee_market``) the estimate
    is clamped up so that even the cheapest probe ``txB = (1 - R/2) * Y``
    clears the current admission floor — an explicit ``gas_price_y`` is
    respected as-is (the caller pinned it deliberately).
    """
    if config.gas_price_y is not None:
        return config.gas_price_y
    median = measurement_node.mempool.median_pending_price()
    if median is not None and median > 0:
        y = median
    else:
        y = config.default_gas_price_y
    return clamp_y_to_fee_floor(measurement_node, config, y)


def clamp_y_to_fee_floor(
    node: Node, config: MeasurementConfig, y: int
) -> int:
    """Raise ``y`` until txB clears the live fee-market floor, if any.

    No-op when the node's network has no market installed (the seed
    behavior, which keeps golden fingerprints untouched).
    """
    network = getattr(node, "network", None)
    market = getattr(network, "fee_market", None)
    if market is None:
        return y
    from repro.eth.fee_market import min_measurement_y

    floor = market.floor_for(node.sim.now)
    return max(y, min_measurement_y(floor, config.replace_bump))


def mempool_occupancy(node: Node) -> float:
    """Fraction of the node's pool currently occupied.

    TopoShot requires full mempools on the measured nodes ("this condition
    holds quite commonly in Ethereum mainnet ... 99% of the time"); callers
    use this to decide whether background transactions are needed first.
    """
    capacity = node.config.policy.capacity
    if capacity <= 0:
        return 0.0
    return min(1.0, len(node.mempool) / capacity)


def needs_background_workload(node: Node, threshold: float = 0.9) -> bool:
    """True when the pool is too empty for reliable measurement (§6.2.1)."""
    return mempool_occupancy(node) < threshold


def pending_rank_of_price(node: Node, price: int) -> Optional[int]:
    """How many pending transactions bid strictly below ``price``.

    This is the number of evictions needed before a transaction priced at
    ``price`` becomes the eviction victim — the quantity that links Z to
    recall in Figure 4a / Figure 7.
    """
    prices = node.mempool.pending_prices()
    if not prices:
        return None
    return sum(1 for p in prices if p < price)
