"""The parallel measurement schedule (Section 5.3.2).

Nodes are partitioned into groups of ``K``. Round one runs one iteration
per group, measuring the edges from that group to every *later* node (each
unordered pair is scheduled exactly once). Round two measures intra-group
edges by recursive halving: every group is split in half, the cross-half
pairs are measured in one iteration across all groups simultaneously, and
the halves recurse — ``ceil(log2 K)`` further iterations.

Total: ``ceil(N/K) + ceil(log2 K)`` iterations, matching the paper's
``N/K + log K`` complexity (127 iterations for Ropsten at N=500, K=4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from repro.errors import MeasurementError


@dataclass(frozen=True)
class ScheduleIteration:
    """One ``measurePar`` call: disjoint source/sink sets and the edges
    (source, sink) to probe."""

    round_index: int
    sources: Tuple[str, ...]
    sinks: Tuple[str, ...]
    edges: Tuple[Tuple[str, str], ...]

    def __post_init__(self) -> None:
        overlap = set(self.sources) & set(self.sinks)
        if overlap:
            raise MeasurementError(
                f"sources and sinks overlap: {sorted(overlap)[:3]}..."
            )

    @property
    def edge_count(self) -> int:
        return len(self.edges)


def _cross_edges(
    sources: Sequence[str], sinks: Sequence[str]
) -> Tuple[Tuple[str, str], ...]:
    return tuple((a, b) for a in sources for b in sinks)


def build_schedule(node_ids: Sequence[str], group_size: int) -> List[ScheduleIteration]:
    """Build the full two-round schedule covering every unordered pair once.

    Raises :class:`MeasurementError` on duplicate node ids or a non-positive
    group size.
    """
    ids = list(node_ids)
    if len(set(ids)) != len(ids):
        raise MeasurementError("duplicate node ids in schedule input")
    if group_size < 1:
        raise MeasurementError("group size K must be >= 1")
    if len(ids) < 2:
        return []

    groups = [ids[i : i + group_size] for i in range(0, len(ids), group_size)]
    iterations: List[ScheduleIteration] = []

    # Round 1: group i versus everything after it.
    consumed = 0
    for group in groups:
        consumed += len(group)
        rest = ids[consumed:]
        if not rest:
            break
        iterations.append(
            ScheduleIteration(
                round_index=1,
                sources=tuple(group),
                sinks=tuple(rest),
                edges=_cross_edges(group, rest),
            )
        )

    # Round 2: recursive halving inside every group, all groups at once.
    active = [g for g in groups if len(g) >= 2]
    while active:
        sources: List[str] = []
        sinks: List[str] = []
        edges: List[Tuple[str, str]] = []
        next_active: List[List[str]] = []
        for group in active:
            half = len(group) // 2
            first, second = group[:half], group[half:]
            sources.extend(first)
            sinks.extend(second)
            edges.extend(_cross_edges(first, second))
            next_active.extend(part for part in (first, second) if len(part) >= 2)
        iterations.append(
            ScheduleIteration(
                round_index=2,
                sources=tuple(sources),
                sinks=tuple(sinks),
                edges=tuple(edges),
            )
        )
        active = next_active

    return iterations


def expected_iteration_count(n_nodes: int, group_size: int) -> int:
    """The paper's ``N/K + log K`` estimate (both terms rounded up)."""
    if n_nodes < 2:
        return 0
    first = math.ceil(n_nodes / group_size)
    second = math.ceil(math.log2(group_size)) if group_size > 1 else 0
    return first + second


def verify_schedule_coverage(
    node_ids: Sequence[str], iterations: Sequence[ScheduleIteration]
) -> None:
    """Assert every unordered pair is scheduled exactly once (test helper)."""
    seen: Set[frozenset] = set()
    for iteration in iterations:
        for a, b in iteration.edges:
            key = frozenset((a, b))
            if key in seen:
                raise MeasurementError(f"pair {sorted(key)} scheduled twice")
            seen.add(key)
    ids = list(node_ids)
    expected = {
        frozenset((ids[i], ids[j]))
        for i in range(len(ids))
        for j in range(i + 1, len(ids))
    }
    missing = expected - seen
    if missing:
        raise MeasurementError(
            f"{len(missing)} pairs never scheduled, e.g. {sorted(next(iter(missing)))}"
        )
    extra = seen - expected
    if extra:
        raise MeasurementError(f"{len(extra)} unexpected pairs scheduled")
