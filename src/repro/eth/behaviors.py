"""Byzantine per-node misbehavior policies.

The paper's live campaigns (Sections 6-7) ran against peers that do not
follow the reference client's transaction-propagation contract: the R=0
replacement flaw ``attacks/deter.py`` reports, censoring or lazy relays,
and stale clients running pre-1.9.11 policy tables. TxProbe documents how
such "invisible" peers corrupt topology inference, and DEthna claims
robustness against exactly this noise. This module makes those peers
reproducible: a :class:`BehaviorMix` assigns one misbehavior *kind* to a
seed-determined subset of nodes, so ``(seed, mix)`` fully determines a
run, composing with :class:`~repro.sim.faults.FaultPlan` (network
weather) and with ``capture_state``/``restore_state`` snapshots.

Behavior catalog (one kind per node):

``censor``
    Admits transactions normally but never relays the ones matching a
    deterministic hash predicate — the selective-censorship relay that
    turns into false *negatives* downstream.
``lazy_relay``
    Announces everything it admits but never serves transaction bodies
    (drops ``GetPooledTransactions``), burning its peers' announcement
    hold windows — TxProbe's "invisible peer".
``spoof_relay``
    Forwards every transaction it receives, including ones its own pool
    rejected (underpriced replacements, future floods). This is the
    precision killer: it re-propagates ``txA`` past the price band and
    strips ``txC`` eviction shields off honest neighbours.
``nonconforming_replacer``
    Runs with R=0 (the ``attacks/deter.py`` flaw): any equal-or-better
    price replaces, so ``txA`` replaces ``txC`` on a node that was never
    probed — breaking TopoShot's isolation invariant.
``duplicate_spammer``
    Ignores known-transaction suppression and re-pushes bodies its peers
    already have, wasting bandwidth and tripping the duplicate-push
    invariant.
``stale_client``
    An old policy table: pushes to *all* peers (pre-Geth-1.9.11) and
    forwards future transactions (the misbehavior Section 6.2.1's
    pre-processing filters out).

Installation patches node *instances* only — dispatch-table entries,
the ``broadcast_transaction`` attribute, the mempool policy — so the
hot paths of uninstalled nodes are untouched, and
:meth:`BehaviorSet.uninstall_all` (via
:meth:`repro.eth.network.Network.clear_behaviors`) restores the
originals exactly.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import BehaviorPlanError
from repro.eth.mempool import Mempool
from repro.eth.messages import GetPooledTransactions, Message, PooledTransactions, Transactions
from repro.eth.node import _GEN_BITS, _GEN_MASK, KnownTxCache, Node
from repro.eth.policies import MempoolPolicy
from repro.eth.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.eth.network import Network

#: Assignment order — fixed, so a mix draws the same nodes for any seed.
BEHAVIOR_KINDS: Tuple[str, ...] = (
    "censor",
    "lazy_relay",
    "spoof_relay",
    "nonconforming_replacer",
    "duplicate_spammer",
    "stale_client",
)

#: Cap on retained per-action event records (counters stay exact).
MAX_BEHAVIOR_EVENTS = 2000

#: FIFO bound for per-node runtime caches (spoofed/censored hashes).
_RUNTIME_CACHE_LIMIT = 32768


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise BehaviorPlanError(f"{name} must be within [0, 1], got {value!r}")


@dataclass(frozen=True)
class BehaviorMix:
    """Per-kind population fractions of Byzantine nodes.

    Fractions are of the network's *eligible* nodes (supernodes are never
    Byzantine) and must sum to <= 1; the remainder stays honest. Which
    node draws which kind comes from the simulator's ``"behaviors"``
    named RNG stream, so the assignment is a pure function of
    ``(seed, mix)``.
    """

    censor: float = 0.0
    lazy_relay: float = 0.0
    spoof_relay: float = 0.0
    nonconforming_replacer: float = 0.0
    duplicate_spammer: float = 0.0
    stale_client: float = 0.0
    # Knobs shared by the installed behaviors.
    censor_selectivity: float = 0.5  # fraction of tx hashes a censor drops
    spam_rate: float = 0.25  # per-received-tx re-push probability
    spam_fanout: int = 2  # peers per duplicate re-push

    def __post_init__(self) -> None:
        for kind in BEHAVIOR_KINDS:
            _check_fraction(kind, getattr(self, kind))
        _check_fraction("censor_selectivity", self.censor_selectivity)
        _check_fraction("spam_rate", self.spam_rate)
        if self.spam_fanout < 1:
            raise BehaviorPlanError(
                f"spam_fanout must be >= 1, got {self.spam_fanout!r}"
            )
        total = sum(getattr(self, kind) for kind in BEHAVIOR_KINDS)
        if total > 1.0 + 1e-9:
            raise BehaviorPlanError(
                f"behavior fractions sum to {total:.3f} > 1"
            )

    @property
    def enabled(self) -> bool:
        return any(getattr(self, kind) > 0.0 for kind in BEHAVIOR_KINDS)

    @property
    def total_fraction(self) -> float:
        return sum(getattr(self, kind) for kind in BEHAVIOR_KINDS)

    @classmethod
    def uniform(cls, fraction: float, **knobs: object) -> "BehaviorMix":
        """Spread ``fraction`` of the population evenly over all kinds."""
        _check_fraction("fraction", fraction)
        share = fraction / len(BEHAVIOR_KINDS)
        return cls(**{kind: share for kind in BEHAVIOR_KINDS}, **knobs)  # type: ignore[arg-type]

    @classmethod
    def from_spec(cls, spec: str) -> "BehaviorMix":
        """Parse ``"kind:frac,kind:frac"`` (the CLI's ``--byzantine-mix``)."""
        values: Dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            kind, sep, raw = part.partition(":")
            kind = kind.strip()
            if not sep or kind not in BEHAVIOR_KINDS:
                raise BehaviorPlanError(
                    f"bad mix entry {part!r}; expected one of "
                    f"{', '.join(BEHAVIOR_KINDS)} as 'kind:fraction'"
                )
            try:
                values[kind] = float(raw)
            except ValueError as exc:
                raise BehaviorPlanError(
                    f"bad fraction in mix entry {part!r}"
                ) from exc
        if not values:
            raise BehaviorPlanError(f"empty behavior mix spec: {spec!r}")
        return cls(**values)  # type: ignore[arg-type]

    def scaled(self, factor: float) -> "BehaviorMix":
        """Same relative kind weights at ``factor`` times the fractions."""
        if factor < 0:
            raise BehaviorPlanError(f"scale factor must be >= 0, got {factor!r}")
        changes = {
            kind: getattr(self, kind) * factor for kind in BEHAVIOR_KINDS
        }
        return replace(self, **changes)

    def describe(self) -> str:
        parts = [
            f"{kind}={getattr(self, kind):.3f}"
            for kind in BEHAVIOR_KINDS
            if getattr(self, kind) > 0.0
        ]
        return ", ".join(parts) if parts else "all-honest"


@dataclass(frozen=True)
class BehaviorEvent:
    """One recorded Byzantine action (bounded; counters stay exact)."""

    time: float
    kind: str
    node: str
    detail: str


def _censored(tx_hash: str, selectivity: float) -> bool:
    """Deterministic hash predicate: same tx censored on every censor."""
    return (zlib.crc32(tx_hash.encode("ascii")) % 10000) < selectivity * 10000


class BehaviorSet:
    """Runtime registry of installed behaviors on one network.

    Stored at ``network.behaviors`` by
    :meth:`repro.eth.network.Network.install_behaviors`. Holds the
    node->kind assignment, the nodes' original policies (the invariant
    checker's conformance reference), exact per-kind action counters and
    a bounded event trace, plus the per-node runtime caches that
    participate in network snapshots.
    """

    def __init__(self, network: "Network", mix: BehaviorMix) -> None:
        self.network = network
        self.mix = mix
        self.assignments: Dict[str, str] = {}
        self.original_policies: Dict[str, MempoolPolicy] = {}
        self.counts: Dict[str, int] = {}
        self.events: List[BehaviorEvent] = []
        self.total_actions = 0
        # kind -> node -> bounded cache of already-acted-on tx hashes.
        self._runtime_caches: Dict[str, KnownTxCache] = {}
        self._saved: Dict[str, Dict[str, object]] = {}
        self._rng = network.sim.rng.stream("behaviors-runtime")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def kind_of(self, node_id: str) -> Optional[str]:
        return self.assignments.get(node_id)

    def conforming_policy(self, node_id: str) -> Optional[MempoolPolicy]:
        """The policy this node *claims* to run (pre-install original)."""
        return self.original_policies.get(node_id)

    def nodes_of_kind(self, kind: str) -> List[str]:
        return sorted(n for n, k in self.assignments.items() if k == kind)

    def signature(self) -> Tuple[Tuple[str, str], ...]:
        """Stable identity of the installed assignment, for snapshots."""
        return tuple(sorted(self.assignments.items()))

    def kind_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for kind in self.assignments.values():
            out[kind] = out.get(kind, 0) + 1
        return out

    def _note(self, kind: str, node_id: str, detail: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.total_actions += 1
        if len(self.events) < MAX_BEHAVIOR_EVENTS:
            self.events.append(
                BehaviorEvent(self.network.sim.now, kind, node_id, detail)
            )

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install_on(self, node: Node, kind: str) -> None:
        if kind not in BEHAVIOR_KINDS:
            raise BehaviorPlanError(f"unknown behavior kind: {kind!r}")
        if node.id in self.assignments:
            raise BehaviorPlanError(
                f"node {node.id!r} already runs {self.assignments[node.id]!r}"
            )
        if node.id in self.network.supernode_ids:
            raise BehaviorPlanError(
                f"refusing to install {kind!r} on supernode {node.id!r}"
            )
        saved: Dict[str, object] = {
            "dispatch": dict(node._dispatch),
            "config": node.config,
            "policy": node.mempool.policy,
            "forwards_future": node._forwards_future,
            "broadcast": node.__dict__.get("broadcast_transaction"),
        }
        installer = getattr(self, f"_install_{kind}")
        installer(node)
        self.assignments[node.id] = kind
        self.original_policies[node.id] = saved["policy"]  # type: ignore[assignment]
        self._saved[node.id] = saved
        node.behavior = kind

    def uninstall_all(self) -> None:
        """Restore every patched node to its pre-install shape."""
        for node_id, saved in self._saved.items():
            node = self.network.node(node_id)
            node._dispatch = saved["dispatch"]  # type: ignore[assignment]
            node.config = saved["config"]  # type: ignore[assignment]
            node._forwards_future = saved["forwards_future"]  # type: ignore[assignment]
            node.mempool.set_policy(saved["policy"])  # type: ignore[arg-type]
            if saved["broadcast"] is None:
                node.__dict__.pop("broadcast_transaction", None)
            else:  # pragma: no cover - nested wrap, not produced here
                node.broadcast_transaction = saved["broadcast"]  # type: ignore[assignment]
            node.behavior = None
        self.assignments.clear()
        self.original_policies.clear()
        self._saved.clear()
        self._runtime_caches.clear()

    # -- censor --------------------------------------------------------
    def _install_censor(self, node: Node) -> None:
        original = node.broadcast_transaction
        selectivity = self.mix.censor_selectivity
        note = self._note
        node_id = node.id

        def censoring_broadcast(tx: Transaction) -> None:
            if _censored(tx.hash, selectivity):
                note("censor", node_id, tx.hash)
                return
            original(tx)

        node.broadcast_transaction = censoring_broadcast  # type: ignore[method-assign]

    # -- lazy relay ----------------------------------------------------
    def _install_lazy_relay(self, node: Node) -> None:
        note = self._note
        node_id = node.id

        def lazy_broadcast(tx: Transaction) -> None:
            # Announce-only variant of Node.broadcast_transaction (same
            # generation-stamped mask scan): every unaware peer gets the
            # hash, nobody gets a body.
            tx_hash = tx.hash
            known = node._known
            gen = node._known_gen
            all_bits = node._all_bits
            value = known.get(tx_hash)
            if value is not None and (value & _GEN_MASK) == gen:
                mask = value >> _GEN_BITS
                if mask & all_bits == all_bits:
                    return
            else:
                value = None
                mask = 0
            unaware = [item for item in node._peer_list if not mask & item[1]]
            if not unaware:
                return
            if value is None:
                known[tx_hash] = (all_bits << _GEN_BITS) | gen
                limit = node._known_tx_limit
                if limit is not None and len(known) > limit:
                    node._prune_known()
            else:
                known[tx_hash] = value | (all_bits << _GEN_BITS)
            announce_queue = node._announce_queue
            for peer_id, _bit in unaware:
                bucket = announce_queue.get(peer_id)
                if bucket is None:
                    announce_queue[peer_id] = [tx_hash]
                else:
                    bucket.append(tx_hash)
            if not node._flush_scheduled:
                node._schedule_flush()

        def drop_tx_request(from_id: str, msg: Message) -> None:
            note("lazy_relay", node_id, f"dropped request from {from_id}")

        node.broadcast_transaction = lazy_broadcast  # type: ignore[method-assign]
        node._dispatch[GetPooledTransactions] = drop_tx_request

    # -- spoofing relay ------------------------------------------------
    def _install_spoof_relay(self, node: Node) -> None:
        original = node._dispatch[Transactions]
        note = self._note
        node_id = node.id
        spoofed = self._runtime_caches.setdefault(
            f"spoof:{node_id}", KnownTxCache()
        )
        # Bounded against the node's own known-tx budget: a spoof cache
        # larger than what the node itself is allowed to remember is pure
        # unpruned growth on long adversarial runs.
        cache_limit = _RUNTIME_CACHE_LIMIT
        node_limit = node._known_tx_limit
        if node_limit is not None and node_limit < cache_limit:
            cache_limit = node_limit

        def spoofing_handle_txs(from_id: str, msg: Message) -> None:
            original(from_id, msg)
            pool_txs = node.mempool._by_hash
            for tx in msg.txs:
                tx_hash = tx.hash
                if tx_hash in pool_txs or tx_hash in spoofed:
                    continue
                # Forward a body the pool just rejected: the price band /
                # future filter no longer protects downstream peers.
                spoofed[tx_hash] = None
                if len(spoofed) > cache_limit:
                    spoofed.prune(cache_limit)
                note("spoof_relay", node_id, tx_hash)
                node.broadcast_transaction(tx)

        node._dispatch[Transactions] = spoofing_handle_txs
        node._dispatch[PooledTransactions] = spoofing_handle_txs

    # -- nonconforming replacer ----------------------------------------
    def _install_nonconforming_replacer(self, node: Node) -> None:
        # The attacks/deter.py flaw: R=0, so an equal price replaces.
        flawed = node.mempool.policy.with_bump(0.0)
        node.mempool.set_policy(flawed)
        node.config = replace(node.config, policy=flawed)
        self._note("nonconforming_replacer", node.id, "policy R=0 installed")

    # -- duplicate spammer ---------------------------------------------
    def _install_duplicate_spammer(self, node: Node) -> None:
        original = node._dispatch[Transactions]
        note = self._note
        node_id = node.id
        rng = self._rng
        rate = self.mix.spam_rate
        fanout = self.mix.spam_fanout

        def spamming_handle_txs(from_id: str, msg: Message) -> None:
            original(from_id, msg)
            network = node.network
            if network is None:  # pragma: no cover - defensive
                return
            pool_txs = node.mempool._by_hash
            for tx in msg.txs:
                if tx.hash not in pool_txs or rng.random() >= rate:
                    continue
                # Re-push ignoring per-peer known-tx suppression.
                peers = sorted(node.peers)
                targets = rng.sample(peers, min(fanout, len(peers)))
                for peer_id in targets:
                    network.send(node_id, peer_id, Transactions(txs=(tx,)))
                note("duplicate_spammer", node_id, tx.hash)

        node._dispatch[Transactions] = spamming_handle_txs
        node._dispatch[PooledTransactions] = spamming_handle_txs

    # -- stale client --------------------------------------------------
    def _install_stale_client(self, node: Node) -> None:
        # Pre-1.9.11 policy table: push everything to everyone and relay
        # future transactions (the Section 6.2.1 misbehavior).
        node.config = replace(
            node.config, push_to_all=True, forwards_future=True
        )
        node._forwards_future = True
        self._note("stale_client", node.id, "pre-1.9.11 policy table")

    def reset_runtime_caches(self) -> None:
        """Wipe per-behavior runtime caches (between measurement iterations).

        ``Network.forget_known_transactions`` calls this in lockstep with
        the nodes' own known-tx wipe: the cache *objects* are shared with
        the installed closures, so they are cleared in place, never
        replaced.
        """
        for cache in self._runtime_caches.values():
            cache.clear()

    # ------------------------------------------------------------------
    # Snapshot participation (see Network.snapshot/restore)
    # ------------------------------------------------------------------
    def capture_state(self) -> Dict[str, object]:
        return {
            "signature": self.signature(),
            "caches": {
                key: dict(cache)
                for key, cache in self._runtime_caches.items()
            },
            "counts": dict(self.counts),
            "total_actions": self.total_actions,
            "n_events": len(self.events),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        for key, cache in self._runtime_caches.items():
            cache.clear()
            cache.update(state["caches"].get(key, {}))  # type: ignore[union-attr]
        self.counts = dict(state["counts"])  # type: ignore[arg-type]
        self.total_actions = state["total_actions"]  # type: ignore[assignment]
        del self.events[state["n_events"] :]  # type: ignore[misc]


def assign_behaviors(
    network: "Network", mix: BehaviorMix
) -> Dict[str, str]:
    """Draw the node->kind assignment from the ``"behaviors"`` stream.

    Iterates eligible nodes in sorted-id order (supernodes excluded) and
    draws one uniform variate per node against the mix's cumulative
    fractions — a pure function of ``(seed, mix)``.
    """
    rng = network.sim.rng.stream("behaviors")
    assignment: Dict[str, str] = {}
    eligible = sorted(
        node_id
        for node_id in network.node_ids
        if node_id not in network.supernode_ids
    )
    for node_id in eligible:
        draw = rng.random()
        cumulative = 0.0
        for kind in BEHAVIOR_KINDS:
            cumulative += getattr(mix, kind)
            if draw < cumulative:
                assignment[node_id] = kind
                break
    return assignment
