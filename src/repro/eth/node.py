"""A simulated Ethereum full node.

Models exactly the behaviours TopoShot's correctness argument depends on
(Sections 2 and 5 of the paper):

- **push propagation**: an admitted *pending* transaction is pushed to a
  subset of peers (all of them, or ``ceil(sqrt(n))`` like Geth >= 1.9.11)
  and announced by hash to the rest;
- **announcement protocol**: a peer receiving an announcement requests the
  transaction unless it already has it or requested it within the last
  ``announce_hold`` seconds (5 s in Geth);
- **future transactions are buffered but never forwarded** (the non-default
  ``forwards_future`` flag models the misbehaving testnet nodes the paper's
  pre-processing phase filters out);
- **per-peer known-transaction tracking** so a transaction is never pushed
  back to the peer it came from, bounded like Geth's 32k known-tx cache so
  memory stays flat over long campaigns;
- **batched broadcast**: outgoing pushes are flushed every
  ``broadcast_interval`` seconds in one ``Transactions`` packet per peer,
  like Geth's broadcast loop.

Blocks are forwarded eagerly; on arrival a node advances its confirmed
nonce view and prunes its mempool.

The transaction paths here execute once per (message, peer) and dominate
large-campaign wall time together with the event engine, so they avoid
per-call dict lookups, closure allocations and repeated config attribute
chains; see ``docs/performance.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import NodeDetachedError
from repro.eth.chain import Block
from repro.eth.mempool import AddOutcome, AddResult, Mempool
from repro.eth.messages import (
    FindNode,
    GetPooledTransactions,
    Message,
    Neighbors,
    NewBlock,
    NewPooledTransactionHashes,
    PooledTransactions,
    Status,
    Transactions,
)
from repro.eth.policies import GETH, MempoolPolicy
from repro.eth.transaction import Transaction
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.eth.network import Network

TxObserver = Callable[[str, Transaction, AddResult], None]
BlockObserver = Callable[[str, Block], None]


class KnownTxCache(dict):
    """Bounded, insertion-ordered known-transaction-hash cache.

    A dict subclass so the hot paths keep C-speed membership tests
    (``h in cache``) and inserts (``cache[h] = None``) while offering the
    small set-like API (`add`/`discard`) the rest of the code and the tests
    use. Eviction is FIFO over insertion order — the dict *is* the order —
    mirroring Geth's bounded per-peer knownTxs cache (32768 hashes). FIFO
    keeps eviction deterministic across processes, unlike anything derived
    from string-hash iteration order.
    """

    __slots__ = ()

    def add(self, tx_hash: str) -> None:
        self[tx_hash] = None

    def discard(self, tx_hash: str) -> None:
        self.pop(tx_hash, None)

    def prune(self, limit: int) -> int:
        """Drop oldest entries until at most ``limit`` remain."""
        dropped = 0
        while len(self) > limit:
            del self[next(iter(self))]
            dropped += 1
        return dropped


@dataclass(frozen=True)
class NodeConfig:
    """Behavioural knobs of one node.

    ``max_peers=None`` means unlimited (used by supernodes). The default of
    50 active neighbours matches the Geth default quoted in the paper.
    ``known_tx_limit`` bounds each peer's known-transaction cache (Geth's
    ``maxKnownTxs`` is 32768); ``None`` disables the bound.
    """

    policy: MempoolPolicy = GETH
    max_peers: Optional[int] = 50
    push_to_all: bool = False
    announce_only: bool = False  # Bitcoin-style: no direct pushes at all
    announce_enabled: bool = True
    announce_hold: float = 5.0
    broadcast_interval: float = 0.02
    relays_transactions: bool = True
    forwards_future: bool = False
    echoes_future_to_sender: bool = False  # Rinkeby quirk (Appendix D)
    responds_to_rpc: bool = True
    client_version: str = "Geth/v1.9.25-stable"
    network_id: int = 1
    known_tx_limit: Optional[int] = 32768

    def with_policy(self, policy: MempoolPolicy) -> "NodeConfig":
        return replace(self, policy=policy)


@dataclass
class PeerState:
    """Per-peer bookkeeping."""

    peer_id: str
    known_txs: KnownTxCache = field(default_factory=KnownTxCache)
    known_blocks: Set[str] = field(default_factory=set)
    connected_at: float = 0.0


# How many `_announce_requested` entries may pile up before a flush takes
# the time to sweep out the expired ones.
_ANNOUNCE_PRUNE_THRESHOLD = 512


class Node:
    """One Ethereum node attached to a :class:`~repro.eth.network.Network`."""

    def __init__(
        self,
        node_id: str,
        sim: Simulator,
        config: Optional[NodeConfig] = None,
    ) -> None:
        self.id = node_id
        self.sim = sim
        self.config = config or NodeConfig()
        self.network: Optional["Network"] = None
        self.peers: Dict[str, PeerState] = {}
        self.confirmed_nonces: Dict[str, int] = {}
        self.head_number = 0
        # The mempool consults the confirmed nonce once per offered
        # transaction; handing it the dict's own C-level ``get`` (the pool
        # normalizes the None default) skips two Python frames per add.
        self.mempool = Mempool(
            policy=self.config.policy,
            confirmed_nonce=self.confirmed_nonces.get,
            clock=lambda: self.sim.now,
        )
        self.routing_table: List[str] = []  # inactive neighbours (discovery)
        self.tx_observers: List[TxObserver] = []
        self.block_observers: List[BlockObserver] = []

        self.crashed = False
        self.crash_count = 0
        # Installed misbehavior kind, if any (see repro.eth.behaviors).
        self.behavior: Optional[str] = None
        self._rng = sim.rng.stream(f"node:{node_id}")
        self._getrandbits = self._rng.getrandbits
        self._push_queue: Dict[str, List[Transaction]] = {}
        self._announce_queue: Dict[str, List[str]] = {}
        self._flush_scheduled = False
        self._flush_label = f"flush:{node_id}"
        self._announce_requested: Dict[str, float] = {}  # hash -> hold expiry
        self._seen_blocks: Set[str] = set()
        # Broadcast-path caches. `_peer_known` pairs each peer id with its
        # known-tx cache *object* (stable identity: caches are cleared in
        # place, never replaced) in peer-dict insertion order, so the
        # per-transaction unaware scan runs on a plain list with C-level
        # dict membership. `_push_fanout` is Geth's ceil(sqrt(peer_count)).
        self._peer_known: List[Tuple[str, KnownTxCache]] = []
        self._peer_known_map: Dict[str, KnownTxCache] = {}
        self._push_fanout = 1
        # Per-type message handler table, consulted by handle_message and
        # directly by Network._deliver's fast path. Built from bound
        # methods, so subclass overrides (Supernode) resolve through the
        # MRO as usual. Subclassed *message* types fall back to
        # handle_message's isinstance chain.
        self._dispatch: Dict[type, Callable[[str, Message], None]] = {
            Transactions: self._handle_txs,
            PooledTransactions: self._handle_txs,
            NewPooledTransactionHashes: self._handle_announcement,
            GetPooledTransactions: self._handle_tx_request,
            NewBlock: self._handle_new_block,
            FindNode: self._handle_find_node,
            Status: self._handle_status,
            Neighbors: self._handle_neighbors,
        }
        # Immutable-config hot-path caches (NodeConfig is frozen).
        config = self.config
        self._known_tx_limit = config.known_tx_limit
        self._announce_hold = config.announce_hold
        self._broadcast_interval = config.broadcast_interval
        self._relays_transactions = config.relays_transactions
        self._forwards_future = config.forwards_future
        self._echoes_future = config.echoes_future_to_sender
        # Client versions learned from DevP2P Status handshakes; this is
        # the public information the paper's service discovery matches
        # frontend web3_clientVersion strings against (Section 6.3).
        self.peer_versions: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Peers
    # ------------------------------------------------------------------
    def can_accept_peer(self) -> bool:
        limit = self.config.max_peers
        return limit is None or len(self.peers) < limit

    def _refresh_peer_caches(self) -> None:
        self._peer_known = [
            (peer_id, state.known_txs) for peer_id, state in self.peers.items()
        ]
        self._peer_known_map = dict(self._peer_known)
        self._push_fanout = max(1, math.ceil(math.sqrt(len(self.peers))))

    def add_peer(self, peer_id: str) -> None:
        if peer_id not in self.peers:
            self.peers[peer_id] = PeerState(peer_id=peer_id, connected_at=self.sim.now)
            self._refresh_peer_caches()
            if self.network is not None:
                # DevP2P handshake: exchange Status with the new peer.
                self._send(
                    peer_id,
                    Status(
                        client_version=self.config.client_version,
                        network_id=self.config.network_id,
                        head_number=self.head_number,
                    ),
                )

    def remove_peer(self, peer_id: str) -> None:
        self.peers.pop(peer_id, None)
        self._refresh_peer_caches()
        self._push_queue.pop(peer_id, None)
        self._announce_queue.pop(peer_id, None)
        self.peer_versions.pop(peer_id, None)

    @property
    def peer_ids(self) -> List[str]:
        return list(self.peers)

    @property
    def degree(self) -> int:
        return len(self.peers)

    def knows(self, peer_id: str, tx_hash: str) -> bool:
        """Does this node believe ``peer_id`` already has ``tx_hash``?"""
        state = self.peers.get(peer_id)
        return state is not None and tx_hash in state.known_txs

    def _mark_known(self, peer_id: str, tx_hash: str) -> None:
        state = self.peers.get(peer_id)
        if state is not None:
            known = state.known_txs
            known[tx_hash] = None
            limit = self._known_tx_limit
            if limit is not None and len(known) > limit:
                known.prune(limit)

    def forget_known_transactions(self) -> None:
        """Drop per-peer known-tx sets (between measurement iterations)."""
        for state in self.peers.values():
            state.known_txs.clear()
        self._announce_requested.clear()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def observability_sample(self) -> Dict[str, object]:
        """One JSON-friendly dict describing this node's current state.

        Used by per-node debugging/export paths (``repro.obs``); pulls the
        mempool's counter snapshot rather than keeping parallel counters
        here.
        """
        return {
            "id": self.id,
            "crashed": self.crashed,
            "behavior": self.behavior,
            "peers": len(self.peers),
            "max_peers": self.config.max_peers,
            "mempool": self.mempool.stats_snapshot(),
        }

    # ------------------------------------------------------------------
    # Crash / restart (fault injection)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Take the node down: it neither sends nor receives while crashed.

        The network drops deliveries to/from a crashed node at delivery
        time; links are kept (the TCP sessions re-establish on restart).
        """
        if self.crashed:
            return
        self.crashed = True
        self.crash_count += 1
        self._push_queue.clear()
        self._announce_queue.clear()
        if self.network is not None:
            # Liveness changed: deliveries must re-run the guard chain
            # instead of taking the epoch fast path.
            self.network._epoch += 1
            self.network._crashed_count += 1

    def restart(self) -> None:
        """Bring the node back with volatile state wiped.

        Matches a rebooted client without a transaction journal (the
        paper's testnet targets restart with empty mempools): the mempool
        and all per-peer known-transaction/announcement state are gone;
        the persisted chain view (head, confirmed nonces) survives.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.mempool.clear()
        for state in self.peers.values():
            state.known_txs.clear()
        self._announce_requested.clear()
        if self.network is not None:
            self.network._epoch += 1
            self.network._crashed_count -= 1

    # ------------------------------------------------------------------
    # Chain view
    # ------------------------------------------------------------------
    def confirmed_nonce(self, sender: str) -> int:
        return self.confirmed_nonces.get(sender, 0)

    # ------------------------------------------------------------------
    # Snapshot/reset (see repro.sim.snapshot)
    # ------------------------------------------------------------------
    def capture_state(self) -> Dict[str, object]:
        """Capture this node's behavioural state for :meth:`restore_state`.

        Per-peer entries are captured in peer-dict insertion order; that
        order feeds ``_refresh_peer_caches`` and hence the broadcast
        fan-out, so it is part of determinism, not cosmetics.
        """
        return {
            "crashed": self.crashed,
            "crash_count": self.crash_count,
            "head_number": self.head_number,
            "confirmed_nonces": dict(self.confirmed_nonces),
            "mempool": self.mempool.capture_state(),
            "peers": {
                peer_id: (
                    dict(state.known_txs),
                    set(state.known_blocks),
                    state.connected_at,
                )
                for peer_id, state in self.peers.items()
            },
            "peer_versions": dict(self.peer_versions),
            "announce_requested": dict(self._announce_requested),
            "seen_blocks": set(self._seen_blocks),
            "routing_table": list(self.routing_table),
            "flush_scheduled": self._flush_scheduled,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Rewind this node to a capture taken by :meth:`capture_state`.

        Captured containers are copied in (one snapshot serves many
        restores). ``confirmed_nonces`` is cleared and refilled *in place*
        because the mempool holds its bound ``.get``. Queued-but-unflushed
        gossip is dropped: snapshots are only taken at quiescent instants,
        so there legitimately is none.
        """
        self.crashed = state["crashed"]
        self.crash_count = state["crash_count"]
        self.head_number = state["head_number"]
        self.confirmed_nonces.clear()
        self.confirmed_nonces.update(state["confirmed_nonces"])
        self.mempool.restore_state(state["mempool"])
        self.peers = {
            peer_id: PeerState(
                peer_id=peer_id,
                known_txs=KnownTxCache(known_txs),
                known_blocks=set(known_blocks),
                connected_at=connected_at,
            )
            for peer_id, (known_txs, known_blocks, connected_at) in state[
                "peers"
            ].items()
        }
        self.peer_versions = dict(state["peer_versions"])
        self._announce_requested = dict(state["announce_requested"])
        self._seen_blocks = set(state["seen_blocks"])
        self.routing_table = list(state["routing_table"])
        self._push_queue = {}
        self._announce_queue = {}
        self._flush_scheduled = state["flush_scheduled"]
        self._refresh_peer_caches()

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle_message(self, from_id: str, msg: Message) -> None:
        """Generic delivery entry point (the guarded/slow path).

        The transport's epoch fast path dispatches straight into
        ``_dispatch`` and skips this frame entirely (see
        ``Network._deliver``); direct callers and the guarded path land
        here, so overriding this method alone does NOT intercept every
        delivery — override the handler, or the dispatch table entry.
        """
        handler = self._dispatch.get(msg.__class__)
        if handler is not None:
            handler(from_id, msg)
            return
        # Subclassed message types miss the exact-type table; route them
        # by isinstance like the table's construction implies.
        if isinstance(msg, (Transactions, PooledTransactions)):
            self._handle_txs(from_id, msg)
        elif isinstance(msg, NewPooledTransactionHashes):
            self._handle_announcement(from_id, msg)
        elif isinstance(msg, GetPooledTransactions):
            self._handle_tx_request(from_id, msg)
        elif isinstance(msg, NewBlock):
            self._handle_new_block(from_id, msg)
        elif isinstance(msg, FindNode):
            self._handle_find_node(from_id, msg)
        elif isinstance(msg, Status):
            self._handle_status(from_id, msg)
        elif isinstance(msg, Neighbors):
            self._handle_neighbors(from_id, msg)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unhandled message type {type(msg).__name__}")

    def _handle_txs(self, from_id: str, msg: Message) -> None:
        receive = self._receive_gossip
        for tx in msg.txs:
            receive(from_id, tx)

    def _handle_new_block(self, from_id: str, msg: NewBlock) -> None:
        self.receive_block(from_id, msg.block)

    def _handle_find_node(self, from_id: str, msg: FindNode) -> None:
        self._send(from_id, Neighbors(node_ids=tuple(self.routing_table)))

    def _handle_status(self, from_id: str, msg: Status) -> None:
        self.peer_versions[from_id] = msg.client_version

    def _handle_neighbors(self, from_id: str, msg: Neighbors) -> None:
        pass  # discovery responses carry no state at the base node

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def receive_transaction(self, from_id: Optional[str], tx: Transaction) -> AddResult:
        """Admit a transaction arriving from ``from_id`` (None = local RPC)."""
        tx_hash = tx.hash
        if from_id is not None:
            # _mark_known inlined: this runs once per received transaction.
            known = self._peer_known_map.get(from_id)
            if known is not None:
                known[tx_hash] = None
                limit = self._known_tx_limit
                if limit is not None and len(known) > limit:
                    known.prune(limit)
        pool = self.mempool
        if tx_hash in pool._by_hash:
            # Duplicate fast path: during gossip most deliveries carry a
            # transaction the pool already holds. Equivalent to pool.add()
            # for a known hash (same stats bump, same result), minus the
            # admission machinery that cannot apply to a duplicate.
            pool.stats["rejected_known"] += 1
            result = AddResult(tx, AddOutcome.REJECTED_KNOWN)
            if self.tx_observers:
                for observer in self.tx_observers:
                    observer(from_id or "", tx, result)
            return result
        return self._admit(from_id, tx)

    def _receive_gossip(self, from_id: str, tx: Transaction) -> None:
        """Per-transaction body of a Transactions/PooledTransactions batch.

        Identical to :meth:`receive_transaction` except that the duplicate
        path — the bulk of gossip traffic — builds no :class:`AddResult`
        unless an observer is registered to see it; the dispatch loop
        discards the result either way.
        """
        tx_hash = tx.hash
        known = self._peer_known_map.get(from_id)
        if known is not None:
            known[tx_hash] = None
            limit = self._known_tx_limit
            if limit is not None and len(known) > limit:
                known.prune(limit)
        pool = self.mempool
        if tx_hash in pool._by_hash:
            pool.stats["rejected_known"] += 1
            if self.tx_observers:
                result = AddResult(tx, AddOutcome.REJECTED_KNOWN)
                for observer in self.tx_observers:
                    observer(from_id, tx, result)
            return
        self._admit(from_id, tx)

    def _admit(self, from_id: Optional[str], tx: Transaction) -> AddResult:
        """Offer a not-yet-known transaction to the pool; echo and relay."""
        result = self.mempool.add(tx)
        if self.tx_observers:
            for observer in self.tx_observers:
                observer(from_id or "", tx, result)
        if (
            self._echoes_future
            and from_id is not None
            and from_id in self.peers
            and result.admitted
            and not result.is_pending
        ):
            # The Rinkeby quirk the paper hit (Appendix D): "when our
            # measurement node M sends future transactions to certain nodes
            # in Rinkeby, these nodes return the same future transactions
            # back to node M."
            self._send(from_id, Transactions(txs=(tx,)))
        if self._relays_transactions:
            # Relay (inlined): push what became executable to peers.
            if result.propagatable or (result.admitted and self._forwards_future):
                # forwards_future: misbehaving node relays future
                # transactions too (Section 6.2.1).
                self.broadcast_transaction(tx)
            for promoted_tx in result.promoted:
                self.broadcast_transaction(promoted_tx)
        return result

    def submit_transaction(self, tx: Transaction) -> AddResult:
        """Local submission (eth_sendRawTransaction)."""
        return self.receive_transaction(None, tx)

    def broadcast_transaction(self, tx: Transaction) -> None:
        """Queue ``tx`` toward every peer not known to have it."""
        tx_hash = tx.hash
        unaware = [item for item in self._peer_known if tx_hash not in item[1]]
        if not unaware:
            return
        config = self.config
        if config.announce_only:
            # Bitcoin's propagation model (what TxProbe exploits): hashes
            # first, bodies on request, never unsolicited pushes.
            push_targets: List[Tuple[str, KnownTxCache]] = []
            announce_targets = unaware
        elif config.push_to_all or not config.announce_enabled:
            push_targets = unaware
            announce_targets = []
        else:
            # Inlined random.Random.shuffle: the exact Fisher-Yates of
            # CPython's shuffle, with _randbelow_with_getrandbits expanded
            # in place. Consumes the identical getrandbits sequence, so the
            # permutation — and every later draw — is bit-for-bit the same,
            # without two Python frames per element.
            getrandbits = self._getrandbits
            for i in range(len(unaware) - 1, 0, -1):
                n = i + 1
                k = n.bit_length()
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                unaware[i], unaware[r] = unaware[r], unaware[i]
            n_push = self._push_fanout
            push_targets = unaware[:n_push]
            announce_targets = unaware[n_push:]
        limit = self._known_tx_limit
        if push_targets:
            push_queue = self._push_queue
            for peer_id, known in push_targets:
                known[tx_hash] = None
                if limit is not None and len(known) > limit:
                    known.prune(limit)
                bucket = push_queue.get(peer_id)
                if bucket is None:
                    push_queue[peer_id] = [tx]
                else:
                    bucket.append(tx)
        if announce_targets:
            announce_queue = self._announce_queue
            for peer_id, known in announce_targets:
                known[tx_hash] = None
                if limit is not None and len(known) > limit:
                    known.prune(limit)
                bucket = announce_queue.get(peer_id)
                if bucket is None:
                    announce_queue[peer_id] = [tx_hash]
                else:
                    bucket.append(tx_hash)
        if not self._flush_scheduled:
            self._schedule_flush()

    def _schedule_flush(self) -> None:
        if self._flush_scheduled:
            return
        self._flush_scheduled = True
        self.sim.schedule(self._broadcast_interval, self._flush, self._flush_label)

    def _flush(self) -> None:
        self._flush_scheduled = False
        peers = self.peers
        network = self.network
        if network is None:
            raise NodeDetachedError(self.id)
        send = network.send  # bypass _send: most messages leave via flush
        my_id = self.id
        push_queue, self._push_queue = self._push_queue, {}
        announce_queue, self._announce_queue = self._announce_queue, {}
        for peer_id, txs in push_queue.items():
            if peer_id in peers:
                send(my_id, peer_id, Transactions(txs=tuple(txs)))
        for peer_id, hashes in announce_queue.items():
            if peer_id in peers:
                send(my_id, peer_id, NewPooledTransactionHashes(hashes=tuple(hashes)))
        # Opportunistic hold-window hygiene: announcement holds are only
        # ever *read* within their 5 s window, but entries used to pile up
        # one per announced hash until a restart. Sweep the expired ones
        # once the map is big enough to matter.
        requested = self._announce_requested
        if len(requested) >= _ANNOUNCE_PRUNE_THRESHOLD:
            now = self.sim.now
            self._announce_requested = {
                tx_hash: expiry
                for tx_hash, expiry in requested.items()
                if expiry > now
            }

    def _handle_announcement(
        self, from_id: str, msg: NewPooledTransactionHashes
    ) -> None:
        known = self._peer_known_map.get(from_id)
        wanted: List[str] = []
        now = self.sim.now
        hold = self._announce_hold
        requested = self._announce_requested
        requested_get = requested.get
        # Membership against the mempool's primary hash index directly:
        # Mempool.__contains__ is one Python frame per announced hash.
        pool_txs = self.mempool._by_hash
        if known is not None:
            for tx_hash in msg.hashes:
                known[tx_hash] = None
                if tx_hash in pool_txs:
                    continue
                # Within the hold window we do not respond to other
                # announcements of the same transaction (Section 2).
                if requested_get(tx_hash, -1.0) > now:
                    continue
                requested[tx_hash] = now + hold
                wanted.append(tx_hash)
            limit = self._known_tx_limit
            if limit is not None and len(known) > limit:
                known.prune(limit)
        else:
            for tx_hash in msg.hashes:
                if tx_hash in pool_txs:
                    continue
                if requested_get(tx_hash, -1.0) > now:
                    continue
                requested[tx_hash] = now + hold
                wanted.append(tx_hash)
        if wanted:
            self._send(from_id, GetPooledTransactions(hashes=tuple(wanted)))

    def _handle_tx_request(self, from_id: str, msg: GetPooledTransactions) -> None:
        pool_get = self.mempool.get
        available = tuple(
            tx for tx_hash in msg.hashes if (tx := pool_get(tx_hash)) is not None
        )
        if available:
            known = self._peer_known_map.get(from_id)
            if known is not None:
                for tx in available:
                    known[tx.hash] = None
                limit = self._known_tx_limit
                if limit is not None and len(known) > limit:
                    known.prune(limit)
            self._send(from_id, PooledTransactions(txs=available))

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------
    def receive_block(self, from_id: Optional[str], block: Block) -> None:
        """Process a gossiped (or locally mined) block."""
        if from_id is not None:
            state = self.peers.get(from_id)
            if state is not None:
                state.known_blocks.add(block.hash)
        if block.hash in self._seen_blocks:
            return
        self._seen_blocks.add(block.hash)
        if block.number > self.head_number:
            self.head_number = block.number
        for tx in block.txs:
            current = self.confirmed_nonces.get(tx.sender, 0)
            self.confirmed_nonces[tx.sender] = max(current, tx.nonce + 1)
        new_base_fee = (
            block.next_base_fee() if self.config.policy.enforce_base_fee else None
        )
        self.mempool.apply_block(block.txs, new_base_fee=new_base_fee)
        for observer in self.block_observers:
            observer(from_id or "", block)
        # Eager block gossip to peers that have not seen it.
        for peer_id, state in self.peers.items():
            if block.hash not in state.known_blocks:
                state.known_blocks.add(block.hash)
                self._send(peer_id, NewBlock(block=block))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def expire_transactions(self) -> List[Transaction]:
        """Drop transactions older than the policy expiry (Geth's 3 h)."""
        return self.mempool.evict_expired(self.sim.now)

    def _send(self, to_id: str, msg: Message) -> None:
        network = self.network
        if network is None:
            raise NodeDetachedError(self.id)
        network.send(self.id, to_id, msg)

    def __repr__(self) -> str:
        return (
            f"Node({self.id}, client={self.config.policy.name}, "
            f"peers={len(self.peers)}, pool={len(self.mempool)})"
        )
