"""A simulated Ethereum full node.

Models exactly the behaviours TopoShot's correctness argument depends on
(Sections 2 and 5 of the paper):

- **push propagation**: an admitted *pending* transaction is pushed to a
  subset of peers (all of them, or ``ceil(sqrt(n))`` like Geth >= 1.9.11)
  and announced by hash to the rest;
- **announcement protocol**: a peer receiving an announcement requests the
  transaction unless it already has it or requested it within the last
  ``announce_hold`` seconds (5 s in Geth);
- **future transactions are buffered but never forwarded** (the non-default
  ``forwards_future`` flag models the misbehaving testnet nodes the paper's
  pre-processing phase filters out);
- **per-peer known-transaction tracking** so a transaction is never pushed
  back to the peer it came from, bounded like Geth's 32k known-tx cache so
  memory stays flat over long campaigns;
- **batched broadcast**: outgoing pushes are flushed every
  ``broadcast_interval`` seconds in one ``Transactions`` packet per peer,
  like Geth's broadcast loop.

Blocks are forwarded eagerly; on arrival a node advances its confirmed
nonce view and prunes its mempool.

The transaction paths here execute once per (message, peer) and dominate
large-campaign wall time together with the event engine, so they avoid
per-call dict lookups, closure allocations and repeated config attribute
chains; see ``docs/performance.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import NodeDetachedError
from repro.eth.chain import Block
from repro.eth.mempool import AddOutcome, AddResult, Mempool
from repro.eth.messages import (
    FindNode,
    GetPooledTransactions,
    Message,
    Neighbors,
    NewBlock,
    NewPooledTransactionHashes,
    PooledTransactions,
    Status,
    Transactions,
)
from repro.eth.policies import GETH, MempoolPolicy
from repro.eth.transaction import Transaction
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.eth.network import Network

TxObserver = Callable[[str, Transaction, AddResult], None]
BlockObserver = Callable[[str, Block], None]


class KnownTxCache(dict):
    """Bounded, insertion-ordered known-transaction-hash cache.

    A dict subclass so the hot paths keep C-speed membership tests
    (``h in cache``) and inserts (``cache[h] = None``) while offering the
    small set-like API (`add`/`discard`) the rest of the code and the tests
    use. Eviction is FIFO over insertion order — the dict *is* the order —
    mirroring Geth's bounded per-peer knownTxs cache (32768 hashes). FIFO
    keeps eviction deterministic across processes, unlike anything derived
    from string-hash iteration order.
    """

    __slots__ = ()

    def add(self, tx_hash: str) -> None:
        self[tx_hash] = None

    def discard(self, tx_hash: str) -> None:
        self.pop(tx_hash, None)

    def prune(self, limit: int) -> int:
        """Drop oldest entries until at most ``limit`` remain."""
        dropped = 0
        while len(self) > limit:
            del self[next(iter(self))]
            dropped += 1
        return dropped


@dataclass(frozen=True)
class NodeConfig:
    """Behavioural knobs of one node.

    ``max_peers=None`` means unlimited (used by supernodes). The default of
    50 active neighbours matches the Geth default quoted in the paper.
    ``known_tx_limit`` bounds each peer's known-transaction cache (Geth's
    ``maxKnownTxs`` is 32768); ``None`` disables the bound.
    """

    policy: MempoolPolicy = GETH
    max_peers: Optional[int] = 50
    push_to_all: bool = False
    announce_only: bool = False  # Bitcoin-style: no direct pushes at all
    announce_enabled: bool = True
    announce_hold: float = 5.0
    broadcast_interval: float = 0.02
    relays_transactions: bool = True
    forwards_future: bool = False
    echoes_future_to_sender: bool = False  # Rinkeby quirk (Appendix D)
    responds_to_rpc: bool = True
    client_version: str = "Geth/v1.9.25-stable"
    network_id: int = 1
    known_tx_limit: Optional[int] = 32768

    def with_policy(self, policy: MempoolPolicy) -> "NodeConfig":
        return replace(self, policy=policy)


# Generation stamp width of the known-tx table (low bits of each value).
# 32 bits of generation wrap after 4G forget cycles — far beyond any
# campaign — and leave the whole upper int to the per-peer bit mask.
_GEN_MASK = 0xFFFFFFFF
_GEN_BITS = 32

# Size above which a generation bump also clears the table outright
# instead of leaving dead (stale-generation) entries to be overwritten
# lazily. Bounds the table's memory between measurement iterations.
_FORGET_COMPACT_THRESHOLD = 4096


class PeerKnownView:
    """Set-like façade over one peer's slice of the node's known-tx table.

    The SoA refactor replaced per-peer :class:`KnownTxCache` dicts with one
    per-node table ``hash -> (mask << 32) | generation`` where bit *i* of
    ``mask`` means "the peer in slot *i* knows this hash". This view keeps
    ``peer_state.known_txs`` working — membership, ``add``/``discard``,
    iteration, ``len`` — for tests, tooling and the legacy benchmark
    engine, reading and writing the shared table through the peer's slot
    bit. Reads are O(1); ``len``/iteration scan the table (cold paths).
    """

    __slots__ = ("_node", "_bit", "_shifted")

    def __init__(self, node: "Node", slot: int) -> None:
        self._node = node
        self._bit = 1 << slot
        self._shifted = self._bit << _GEN_BITS

    def __contains__(self, tx_hash: str) -> bool:
        node = self._node
        value = node._known.get(tx_hash)
        return (
            value is not None
            and (value & _GEN_MASK) == node._known_gen
            and bool(value & self._shifted)
        )

    def add(self, tx_hash: str) -> None:
        """Mark the peer as knowing ``tx_hash`` (no table bound applied)."""
        node = self._node
        known = node._known
        gen = node._known_gen
        value = known.get(tx_hash)
        if value is not None and (value & _GEN_MASK) == gen:
            known[tx_hash] = value | self._shifted
        else:
            known[tx_hash] = self._shifted | gen

    def discard(self, tx_hash: str) -> None:
        node = self._node
        value = node._known.get(tx_hash)
        if value is not None and (value & _GEN_MASK) == node._known_gen:
            node._known[tx_hash] = value & ~self._shifted

    def clear(self) -> None:
        """Strip this peer's bit from every live entry."""
        node = self._node
        shifted = self._shifted
        gen = node._known_gen
        known = node._known
        for tx_hash, value in known.items():
            if value & shifted and (value & _GEN_MASK) == gen:
                known[tx_hash] = value & ~shifted

    def __iter__(self):
        node = self._node
        shifted = self._shifted
        gen = node._known_gen
        for tx_hash, value in node._known.items():
            if value & shifted and (value & _GEN_MASK) == gen:
                yield tx_hash

    def __len__(self) -> int:
        node = self._node
        shifted = self._shifted
        gen = node._known_gen
        return sum(
            1
            for value in node._known.values()
            if value & shifted and (value & _GEN_MASK) == gen
        )

    def __bool__(self) -> bool:
        node = self._node
        shifted = self._shifted
        gen = node._known_gen
        for value in node._known.values():
            if value & shifted and (value & _GEN_MASK) == gen:
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PeerKnownView({len(self)} hashes, bit={self._bit:#x})"


@dataclass(slots=True)
class PeerState:
    """Per-peer bookkeeping.

    ``slot`` is the peer's bit position in the node's known-tx table
    masks; ``known_txs`` is the :class:`PeerKnownView` over that bit.
    """

    peer_id: str
    slot: int = 0
    known_txs: Optional[PeerKnownView] = None
    known_blocks: Set[str] = field(default_factory=set)
    connected_at: float = 0.0


# How many `_announce_requested` entries may pile up before a flush takes
# the time to sweep out the expired ones.
_ANNOUNCE_PRUNE_THRESHOLD = 512


class Node:
    """One Ethereum node attached to a :class:`~repro.eth.network.Network`."""

    def __init__(
        self,
        node_id: str,
        sim: Simulator,
        config: Optional[NodeConfig] = None,
    ) -> None:
        self.id = node_id
        self.sim = sim
        self.config = config or NodeConfig()
        self.network: Optional["Network"] = None
        self.peers: Dict[str, PeerState] = {}
        self.confirmed_nonces: Dict[str, int] = {}
        self.head_number = 0
        # The mempool consults the confirmed nonce once per offered
        # transaction; handing it the dict's own C-level ``get`` (the pool
        # normalizes the None default) skips two Python frames per add.
        self.mempool = Mempool(
            policy=self.config.policy,
            confirmed_nonce=self.confirmed_nonces.get,
            clock=lambda: self.sim.now,
        )
        self.routing_table: List[str] = []  # inactive neighbours (discovery)
        self.tx_observers: List[TxObserver] = []
        self.block_observers: List[BlockObserver] = []

        self.crashed = False
        self.crash_count = 0
        # Installed misbehavior kind, if any (see repro.eth.behaviors).
        self.behavior: Optional[str] = None
        self._rng = sim.rng.stream(f"node:{node_id}")
        self._getrandbits = self._rng.getrandbits
        # Dense index of this node in its network's id-interning table
        # (repro.sim.idmap); -1 while detached. Set by Network.add_node.
        self.index = -1
        self._push_queue: Dict[str, List[Transaction]] = {}
        self._announce_queue: Dict[str, List[str]] = {}
        self._flush_scheduled = False
        self._flush_label = f"flush:{node_id}"
        self._announce_requested: Dict[str, float] = {}  # hash -> hold expiry
        self._seen_blocks: Set[str] = set()
        # Generation-stamped known-tx table (struct-of-arrays layout): one
        # dict ``hash -> (mask << 32) | generation`` instead of a bounded
        # dict per peer. Bit i of ``mask`` means "the peer occupying slot i
        # knows this hash"; entries whose generation differs from
        # ``_known_gen`` are dead (forget_known_transactions bumps the
        # generation in O(1) rather than clearing anything). Slots are
        # assigned on add_peer and recycled through ``_free_slots`` after
        # remove_peer sweeps the departing bit out of the live entries.
        self._known: Dict[str, int] = {}
        self._known_gen = 0
        self._free_slots: List[int] = []
        self._next_slot = 0
        # Broadcast-path caches. `_peer_list` pairs each peer id with its
        # slot bit in peer-dict insertion order, so the per-transaction
        # unaware scan is one dict lookup plus an int AND per peer.
        # `_peer_shifted` maps peer id -> (bit << 32) for inbound marking;
        # `_all_bits` ORs every current peer's bit (broadcast early-exit).
        # `_push_fanout` is Geth's ceil(sqrt(peer_count)).
        self._peer_list: List[Tuple[str, int]] = []
        self._peer_shifted: Dict[str, int] = {}
        self._all_bits = 0
        self._push_fanout = 1
        # Per-type message handler table, consulted by handle_message and
        # directly by Network._deliver's fast path. Built from bound
        # methods, so subclass overrides (Supernode) resolve through the
        # MRO as usual. Subclassed *message* types fall back to
        # handle_message's isinstance chain.
        self._dispatch: Dict[type, Callable[[str, Message], None]] = {
            Transactions: self._handle_txs,
            PooledTransactions: self._handle_txs,
            NewPooledTransactionHashes: self._handle_announcement,
            GetPooledTransactions: self._handle_tx_request,
            NewBlock: self._handle_new_block,
            FindNode: self._handle_find_node,
            Status: self._handle_status,
            Neighbors: self._handle_neighbors,
        }
        # Immutable-config hot-path caches (NodeConfig is frozen).
        config = self.config
        self._known_tx_limit = config.known_tx_limit
        self._announce_hold = config.announce_hold
        self._broadcast_interval = config.broadcast_interval
        self._relays_transactions = config.relays_transactions
        self._forwards_future = config.forwards_future
        self._echoes_future = config.echoes_future_to_sender
        # Client versions learned from DevP2P Status handshakes; this is
        # the public information the paper's service discovery matches
        # frontend web3_clientVersion strings against (Section 6.3).
        self.peer_versions: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Peers
    # ------------------------------------------------------------------
    def can_accept_peer(self) -> bool:
        limit = self.config.max_peers
        return limit is None or len(self.peers) < limit

    def _refresh_peer_caches(self) -> None:
        """Rebuild the broadcast caches from the peers dict (cold path).

        ``add_peer`` appends incrementally instead of calling this — a
        supernode collects tens of thousands of peers, and rebuilding a
        length-k list per add is O(k^2) across a join. Insertion order is
        preserved either way: it feeds the broadcast fan-out shuffle and
        is part of determinism, not cosmetics.
        """
        self._peer_list = [
            (peer_id, 1 << state.slot) for peer_id, state in self.peers.items()
        ]
        self._peer_shifted = {
            peer_id: bit << _GEN_BITS for peer_id, bit in self._peer_list
        }
        all_bits = 0
        for _, bit in self._peer_list:
            all_bits |= bit
        self._all_bits = all_bits
        self._push_fanout = max(1, math.ceil(math.sqrt(len(self.peers))))

    def add_peer(self, peer_id: str) -> None:
        if peer_id not in self.peers:
            if self._free_slots:
                slot = self._free_slots.pop()
            else:
                slot = self._next_slot
                self._next_slot += 1
            self.peers[peer_id] = PeerState(
                peer_id=peer_id,
                slot=slot,
                known_txs=PeerKnownView(self, slot),
                connected_at=self.sim.now,
            )
            bit = 1 << slot
            self._peer_list.append((peer_id, bit))
            self._peer_shifted[peer_id] = bit << _GEN_BITS
            self._all_bits |= bit
            self._push_fanout = max(1, math.ceil(math.sqrt(len(self.peers))))
            if self.network is not None:
                # DevP2P handshake: exchange Status with the new peer.
                self._send(
                    peer_id,
                    Status(
                        client_version=self.config.client_version,
                        network_id=self.config.network_id,
                        head_number=self.head_number,
                    ),
                )

    def remove_peer(self, peer_id: str) -> None:
        state = self.peers.pop(peer_id, None)
        if state is not None:
            # Sweep the departing peer's bit out of the table so the slot
            # can be recycled without leaking "knows" bits to its next
            # occupant. Disconnects are cold; the sweep is O(table).
            shifted = 1 << (state.slot + _GEN_BITS)
            known = self._known
            for tx_hash, value in known.items():
                if value & shifted:
                    known[tx_hash] = value & ~shifted
            self._free_slots.append(state.slot)
            self._refresh_peer_caches()
        self._push_queue.pop(peer_id, None)
        self._announce_queue.pop(peer_id, None)
        self.peer_versions.pop(peer_id, None)

    @property
    def peer_ids(self) -> List[str]:
        return list(self.peers)

    @property
    def degree(self) -> int:
        return len(self.peers)

    def knows(self, peer_id: str, tx_hash: str) -> bool:
        """Does this node believe ``peer_id`` already has ``tx_hash``?"""
        shifted = self._peer_shifted.get(peer_id)
        if shifted is None:
            return False
        value = self._known.get(tx_hash)
        return (
            value is not None
            and (value & _GEN_MASK) == self._known_gen
            and bool(value & shifted)
        )

    def _prune_known(self) -> None:
        """FIFO-prune the known-tx table down to ``known_tx_limit``.

        The table is insertion-ordered (the dict *is* the order), so
        dropping from the head evicts the oldest-first-seen hashes —
        deterministic across processes, like the old per-peer caches.
        """
        known = self._known
        limit = self._known_tx_limit
        while len(known) > limit:
            del known[next(iter(known))]

    def _mark_known(self, peer_id: str, tx_hash: str) -> None:
        shifted = self._peer_shifted.get(peer_id)
        if shifted is not None:
            known = self._known
            gen = self._known_gen
            value = known.get(tx_hash)
            if value is not None and (value & _GEN_MASK) == gen:
                known[tx_hash] = value | shifted
            else:
                known[tx_hash] = shifted | gen
                limit = self._known_tx_limit
                if limit is not None and len(known) > limit:
                    self._prune_known()

    def forget_known_transactions(self) -> None:
        """Drop all known-tx state (between measurement iterations).

        O(1): bumping the generation stamp invalidates every live entry at
        once. Tables that grew past the compaction threshold are cleared
        outright so dead entries cannot accumulate across iterations.
        """
        self._known_gen = (self._known_gen + 1) & _GEN_MASK
        if len(self._known) >= _FORGET_COMPACT_THRESHOLD:
            self._known.clear()
        self._announce_requested.clear()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def observability_sample(self) -> Dict[str, object]:
        """One JSON-friendly dict describing this node's current state.

        Used by per-node debugging/export paths (``repro.obs``); pulls the
        mempool's counter snapshot rather than keeping parallel counters
        here.
        """
        return {
            "id": self.id,
            "crashed": self.crashed,
            "behavior": self.behavior,
            "peers": len(self.peers),
            "max_peers": self.config.max_peers,
            "mempool": self.mempool.stats_snapshot(),
        }

    # ------------------------------------------------------------------
    # Crash / restart (fault injection)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Take the node down: it neither sends nor receives while crashed.

        The network drops deliveries to/from a crashed node at delivery
        time; links are kept (the TCP sessions re-establish on restart).
        """
        if self.crashed:
            return
        self.crashed = True
        self.crash_count += 1
        self._push_queue.clear()
        self._announce_queue.clear()
        if self.network is not None:
            # Liveness changed: deliveries must re-run the guard chain
            # instead of taking the epoch fast path.
            self.network._epoch += 1
            self.network._crashed_count += 1

    def restart(self) -> None:
        """Bring the node back with volatile state wiped.

        Matches a rebooted client without a transaction journal (the
        paper's testnet targets restart with empty mempools): the mempool
        and all per-peer known-transaction/announcement state are gone;
        the persisted chain view (head, confirmed nonces) survives.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.mempool.clear()
        self._known.clear()
        self._announce_requested.clear()
        if self.network is not None:
            self.network._epoch += 1
            self.network._crashed_count -= 1

    # ------------------------------------------------------------------
    # Chain view
    # ------------------------------------------------------------------
    def confirmed_nonce(self, sender: str) -> int:
        return self.confirmed_nonces.get(sender, 0)

    # ------------------------------------------------------------------
    # Snapshot/reset (see repro.sim.snapshot)
    # ------------------------------------------------------------------
    def capture_state(self) -> Dict[str, object]:
        """Capture this node's behavioural state for :meth:`restore_state`.

        Per-peer entries are captured in peer-dict insertion order; that
        order feeds ``_refresh_peer_caches`` and hence the broadcast
        fan-out, so it is part of determinism, not cosmetics.
        """
        return {
            "crashed": self.crashed,
            "crash_count": self.crash_count,
            "head_number": self.head_number,
            "confirmed_nonces": dict(self.confirmed_nonces),
            "mempool": self.mempool.capture_state(),
            "peers": {
                peer_id: (
                    state.slot,
                    set(state.known_blocks),
                    state.connected_at,
                )
                for peer_id, state in self.peers.items()
            },
            "known": dict(self._known),
            "known_gen": self._known_gen,
            "free_slots": list(self._free_slots),
            "next_slot": self._next_slot,
            "peer_versions": dict(self.peer_versions),
            "announce_requested": dict(self._announce_requested),
            "seen_blocks": set(self._seen_blocks),
            "routing_table": list(self.routing_table),
            "flush_scheduled": self._flush_scheduled,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Rewind this node to a capture taken by :meth:`capture_state`.

        Captured containers are copied in (one snapshot serves many
        restores). ``confirmed_nonces`` is cleared and refilled *in place*
        because the mempool holds its bound ``.get``. Queued-but-unflushed
        gossip is dropped: snapshots are only taken at quiescent instants,
        so there legitimately is none.
        """
        self.crashed = state["crashed"]
        self.crash_count = state["crash_count"]
        self.head_number = state["head_number"]
        self.confirmed_nonces.clear()
        self.confirmed_nonces.update(state["confirmed_nonces"])
        self.mempool.restore_state(state["mempool"])
        self.peers = {
            peer_id: PeerState(
                peer_id=peer_id,
                slot=slot,
                known_txs=PeerKnownView(self, slot),
                known_blocks=set(known_blocks),
                connected_at=connected_at,
            )
            for peer_id, (slot, known_blocks, connected_at) in state[
                "peers"
            ].items()
        }
        self._known = dict(state["known"])
        self._known_gen = state["known_gen"]
        self._free_slots = list(state["free_slots"])
        self._next_slot = state["next_slot"]
        self.peer_versions = dict(state["peer_versions"])
        self._announce_requested = dict(state["announce_requested"])
        self._seen_blocks = set(state["seen_blocks"])
        self.routing_table = list(state["routing_table"])
        self._push_queue = {}
        self._announce_queue = {}
        self._flush_scheduled = state["flush_scheduled"]
        self._refresh_peer_caches()

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle_message(self, from_id: str, msg: Message) -> None:
        """Generic delivery entry point (the guarded/slow path).

        The transport's epoch fast path dispatches straight into
        ``_dispatch`` and skips this frame entirely (see
        ``Network._deliver``); direct callers and the guarded path land
        here, so overriding this method alone does NOT intercept every
        delivery — override the handler, or the dispatch table entry.
        """
        handler = self._dispatch.get(msg.__class__)
        if handler is not None:
            handler(from_id, msg)
            return
        # Subclassed message types miss the exact-type table; route them
        # by isinstance like the table's construction implies.
        if isinstance(msg, (Transactions, PooledTransactions)):
            self._handle_txs(from_id, msg)
        elif isinstance(msg, NewPooledTransactionHashes):
            self._handle_announcement(from_id, msg)
        elif isinstance(msg, GetPooledTransactions):
            self._handle_tx_request(from_id, msg)
        elif isinstance(msg, NewBlock):
            self._handle_new_block(from_id, msg)
        elif isinstance(msg, FindNode):
            self._handle_find_node(from_id, msg)
        elif isinstance(msg, Status):
            self._handle_status(from_id, msg)
        elif isinstance(msg, Neighbors):
            self._handle_neighbors(from_id, msg)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unhandled message type {type(msg).__name__}")

    def _handle_txs(self, from_id: str, msg: Message) -> None:
        receive = self._receive_gossip
        for tx in msg.txs:
            receive(from_id, tx)

    def _handle_new_block(self, from_id: str, msg: NewBlock) -> None:
        self.receive_block(from_id, msg.block)

    def _handle_find_node(self, from_id: str, msg: FindNode) -> None:
        self._send(from_id, Neighbors(node_ids=tuple(self.routing_table)))

    def _handle_status(self, from_id: str, msg: Status) -> None:
        self.peer_versions[from_id] = msg.client_version

    def _handle_neighbors(self, from_id: str, msg: Neighbors) -> None:
        pass  # discovery responses carry no state at the base node

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def receive_transaction(self, from_id: Optional[str], tx: Transaction) -> AddResult:
        """Admit a transaction arriving from ``from_id`` (None = local RPC)."""
        tx_hash = tx.hash
        if from_id is not None:
            # _mark_known inlined: this runs once per received transaction.
            shifted = self._peer_shifted.get(from_id)
            if shifted is not None:
                known = self._known
                gen = self._known_gen
                value = known.get(tx_hash)
                if value is not None and (value & _GEN_MASK) == gen:
                    known[tx_hash] = value | shifted
                else:
                    known[tx_hash] = shifted | gen
                    limit = self._known_tx_limit
                    if limit is not None and len(known) > limit:
                        self._prune_known()
        pool = self.mempool
        if tx_hash in pool._by_hash:
            # Duplicate fast path: during gossip most deliveries carry a
            # transaction the pool already holds. Equivalent to pool.add()
            # for a known hash (same stats bump, same result), minus the
            # admission machinery that cannot apply to a duplicate.
            pool.stats["rejected_known"] += 1
            result = AddResult(tx, AddOutcome.REJECTED_KNOWN)
            if self.tx_observers:
                for observer in self.tx_observers:
                    observer(from_id or "", tx, result)
            return result
        return self._admit(from_id, tx)

    def _receive_gossip(self, from_id: str, tx: Transaction) -> None:
        """Per-transaction body of a Transactions/PooledTransactions batch.

        Identical to :meth:`receive_transaction` except that the duplicate
        path — the bulk of gossip traffic — builds no :class:`AddResult`
        unless an observer is registered to see it; the dispatch loop
        discards the result either way.
        """
        tx_hash = tx.hash
        shifted = self._peer_shifted.get(from_id)
        if shifted is not None:
            known = self._known
            gen = self._known_gen
            value = known.get(tx_hash)
            if value is not None and (value & _GEN_MASK) == gen:
                known[tx_hash] = value | shifted
            else:
                known[tx_hash] = shifted | gen
                limit = self._known_tx_limit
                if limit is not None and len(known) > limit:
                    self._prune_known()
        pool = self.mempool
        if tx_hash in pool._by_hash:
            pool.stats["rejected_known"] += 1
            if self.tx_observers:
                result = AddResult(tx, AddOutcome.REJECTED_KNOWN)
                for observer in self.tx_observers:
                    observer(from_id, tx, result)
            return
        self._admit(from_id, tx)

    def _admit(self, from_id: Optional[str], tx: Transaction) -> AddResult:
        """Offer a not-yet-known transaction to the pool; echo and relay."""
        result = self.mempool.add(tx)
        if self.tx_observers:
            for observer in self.tx_observers:
                observer(from_id or "", tx, result)
        if (
            self._echoes_future
            and from_id is not None
            and from_id in self.peers
            and result.admitted
            and not result.is_pending
        ):
            # The Rinkeby quirk the paper hit (Appendix D): "when our
            # measurement node M sends future transactions to certain nodes
            # in Rinkeby, these nodes return the same future transactions
            # back to node M."
            self._send(from_id, Transactions(txs=(tx,)))
        if self._relays_transactions:
            # Relay (inlined): push what became executable to peers.
            if result.propagatable or (result.admitted and self._forwards_future):
                # forwards_future: misbehaving node relays future
                # transactions too (Section 6.2.1).
                self.broadcast_transaction(tx)
            for promoted_tx in result.promoted:
                self.broadcast_transaction(promoted_tx)
        return result

    def submit_transaction(self, tx: Transaction) -> AddResult:
        """Local submission (eth_sendRawTransaction)."""
        return self.receive_transaction(None, tx)

    def broadcast_transaction(self, tx: Transaction) -> None:
        """Queue ``tx`` toward every peer not known to have it."""
        tx_hash = tx.hash
        known = self._known
        gen = self._known_gen
        all_bits = self._all_bits
        value = known.get(tx_hash)
        if value is not None and (value & _GEN_MASK) == gen:
            mask = value >> _GEN_BITS
            if mask & all_bits == all_bits:
                # Every current peer already knows the hash (remove_peer
                # sweeps departing bits, so mask ⊆ all_bits for live peers).
                return
        else:
            value = None
            mask = 0
        unaware = [item for item in self._peer_list if not mask & item[1]]
        if not unaware:
            return
        config = self.config
        if config.announce_only:
            # Bitcoin's propagation model (what TxProbe exploits): hashes
            # first, bodies on request, never unsolicited pushes.
            push_targets: List[Tuple[str, int]] = []
            announce_targets = unaware
        elif config.push_to_all or not config.announce_enabled:
            push_targets = unaware
            announce_targets = []
        else:
            # Inlined random.Random.shuffle: the exact Fisher-Yates of
            # CPython's shuffle, with _randbelow_with_getrandbits expanded
            # in place. Consumes the identical getrandbits sequence, so the
            # permutation — and every later draw — is bit-for-bit the same,
            # without two Python frames per element.
            getrandbits = self._getrandbits
            for i in range(len(unaware) - 1, 0, -1):
                n = i + 1
                k = n.bit_length()
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                unaware[i], unaware[r] = unaware[r], unaware[i]
            n_push = self._push_fanout
            push_targets = unaware[:n_push]
            announce_targets = unaware[n_push:]
        # One table write covers every target: push + announce together
        # span the whole unaware set, so the entry's mask becomes all
        # current peers' bits.
        if value is None:
            known[tx_hash] = (all_bits << _GEN_BITS) | gen
            limit = self._known_tx_limit
            if limit is not None and len(known) > limit:
                self._prune_known()
        else:
            known[tx_hash] = value | (all_bits << _GEN_BITS)
        if push_targets:
            push_queue = self._push_queue
            for peer_id, _bit in push_targets:
                bucket = push_queue.get(peer_id)
                if bucket is None:
                    push_queue[peer_id] = [tx]
                else:
                    bucket.append(tx)
        if announce_targets:
            announce_queue = self._announce_queue
            for peer_id, _bit in announce_targets:
                bucket = announce_queue.get(peer_id)
                if bucket is None:
                    announce_queue[peer_id] = [tx_hash]
                else:
                    bucket.append(tx_hash)
        if not self._flush_scheduled:
            self._schedule_flush()

    def _schedule_flush(self) -> None:
        if self._flush_scheduled:
            return
        self._flush_scheduled = True
        self.sim.schedule(self._broadcast_interval, self._flush, self._flush_label)

    def _flush(self) -> None:
        self._flush_scheduled = False
        peers = self.peers
        network = self.network
        if network is None:
            raise NodeDetachedError(self.id)
        my_id = self.id
        push_queue, self._push_queue = self._push_queue, {}
        announce_queue, self._announce_queue = self._announce_queue, {}
        # One Network.send_batch call per flush instead of a Network.send
        # per peer: the transport resolves this node's index once, draws
        # latencies in the same per-peer order as the old loop, and hands
        # the engine every heap entry in a single push_entries call.
        batch: List[Tuple[str, Message]] = []
        for peer_id, txs in push_queue.items():
            if peer_id in peers:
                batch.append((peer_id, Transactions(txs=tuple(txs))))
        for peer_id, hashes in announce_queue.items():
            if peer_id in peers:
                batch.append(
                    (peer_id, NewPooledTransactionHashes(hashes=tuple(hashes)))
                )
        if batch:
            network.send_batch(my_id, batch)
        # Opportunistic hold-window hygiene: announcement holds are only
        # ever *read* within their 5 s window, but entries used to pile up
        # one per announced hash until a restart. Sweep the expired ones
        # once the map is big enough to matter.
        requested = self._announce_requested
        if len(requested) >= _ANNOUNCE_PRUNE_THRESHOLD:
            now = self.sim.now
            self._announce_requested = {
                tx_hash: expiry
                for tx_hash, expiry in requested.items()
                if expiry > now
            }

    def _handle_announcement(
        self, from_id: str, msg: NewPooledTransactionHashes
    ) -> None:
        shifted = self._peer_shifted.get(from_id)
        wanted: List[str] = []
        now = self.sim.now
        hold = self._announce_hold
        requested = self._announce_requested
        requested_get = requested.get
        # Membership against the mempool's primary hash index directly:
        # Mempool.__contains__ is one Python frame per announced hash.
        pool_txs = self.mempool._by_hash
        if shifted is not None:
            known = self._known
            known_get = known.get
            gen = self._known_gen
            inserted = False
            for tx_hash in msg.hashes:
                value = known_get(tx_hash)
                if value is not None and (value & _GEN_MASK) == gen:
                    known[tx_hash] = value | shifted
                else:
                    known[tx_hash] = shifted | gen
                    inserted = True
                if tx_hash in pool_txs:
                    continue
                # Within the hold window we do not respond to other
                # announcements of the same transaction (Section 2).
                if requested_get(tx_hash, -1.0) > now:
                    continue
                requested[tx_hash] = now + hold
                wanted.append(tx_hash)
            limit = self._known_tx_limit
            if inserted and limit is not None and len(known) > limit:
                self._prune_known()
        else:
            for tx_hash in msg.hashes:
                if tx_hash in pool_txs:
                    continue
                if requested_get(tx_hash, -1.0) > now:
                    continue
                requested[tx_hash] = now + hold
                wanted.append(tx_hash)
        if wanted:
            self._send(from_id, GetPooledTransactions(hashes=tuple(wanted)))

    def _handle_tx_request(self, from_id: str, msg: GetPooledTransactions) -> None:
        pool_get = self.mempool.get
        available = tuple(
            tx for tx_hash in msg.hashes if (tx := pool_get(tx_hash)) is not None
        )
        if available:
            shifted = self._peer_shifted.get(from_id)
            if shifted is not None:
                known = self._known
                gen = self._known_gen
                for tx in available:
                    tx_hash = tx.hash
                    value = known.get(tx_hash)
                    if value is not None and (value & _GEN_MASK) == gen:
                        known[tx_hash] = value | shifted
                    else:
                        known[tx_hash] = shifted | gen
                limit = self._known_tx_limit
                if limit is not None and len(known) > limit:
                    self._prune_known()
            self._send(from_id, PooledTransactions(txs=available))

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------
    def receive_block(self, from_id: Optional[str], block: Block) -> None:
        """Process a gossiped (or locally mined) block."""
        if from_id is not None:
            state = self.peers.get(from_id)
            if state is not None:
                state.known_blocks.add(block.hash)
        if block.hash in self._seen_blocks:
            return
        self._seen_blocks.add(block.hash)
        if block.number > self.head_number:
            self.head_number = block.number
        for tx in block.txs:
            current = self.confirmed_nonces.get(tx.sender, 0)
            self.confirmed_nonces[tx.sender] = max(current, tx.nonce + 1)
        new_base_fee = (
            block.next_base_fee() if self.config.policy.enforce_base_fee else None
        )
        self.mempool.apply_block(block.txs, new_base_fee=new_base_fee)
        for observer in self.block_observers:
            observer(from_id or "", block)
        # Eager block gossip to peers that have not seen it.
        for peer_id, state in self.peers.items():
            if block.hash not in state.known_blocks:
                state.known_blocks.add(block.hash)
                self._send(peer_id, NewBlock(block=block))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def expire_transactions(self) -> List[Transaction]:
        """Drop transactions older than the policy expiry (Geth's 3 h)."""
        return self.mempool.evict_expired(self.sim.now)

    def _send(self, to_id: str, msg: Message) -> None:
        network = self.network
        if network is None:
            raise NodeDetachedError(self.id)
        network.send(self.id, to_id, msg)

    def __repr__(self) -> str:
        return (
            f"Node({self.id}, client={self.config.policy.name}, "
            f"peers={len(self.peers)}, pool={len(self.mempool)})"
        )
