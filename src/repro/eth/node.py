"""A simulated Ethereum full node.

Models exactly the behaviours TopoShot's correctness argument depends on
(Sections 2 and 5 of the paper):

- **push propagation**: an admitted *pending* transaction is pushed to a
  subset of peers (all of them, or ``ceil(sqrt(n))`` like Geth >= 1.9.11)
  and announced by hash to the rest;
- **announcement protocol**: a peer receiving an announcement requests the
  transaction unless it already has it or requested it within the last
  ``announce_hold`` seconds (5 s in Geth);
- **future transactions are buffered but never forwarded** (the non-default
  ``forwards_future`` flag models the misbehaving testnet nodes the paper's
  pre-processing phase filters out);
- **per-peer known-transaction tracking** so a transaction is never pushed
  back to the peer it came from;
- **batched broadcast**: outgoing pushes are flushed every
  ``broadcast_interval`` seconds in one ``Transactions`` packet per peer,
  like Geth's broadcast loop.

Blocks are forwarded eagerly; on arrival a node advances its confirmed
nonce view and prunes its mempool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.eth.chain import Block
from repro.eth.mempool import AddResult, Mempool
from repro.eth.messages import (
    FindNode,
    GetPooledTransactions,
    Message,
    Neighbors,
    NewBlock,
    NewPooledTransactionHashes,
    PooledTransactions,
    Status,
    Transactions,
)
from repro.eth.policies import GETH, MempoolPolicy
from repro.eth.transaction import Transaction
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.eth.network import Network

TxObserver = Callable[[str, Transaction, AddResult], None]
BlockObserver = Callable[[str, Block], None]


@dataclass(frozen=True)
class NodeConfig:
    """Behavioural knobs of one node.

    ``max_peers=None`` means unlimited (used by supernodes). The default of
    50 active neighbours matches the Geth default quoted in the paper.
    """

    policy: MempoolPolicy = GETH
    max_peers: Optional[int] = 50
    push_to_all: bool = False
    announce_only: bool = False  # Bitcoin-style: no direct pushes at all
    announce_enabled: bool = True
    announce_hold: float = 5.0
    broadcast_interval: float = 0.02
    relays_transactions: bool = True
    forwards_future: bool = False
    echoes_future_to_sender: bool = False  # Rinkeby quirk (Appendix D)
    responds_to_rpc: bool = True
    client_version: str = "Geth/v1.9.25-stable"
    network_id: int = 1

    def with_policy(self, policy: MempoolPolicy) -> "NodeConfig":
        return replace(self, policy=policy)


@dataclass
class PeerState:
    """Per-peer bookkeeping."""

    peer_id: str
    known_txs: Set[str] = field(default_factory=set)
    known_blocks: Set[str] = field(default_factory=set)
    connected_at: float = 0.0


class Node:
    """One Ethereum node attached to a :class:`~repro.eth.network.Network`."""

    def __init__(
        self,
        node_id: str,
        sim: Simulator,
        config: Optional[NodeConfig] = None,
    ) -> None:
        self.id = node_id
        self.sim = sim
        self.config = config or NodeConfig()
        self.network: Optional["Network"] = None
        self.peers: Dict[str, PeerState] = {}
        self.confirmed_nonces: Dict[str, int] = {}
        self.head_number = 0
        self.mempool = Mempool(
            policy=self.config.policy,
            confirmed_nonce=self.confirmed_nonce,
            clock=lambda: self.sim.now,
        )
        self.routing_table: List[str] = []  # inactive neighbours (discovery)
        self.tx_observers: List[TxObserver] = []
        self.block_observers: List[BlockObserver] = []

        self.crashed = False
        self.crash_count = 0
        self._rng = sim.rng.stream(f"node:{node_id}")
        self._push_queue: Dict[str, List[Transaction]] = {}
        self._announce_queue: Dict[str, List[str]] = {}
        self._flush_scheduled = False
        self._announce_requested: Dict[str, float] = {}  # hash -> hold expiry
        self._seen_blocks: Set[str] = set()
        # Client versions learned from DevP2P Status handshakes; this is
        # the public information the paper's service discovery matches
        # frontend web3_clientVersion strings against (Section 6.3).
        self.peer_versions: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Peers
    # ------------------------------------------------------------------
    def can_accept_peer(self) -> bool:
        limit = self.config.max_peers
        return limit is None or len(self.peers) < limit

    def add_peer(self, peer_id: str) -> None:
        if peer_id not in self.peers:
            self.peers[peer_id] = PeerState(peer_id=peer_id, connected_at=self.sim.now)
            if self.network is not None:
                # DevP2P handshake: exchange Status with the new peer.
                self._send(
                    peer_id,
                    Status(
                        client_version=self.config.client_version,
                        network_id=self.config.network_id,
                        head_number=self.head_number,
                    ),
                )

    def remove_peer(self, peer_id: str) -> None:
        self.peers.pop(peer_id, None)
        self._push_queue.pop(peer_id, None)
        self._announce_queue.pop(peer_id, None)
        self.peer_versions.pop(peer_id, None)

    @property
    def peer_ids(self) -> List[str]:
        return list(self.peers)

    @property
    def degree(self) -> int:
        return len(self.peers)

    def knows(self, peer_id: str, tx_hash: str) -> bool:
        """Does this node believe ``peer_id`` already has ``tx_hash``?"""
        state = self.peers.get(peer_id)
        return state is not None and tx_hash in state.known_txs

    def _mark_known(self, peer_id: str, tx_hash: str) -> None:
        state = self.peers.get(peer_id)
        if state is not None:
            state.known_txs.add(tx_hash)

    def forget_known_transactions(self) -> None:
        """Drop per-peer known-tx sets (between measurement iterations)."""
        for state in self.peers.values():
            state.known_txs.clear()
        self._announce_requested.clear()

    # ------------------------------------------------------------------
    # Crash / restart (fault injection)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Take the node down: it neither sends nor receives while crashed.

        The network drops deliveries to/from a crashed node at delivery
        time; links are kept (the TCP sessions re-establish on restart).
        """
        if self.crashed:
            return
        self.crashed = True
        self.crash_count += 1
        self._push_queue.clear()
        self._announce_queue.clear()

    def restart(self) -> None:
        """Bring the node back with volatile state wiped.

        Matches a rebooted client without a transaction journal (the
        paper's testnet targets restart with empty mempools): the mempool
        and all per-peer known-transaction/announcement state are gone;
        the persisted chain view (head, confirmed nonces) survives.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.mempool.clear()
        for state in self.peers.values():
            state.known_txs.clear()
        self._announce_requested.clear()

    # ------------------------------------------------------------------
    # Chain view
    # ------------------------------------------------------------------
    def confirmed_nonce(self, sender: str) -> int:
        return self.confirmed_nonces.get(sender, 0)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle_message(self, from_id: str, msg: Message) -> None:
        """Entry point for all network deliveries."""
        if isinstance(msg, (Transactions, PooledTransactions)):
            for tx in msg.txs:
                self.receive_transaction(from_id, tx)
        elif isinstance(msg, NewPooledTransactionHashes):
            self._handle_announcement(from_id, msg)
        elif isinstance(msg, GetPooledTransactions):
            self._handle_tx_request(from_id, msg)
        elif isinstance(msg, NewBlock):
            self.receive_block(from_id, msg.block)
        elif isinstance(msg, FindNode):
            self._send(from_id, Neighbors(node_ids=tuple(self.routing_table)))
        elif isinstance(msg, Status):
            self.peer_versions[from_id] = msg.client_version
        elif isinstance(msg, Neighbors):
            pass  # discovery responses carry no state at the base node
        else:  # pragma: no cover - defensive
            raise TypeError(f"unhandled message type {type(msg).__name__}")

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def receive_transaction(self, from_id: Optional[str], tx: Transaction) -> AddResult:
        """Admit a transaction arriving from ``from_id`` (None = local RPC)."""
        if from_id is not None:
            self._mark_known(from_id, tx.hash)
        result = self.mempool.add(tx)
        for observer in self.tx_observers:
            observer(from_id or "", tx, result)
        if (
            self.config.echoes_future_to_sender
            and from_id is not None
            and from_id in self.peers
            and result.admitted
            and not result.is_pending
        ):
            # The Rinkeby quirk the paper hit (Appendix D): "when our
            # measurement node M sends future transactions to certain nodes
            # in Rinkeby, these nodes return the same future transactions
            # back to node M."
            self._send(from_id, Transactions(txs=(tx,)))
        if self.config.relays_transactions:
            self._relay(result)
        return result

    def submit_transaction(self, tx: Transaction) -> AddResult:
        """Local submission (eth_sendRawTransaction)."""
        return self.receive_transaction(None, tx)

    def _relay(self, result: AddResult) -> None:
        to_broadcast: List[Transaction] = []
        if result.propagatable:
            to_broadcast.append(result.tx)
        elif result.admitted and self.config.forwards_future:
            # Misbehaving node: forwards future transactions (Section 6.2.1).
            to_broadcast.append(result.tx)
        to_broadcast.extend(result.promoted)
        for tx in to_broadcast:
            self.broadcast_transaction(tx)

    def broadcast_transaction(self, tx: Transaction) -> None:
        """Queue ``tx`` toward every peer not known to have it."""
        unaware = [p for p, s in self.peers.items() if tx.hash not in s.known_txs]
        if not unaware:
            return
        if self.config.announce_only:
            # Bitcoin's propagation model (what TxProbe exploits): hashes
            # first, bodies on request, never unsolicited pushes.
            push_targets: List[str] = []
            announce_targets = unaware
        elif self.config.push_to_all or not self.config.announce_enabled:
            push_targets = unaware
            announce_targets = []
        else:
            self._rng.shuffle(unaware)
            n_push = max(1, math.ceil(math.sqrt(len(self.peers))))
            push_targets = unaware[:n_push]
            announce_targets = unaware[n_push:]
        for peer_id in push_targets:
            self._mark_known(peer_id, tx.hash)
            self._push_queue.setdefault(peer_id, []).append(tx)
        for peer_id in announce_targets:
            self._mark_known(peer_id, tx.hash)
            self._announce_queue.setdefault(peer_id, []).append(tx.hash)
        self._schedule_flush()

    def _schedule_flush(self) -> None:
        if self._flush_scheduled:
            return
        self._flush_scheduled = True
        self.sim.schedule(
            self.config.broadcast_interval, self._flush, label=f"flush:{self.id}"
        )

    def _flush(self) -> None:
        self._flush_scheduled = False
        push_queue, self._push_queue = self._push_queue, {}
        announce_queue, self._announce_queue = self._announce_queue, {}
        for peer_id, txs in push_queue.items():
            if peer_id in self.peers:
                self._send(peer_id, Transactions(txs=tuple(txs)))
        for peer_id, hashes in announce_queue.items():
            if peer_id in self.peers:
                self._send(peer_id, NewPooledTransactionHashes(hashes=tuple(hashes)))

    def _handle_announcement(
        self, from_id: str, msg: NewPooledTransactionHashes
    ) -> None:
        wanted: List[str] = []
        now = self.sim.now
        for tx_hash in msg.hashes:
            self._mark_known(from_id, tx_hash)
            if tx_hash in self.mempool:
                continue
            # Within the hold window we do not respond to other
            # announcements of the same transaction (Section 2).
            if self._announce_requested.get(tx_hash, -1.0) > now:
                continue
            self._announce_requested[tx_hash] = now + self.config.announce_hold
            wanted.append(tx_hash)
        if wanted:
            self._send(from_id, GetPooledTransactions(hashes=tuple(wanted)))

    def _handle_tx_request(self, from_id: str, msg: GetPooledTransactions) -> None:
        available = tuple(
            tx
            for tx_hash in msg.hashes
            if (tx := self.mempool.get(tx_hash)) is not None
        )
        if available:
            for tx in available:
                self._mark_known(from_id, tx.hash)
            self._send(from_id, PooledTransactions(txs=available))

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------
    def receive_block(self, from_id: Optional[str], block: Block) -> None:
        """Process a gossiped (or locally mined) block."""
        if from_id is not None:
            state = self.peers.get(from_id)
            if state is not None:
                state.known_blocks.add(block.hash)
        if block.hash in self._seen_blocks:
            return
        self._seen_blocks.add(block.hash)
        if block.number > self.head_number:
            self.head_number = block.number
        for tx in block.txs:
            current = self.confirmed_nonces.get(tx.sender, 0)
            self.confirmed_nonces[tx.sender] = max(current, tx.nonce + 1)
        new_base_fee = (
            block.next_base_fee() if self.config.policy.enforce_base_fee else None
        )
        self.mempool.apply_block(block.txs, new_base_fee=new_base_fee)
        for observer in self.block_observers:
            observer(from_id or "", block)
        # Eager block gossip to peers that have not seen it.
        for peer_id, state in self.peers.items():
            if block.hash not in state.known_blocks:
                state.known_blocks.add(block.hash)
                self._send(peer_id, NewBlock(block=block))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def expire_transactions(self) -> List[Transaction]:
        """Drop transactions older than the policy expiry (Geth's 3 h)."""
        return self.mempool.evict_expired(self.sim.now)

    def _send(self, to_id: str, msg: Message) -> None:
        if self.network is None:
            raise RuntimeError(f"node {self.id} is not attached to a network")
        self.network.send(self.id, to_id, msg)

    def __repr__(self) -> str:
        return (
            f"Node({self.id}, client={self.config.policy.name}, "
            f"peers={len(self.peers)}, pool={len(self.mempool)})"
        )
