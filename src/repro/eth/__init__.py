"""Ethereum node substrate built from scratch for the TopoShot reproduction.

This subpackage models everything TopoShot's correctness argument touches:

- the account/nonce transaction model (:mod:`repro.eth.transaction`),
- the parameterized mempool with replacement (R), per-account future limit
  (U), eviction pending-floor (P) and capacity (L) exactly as Section 5.1 of
  the paper describes (:mod:`repro.eth.mempool`),
- the five real-client policy presets of Table 3 (:mod:`repro.eth.policies`),
- push + announcement transaction propagation with per-peer known-tx
  de-duplication (:mod:`repro.eth.node`),
- gas-price-priority block production (:mod:`repro.eth.chain`,
  :mod:`repro.eth.miner`),
- Kademlia-style discovery exposing *inactive* neighbours via FIND_NODE
  (:mod:`repro.eth.discovery`), and
- a per-node RPC facade mirroring the queries the paper issues
  (:mod:`repro.eth.rpc`).
"""

from repro.eth.account import Account, Wallet
from repro.eth.chain import Block, Chain
from repro.eth.mempool import AddOutcome, AddResult, Mempool
from repro.eth.miner import Miner
from repro.eth.network import Network
from repro.eth.node import Node, NodeConfig
from repro.eth.policies import (
    ALETH,
    BESU,
    CLIENT_POLICIES,
    GETH,
    NETHERMIND,
    PARITY,
    MempoolPolicy,
)
from repro.eth.supernode import Supernode
from repro.eth.transaction import DynamicFeeTransaction, Transaction

__all__ = [
    "ALETH",
    "Account",
    "AddOutcome",
    "AddResult",
    "BESU",
    "Block",
    "CLIENT_POLICIES",
    "Chain",
    "DynamicFeeTransaction",
    "GETH",
    "Mempool",
    "MempoolPolicy",
    "Miner",
    "NETHERMIND",
    "Network",
    "Node",
    "NodeConfig",
    "PARITY",
    "Supernode",
    "Transaction",
    "Wallet",
]
