"""Ethereum transactions: legacy (gas-price) and EIP-1559 (dynamic-fee).

Prices are expressed in **wei per gas** throughout; helpers convert from
Gwei because the paper quotes Gwei (1 Gwei = 1e9 wei). Transaction identity
(the "hash") is derived deterministically from the signing fields, so a
replacement transaction (same sender+nonce, higher price) has a different
hash, exactly as on the real network.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TransactionError
from repro.eth.account import Account

GWEI = 10**9
INTRINSIC_GAS = 21_000  # plain value transfer


def gwei(amount: float) -> int:
    """Convert a Gwei amount (possibly fractional) to integer wei."""
    return int(round(amount * GWEI))


def to_gwei(wei: int) -> float:
    """Convert wei to Gwei for display."""
    return wei / GWEI


@dataclass(frozen=True)
class Transaction:
    """A legacy Ethereum transaction (pre-EIP-1559 fee semantics).

    ``gas_price`` is wei/gas. ``sender`` and ``to`` are addresses.
    Immutable; the hash is computed once from the identity fields.
    """

    sender: str
    nonce: int
    gas_price: int
    gas_limit: int = INTRINSIC_GAS
    to: str = "0x" + "00" * 20
    value: int = 0
    data_size: int = 0
    hash: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.nonce < 0:
            raise TransactionError("nonce must be non-negative")
        if self.gas_price < 0:
            raise TransactionError("gas price must be non-negative")
        if self.gas_limit < INTRINSIC_GAS:
            raise TransactionError(
                f"gas limit {self.gas_limit} below intrinsic gas {INTRINSIC_GAS}"
            )
        if not self.hash:
            object.__setattr__(self, "hash", self._compute_hash())

    def _compute_hash(self) -> str:
        material = (
            f"{self.sender}|{self.nonce}|{self.gas_price}|{self.gas_limit}"
            f"|{self.to}|{self.value}|{self.data_size}"
        )
        return "0x" + hashlib.blake2b(material.encode(), digest_size=32).hexdigest()

    # ------------------------------------------------------------------
    # Fee API shared with DynamicFeeTransaction
    # ------------------------------------------------------------------
    def bid_price(self, base_fee: int = 0) -> int:
        """Price used for mempool ordering/admission decisions (wei/gas).

        For legacy transactions this is simply the gas price; Appendix E
        notes EIP-1559 pools use the max fee, handled by the subclass.
        """
        return self.gas_price

    def effective_price(self, base_fee: int = 0) -> int:
        """Price actually paid per gas when mined."""
        return self.gas_price

    def is_underpriced_for_base_fee(self, base_fee: int) -> bool:
        """Legacy transactions are droppable when price < base fee (post-1559)."""
        return self.gas_price < base_fee

    @property
    def max_cost_wei(self) -> int:
        """Worst-case cost: gas_limit * price + value."""
        return self.gas_limit * self.gas_price + self.value

    def fee_paid_wei(self, gas_used: Optional[int] = None, base_fee: int = 0) -> int:
        """Fee paid when included, defaulting to intrinsic gas usage."""
        used = INTRINSIC_GAS if gas_used is None else gas_used
        return used * self.effective_price(base_fee)

    def short_hash(self) -> str:
        return self.hash[:10]

    def __repr__(self) -> str:
        return (
            f"Tx({self.short_hash()}, from={self.sender[:8]}.., nonce={self.nonce}, "
            f"price={to_gwei(self.gas_price):.3f}gwei)"
        )


@dataclass(frozen=True)
class DynamicFeeTransaction(Transaction):
    """An EIP-1559 transaction with ``max_fee`` and ``priority_fee`` (wei/gas).

    ``gas_price`` is kept equal to ``max_fee`` so legacy code paths that sort
    by ``gas_price`` behave as Appendix E describes ("the mempool uses the
    max fee to make admission/eviction decisions").
    """

    max_fee: int = 0
    priority_fee: int = 0

    def __post_init__(self) -> None:
        if self.max_fee <= 0:
            object.__setattr__(self, "max_fee", self.gas_price)
        if self.priority_fee < 0:
            raise TransactionError("priority fee must be non-negative")
        if self.priority_fee > self.max_fee:
            raise TransactionError("priority fee cannot exceed max fee")
        object.__setattr__(self, "gas_price", self.max_fee)
        super().__post_init__()

    def _compute_hash(self) -> str:
        material = (
            f"1559|{self.sender}|{self.nonce}|{self.max_fee}|{self.priority_fee}"
            f"|{self.gas_limit}|{self.to}|{self.value}|{self.data_size}"
        )
        return "0x" + hashlib.blake2b(material.encode(), digest_size=32).hexdigest()

    def bid_price(self, base_fee: int = 0) -> int:
        return self.max_fee

    def effective_price(self, base_fee: int = 0) -> int:
        """min(base_fee + priority_fee, max_fee), per EIP-1559."""
        return min(base_fee + self.priority_fee, self.max_fee)

    def is_underpriced_for_base_fee(self, base_fee: int) -> bool:
        """A 1559 transaction whose max fee sits below base fee is dropped."""
        return self.max_fee < base_fee

    def __repr__(self) -> str:
        return (
            f"Tx1559({self.short_hash()}, from={self.sender[:8]}.., "
            f"nonce={self.nonce}, max={to_gwei(self.max_fee):.3f}gwei, "
            f"tip={to_gwei(self.priority_fee):.3f}gwei)"
        )


class TransactionFactory:
    """Convenience builder binding accounts to transactions.

    Keeps nonce bookkeeping in one place: ``transfer`` consumes the account's
    next nonce, while ``replacement`` reuses a given nonce at a bumped price.
    """

    def __init__(self, default_gas_limit: int = INTRINSIC_GAS) -> None:
        self.default_gas_limit = default_gas_limit

    def transfer(
        self,
        account: Account,
        gas_price: int,
        nonce: Optional[int] = None,
        to: str = "0x" + "11" * 20,
        value: int = 0,
    ) -> Transaction:
        """A plain transfer; allocates the account's next nonce by default."""
        used_nonce = account.allocate_nonce() if nonce is None else nonce
        return Transaction(
            sender=account.address,
            nonce=used_nonce,
            gas_price=gas_price,
            gas_limit=self.default_gas_limit,
            to=to,
            value=value,
        )

    def replacement(self, original: Transaction, bump_ratio: float) -> Transaction:
        """Same sender+nonce as ``original`` at ``(1 + bump_ratio)`` the price."""
        if bump_ratio < 0:
            raise TransactionError("bump ratio must be non-negative")
        new_price = int(math.ceil(original.gas_price * (1.0 + bump_ratio)))
        return Transaction(
            sender=original.sender,
            nonce=original.nonce,
            gas_price=new_price,
            gas_limit=original.gas_limit,
            to=original.to,
            value=original.value,
        )

    def future(
        self,
        account: Account,
        gas_price: int,
        nonce_gap: int = 1000,
        index: int = 0,
    ) -> Transaction:
        """A future transaction: nonce far beyond the account's next nonce.

        ``nonce_gap + index`` past the next nonce guarantees it can never
        become pending during an experiment, which is exactly the property
        TopoShot's eviction floods rely on.
        """
        return Transaction(
            sender=account.address,
            nonce=account.peek_nonce() + nonce_gap + index,
            gas_price=gas_price,
            gas_limit=self.default_gas_limit,
        )

    def dynamic_transfer(
        self,
        account: Account,
        max_fee: int,
        priority_fee: int,
        nonce: Optional[int] = None,
    ) -> DynamicFeeTransaction:
        """An EIP-1559 transfer (Appendix E experiments)."""
        used_nonce = account.allocate_nonce() if nonce is None else nonce
        return DynamicFeeTransaction(
            sender=account.address,
            nonce=used_nonce,
            gas_price=max_fee,
            gas_limit=self.default_gas_limit,
            max_fee=max_fee,
            priority_fee=priority_fee,
        )
