"""Blocks and the canonical chain.

The simulator abstracts consensus away: there is a single canonical
:class:`Chain` object, and miners append to it in simulation-time order.
Nodes still *learn* about blocks through gossip, so mempool clean-up happens
at realistic, per-node times.

EIP-1559 base-fee dynamics (Appendix E) follow the real formula: the base
fee moves by up to 1/8 per block toward matching a half-full gas target.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.eth.transaction import Transaction

DEFAULT_BLOCK_GAS_LIMIT = 30_000_000
BASE_FEE_MAX_CHANGE_DENOMINATOR = 8
ELASTICITY_MULTIPLIER = 2


@dataclass(frozen=True)
class Block:
    """One mined block."""

    number: int
    miner: str
    timestamp: float
    txs: Tuple[Transaction, ...]
    gas_limit: int = DEFAULT_BLOCK_GAS_LIMIT
    base_fee: int = 0
    hash: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.hash:
            material = f"{self.number}|{self.miner}|{self.timestamp}|" + ",".join(
                tx.hash for tx in self.txs
            )
            object.__setattr__(
                self,
                "hash",
                "0x" + hashlib.blake2b(material.encode(), digest_size=32).hexdigest(),
            )

    @property
    def gas_used(self) -> int:
        return sum(tx.gas_limit for tx in self.txs)

    @property
    def is_full(self) -> bool:
        """Condition V1 of the non-interference extension: no room left for
        even one more minimal transaction."""
        from repro.eth.transaction import INTRINSIC_GAS

        return self.gas_limit - self.gas_used < INTRINSIC_GAS

    def min_included_price(self) -> Optional[int]:
        """Lowest effective gas price among included transactions (for V2)."""
        if not self.txs:
            return None
        return min(tx.effective_price(self.base_fee) for tx in self.txs)

    def next_base_fee(self) -> int:
        """EIP-1559 base-fee update rule."""
        target = self.gas_limit // ELASTICITY_MULTIPLIER
        if self.base_fee == 0:
            return 0
        if self.gas_used == target:
            return self.base_fee
        delta = self.gas_used - target
        change = (
            self.base_fee * abs(delta) // target // BASE_FEE_MAX_CHANGE_DENOMINATOR
        )
        if delta > 0:
            return self.base_fee + max(change, 1)
        return max(0, self.base_fee - change)

    def __repr__(self) -> str:
        return (
            f"Block(#{self.number}, miner={self.miner}, txs={len(self.txs)}, "
            f"gas={self.gas_used}/{self.gas_limit})"
        )


class Chain:
    """The canonical ledger shared by all miners.

    Tracks confirmed per-sender nonces and total fees, which the cost
    accounting of Section 6.4 reads back.
    """

    def __init__(
        self,
        gas_limit: int = DEFAULT_BLOCK_GAS_LIMIT,
        initial_base_fee: int = 0,
    ) -> None:
        self.blocks: List[Block] = []
        self.gas_limit = gas_limit
        self.base_fee = initial_base_fee
        self.confirmed_nonces: Dict[str, int] = {}
        self.included_hashes: set[str] = set()

    @property
    def height(self) -> int:
        return len(self.blocks)

    @property
    def head(self) -> Optional[Block]:
        return self.blocks[-1] if self.blocks else None

    def confirmed_nonce(self, sender: str) -> int:
        return self.confirmed_nonces.get(sender, 0)

    def append(self, miner: str, timestamp: float, txs: List[Transaction]) -> Block:
        """Seal a block with the given transactions and advance state."""
        block = Block(
            number=self.height + 1,
            miner=miner,
            timestamp=timestamp,
            txs=tuple(txs),
            gas_limit=self.gas_limit,
            base_fee=self.base_fee,
        )
        self.blocks.append(block)
        for tx in txs:
            current = self.confirmed_nonces.get(tx.sender, 0)
            self.confirmed_nonces[tx.sender] = max(current, tx.nonce + 1)
            self.included_hashes.add(tx.hash)
        self.base_fee = block.next_base_fee()
        return block

    def is_included(self, tx_hash: str) -> bool:
        return tx_hash in self.included_hashes

    def fees_paid_by(self, sender_addresses: set[str]) -> int:
        """Total wei paid in fees by a set of senders across all blocks."""
        total = 0
        for block in self.blocks:
            for tx in block.txs:
                if tx.sender in sender_addresses:
                    total += tx.fee_paid_wei(base_fee=block.base_fee)
        return total

    def blocks_in_window(self, start: float, end: float) -> List[Block]:
        """Blocks whose timestamps fall in ``[start, end]`` (for V1/V2)."""
        return [b for b in self.blocks if start <= b.timestamp <= end]
