"""Block production.

A :class:`Miner` wraps one node: at (Poisson) block intervals it fills a
block with the highest-paying pending transactions from its own mempool —
the price-priority rule the non-interference proof of Appendix C relies on —
seals it on the canonical chain, and gossips it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.eth.chain import Block, Chain
from repro.eth.node import Node
from repro.eth.transaction import Transaction
from repro.sim.process import PeriodicProcess


class Miner:
    """Turns a node into a block producer.

    Parameters
    ----------
    node:
        The node whose mempool feeds blocks.
    chain:
        Canonical chain to append to (usually ``network.chain``).
    block_interval:
        Mean seconds between blocks from this miner.
    min_gas_price:
        Inclusion floor in wei/gas; transactions bidding below it are left
        in the pool (miners on real networks ignore dust-priced
        transactions — this is what lets a low ``Y`` keep ``txC`` pending).
    poisson:
        Draw exponential inter-block gaps (default), mimicking PoW.
    """

    def __init__(
        self,
        node: Node,
        chain: Chain,
        block_interval: float = 15.0,
        min_gas_price: int = 0,
        poisson: bool = True,
    ) -> None:
        self.node = node
        self.chain = chain
        self.min_gas_price = min_gas_price
        self.blocks_mined: List[Block] = []
        self._process = PeriodicProcess(
            node.sim,
            interval=block_interval,
            action=self.mine_block,
            poisson=poisson,
            rng_name=f"miner:{node.id}",
            label=f"mine:{node.id}",
        )

    def start(self, initial_delay: Optional[float] = None) -> None:
        self._process.start(initial_delay)

    def stop(self) -> None:
        self._process.stop()

    @property
    def running(self) -> bool:
        return self._process.running

    def build_block_transactions(self) -> List[Transaction]:
        """Select transactions: best-paying first, up to the block gas limit."""
        base_fee = self.chain.base_fee
        selected: List[Transaction] = []
        gas_remaining = self.chain.gas_limit
        for tx in self.node.mempool.pending_by_price_desc():
            if tx.effective_price(base_fee) < self.min_gas_price:
                continue
            if tx.gas_limit > gas_remaining:
                continue
            if self.chain.is_included(tx.hash):
                continue
            if self.node.config.policy.enforce_base_fee and tx.bid_price(
                base_fee
            ) < base_fee:
                continue
            selected.append(tx)
            gas_remaining -= tx.gas_limit
        return selected

    def mine_block(self) -> Block:
        """Seal the next block and gossip it to the network."""
        txs = self.build_block_transactions()
        block = self.chain.append(self.node.id, self.node.sim.now, txs)
        self.blocks_mined.append(block)
        # The miner learns its own block locally, then gossips it.
        self.node.receive_block(None, block)
        return block
