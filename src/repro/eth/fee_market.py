"""A live fee market: dynamic floor, surge multiplier, base/tip split.

The animica mempool spec (SNIPPETS.md, ``mempool/fee_market.py``) describes
the market the replacement primitive must keep working against on a busy
chain: the admission *floor* tracks the pool watermark (what the cheapest
buffered traffic pays), a *surge multiplier* raises the *quoted* price for
prompt inclusion as pools approach capacity, and every offered price
decomposes into the protocol *base* fee plus the miner *tip*. TopoShot's
measurement prices ``txB = (1 - R/2) * Y`` sit deliberately low, so a
rising floor is exactly the failure mode Section 6.3's workload-adaptive Y
estimation has to clear — :func:`min_measurement_y` is that clearance,
used by ``core/gas_estimator.py`` and ``core/adaptive.py``.

Admission and quoting are deliberately distinct prices. The *admission
floor* is what a pool will buffer at all: a slightly discounted watermark,
the way Geth's ``--txpool.pricelimit`` plus its eviction economics work —
you may enter near the bottom of the pool; you just become the next
eviction candidate. The *quote* (``floor x surge``) is what the oracle
tells wallets to bid for prompt service. Conflating the two (surging the
admission floor itself) creates a positive feedback loop on a saturated
network: content admitted at the surged floor raises the next watermark,
which surges again — the floor ratchets without bound and starves the
refill traffic the measurement preconditions depend on.

Design constraints, in order:

- **Deterministic.** The market holds no RNG. Its trajectory is a pure
  function of the simulated clock and the sampled pools' contents, both of
  which are seed-deterministic — the fee-market determinism test pins this.
- **Pull-based.** No daemon events: the floor is recomputed lazily when
  queried (rate-limited by ``update_interval`` against the clock), so an
  installed market adds nothing to the event queue and composes with
  :meth:`repro.eth.network.Network.snapshot` (which requires a drained
  queue) without special cases.
- **Opt-in.** A :class:`~repro.eth.mempool.Mempool` only consults the
  market when one has been attached (``Network.install_fee_market``); the
  default path runs the exact seed machine code, which is what keeps the
  golden determinism fingerprints byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import MempoolError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.eth.network import Network
    from repro.eth.node import Node


@dataclass(frozen=True)
class FeeMarketConfig:
    """Knobs of the live fee market (see ``docs/workloads.md``).

    Parameters
    ----------
    min_floor:
        Absolute admission floor in wei when pools are empty or quiet.
    floor_percentile:
        The pool-watermark percentile the dynamic floor tracks — the same
        "living on borrowed time" quantile as
        :func:`repro.core.adaptive.pool_waterline`.
    admission_discount:
        Fraction of the watermark a transaction must bid to be *buffered*
        at all. Strictly below 1.0 leaves headroom so steady-state refill
        traffic drawn from the same price distribution keeps clearing the
        floor (no ratchet); 1.0 means "beat the watermark exactly".
    target_occupancy:
        Pool fill fraction above which surge pricing engages.
    max_surge:
        Multiplier applied to the *quote* (not the admission floor) when
        sampled pools are at 100% occupancy; surge ramps linearly from 1.0
        at ``target_occupancy``.
    update_interval:
        Minimum simulated seconds between floor recomputations (the lazy
        pull cadence).
    history_limit:
        Bounded count of retained ``(time, floor, surge, occupancy)``
        samples for post-hoc surge-band verification
        (:func:`repro.core.noninterference.check_surge_band`).
    """

    min_floor: int = 10**8  # 0.1 gwei
    floor_percentile: float = 0.1
    admission_discount: float = 0.9
    target_occupancy: float = 0.8
    max_surge: float = 4.0
    update_interval: float = 1.0
    history_limit: int = 4096

    def __post_init__(self) -> None:
        if self.min_floor < 0:
            raise MempoolError("min_floor must be non-negative")
        if not 0 <= self.floor_percentile < 1:
            raise MempoolError("floor_percentile must be in [0, 1)")
        if not 0 < self.admission_discount <= 1:
            raise MempoolError("admission_discount must be in (0, 1]")
        if not 0 < self.target_occupancy < 1:
            raise MempoolError("target_occupancy must be in (0, 1)")
        if self.max_surge < 1.0:
            raise MempoolError("max_surge must be >= 1.0")
        if self.update_interval <= 0:
            raise MempoolError("update_interval must be positive")
        if self.history_limit < 1:
            raise MempoolError("history_limit must be >= 1")


class FeeMarket:
    """Shared per-network fee market driven by sampled pool watermarks.

    One instance serves every mempool of a network so the admission floor
    is consistent network-wide, the way a public fee oracle is. Bind it to
    sample nodes with :meth:`bind` (``Network.install_fee_market`` does
    this), then query :meth:`floor_for`.
    """

    def __init__(self, config: Optional[FeeMarketConfig] = None) -> None:
        self.config = config or FeeMarketConfig()
        self._sample_nodes: List["Node"] = []
        self._chain = None
        # Current market state. ``floor`` is the admission floor (what a
        # pool buffers); ``quote`` is the surge-priced suggestion for
        # prompt inclusion (floor x surge).
        self.floor: int = self.config.min_floor
        self.quote: int = self.config.min_floor
        self.surge: float = 1.0
        self.occupancy: float = 0.0
        self.updates: int = 0
        self._last_update: Optional[float] = None
        # Bounded (time, floor, surge, occupancy) trail for the post-hoc
        # surge-band check; floors here are *admission* floors.
        self.history: List[Tuple[float, int, float, float]] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, network: "Network", sample: Optional[Sequence[str]] = None,
             max_samples: int = 8) -> None:
        """Resolve the pools the floor is computed from.

        By default up to ``max_samples`` measurable nodes, evenly spaced
        over the id space — sampling keeps one update O(sample pools), not
        O(network), which is what makes the lazy pull affordable at 50k
        nodes.
        """
        if sample is None:
            ids = network.measurable_node_ids() or network.node_ids
            if len(ids) > max_samples:
                step = len(ids) / max_samples
                sample = [ids[int(i * step)] for i in range(max_samples)]
            else:
                sample = list(ids)
        self._sample_nodes = [network.node(nid) for nid in sample]
        self._chain = network.chain

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def floor_for(self, now: float) -> int:
        """The admission floor at simulated time ``now``.

        Recomputes from the sampled pools at most once per
        ``update_interval``; between updates the last floor holds (a real
        oracle quotes at a cadence too).
        """
        last = self._last_update
        if last is None or now - last >= self.config.update_interval:
            self._recompute(now)
        return self.floor

    def quote_for(self, now: float) -> int:
        """The surge-priced quote for prompt inclusion at ``now``.

        This is what a wallet or workload generator should bid; admission
        only requires :meth:`floor_for`.
        """
        self.floor_for(now)
        return self.quote

    def refresh(self, now: float) -> int:
        """Force a recomputation, bypassing the rate limit.

        Bulk pool mutations at one simulated instant (``prefill_mempools``
        compressing hours of organic traffic into zero simulated seconds)
        would otherwise leave every same-instant query serving the
        pre-mutation floor. Returns the fresh admission floor.
        """
        self._recompute(now)
        return self.floor

    def split(self, price: int) -> Tuple[int, int]:
        """Decompose an offered ``price`` into (base fee, tip).

        The base component is capped at the offered price: a transaction
        bidding below the protocol base fee carries no tip at all (and will
        be rejected by base-fee-enforcing pools anyway).
        """
        base_fee = self._chain.base_fee if self._chain is not None else 0
        base = min(price, base_fee)
        return base, price - base

    def floor_trajectory(
        self, t1: float, t2: float
    ) -> List[Tuple[float, int, float, float]]:
        """History samples with ``t1 <= time <= t2`` (surge-band checks)."""
        return [entry for entry in self.history if t1 <= entry[0] <= t2]

    # ------------------------------------------------------------------
    # Update
    # ------------------------------------------------------------------
    def _recompute(self, now: float) -> None:
        cfg = self.config
        watermarks: List[int] = []
        occupancy_sum = 0.0
        sampled = 0
        for node in self._sample_nodes:
            pool = node.mempool
            capacity = pool.policy.capacity
            if capacity <= 0:
                continue
            sampled += 1
            occupancy_sum += min(1.0, len(pool) / capacity)
            prices = sorted(pool.pending_prices())
            if prices:
                index = min(
                    len(prices) - 1, int(cfg.floor_percentile * len(prices))
                )
                watermarks.append(prices[index])
        occupancy = occupancy_sum / sampled if sampled else 0.0
        # Admission floor: the median sampled watermark (median over
        # samples resists one outlier pool a spam flood just filled),
        # discounted so steady-state refill traffic keeps clearing it,
        # never below the configured minimum.
        if watermarks:
            watermarks.sort()
            watermark = watermarks[len(watermarks) // 2]
            floor = max(cfg.min_floor, int(watermark * cfg.admission_discount))
        else:
            floor = cfg.min_floor
        # Surge multiplier: 1.0 up to the target occupancy, then a linear
        # ramp to max_surge at 100%. Surge prices the *quote*, never the
        # admission floor — see the module docstring for the ratchet this
        # avoids.
        if occupancy > cfg.target_occupancy:
            span = 1.0 - cfg.target_occupancy
            surge = 1.0 + (occupancy - cfg.target_occupancy) / span * (
                cfg.max_surge - 1.0
            )
            surge = min(cfg.max_surge, surge)
        else:
            surge = 1.0
        self.occupancy = occupancy
        self.surge = surge
        self.floor = floor
        self.quote = int(floor * surge)
        self.updates += 1
        self._last_update = now
        history = self.history
        history.append((now, self.floor, surge, occupancy))
        if len(history) > cfg.history_limit:
            del history[: len(history) - cfg.history_limit]

    # ------------------------------------------------------------------
    # Snapshot/reset (see repro.eth.network.Network.snapshot)
    # ------------------------------------------------------------------
    def capture_state(self) -> Dict[str, object]:
        return {
            "floor": self.floor,
            "quote": self.quote,
            "surge": self.surge,
            "occupancy": self.occupancy,
            "updates": self.updates,
            "last_update": self._last_update,
            "history": list(self.history),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self.floor = state["floor"]
        self.quote = state.get("quote", state["floor"])
        self.surge = state["surge"]
        self.occupancy = state["occupancy"]
        self.updates = state["updates"]
        self._last_update = state["last_update"]
        self.history = list(state["history"])


def min_measurement_y(floor: int, replace_bump: float) -> int:
    """The smallest measurement price Y whose cheapest probe clears ``floor``.

    The primitive's lowest-priced transaction is ``txB = (1 - R/2) * Y``;
    under a live floor every probe must be admissible, so
    ``Y >= floor / (1 - R/2)`` (rounded up to an exact wei amount).
    """
    denom = 1.0 - replace_bump / 2.0
    if denom <= 0:
        raise MempoolError("replace_bump must be < 2")
    y = int(floor / denom)
    # Round up until (1 - R/2) * y actually clears the floor under the same
    # integer pricing the config builders use.
    while int(y * denom) < floor:
        y += 1
    return y
