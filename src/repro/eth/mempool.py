"""The parameterized mempool of Section 5.1.

A transaction of sender ``s`` is **pending** (executable) when the nonces of
``s``'s transactions in the pool form a contiguous run starting at ``s``'s
confirmed chain nonce and the transaction belongs to that run; otherwise it
is a **future** transaction. Future transactions are buffered but never
forwarded by well-behaved nodes.

Admission of an incoming transaction ``tx1`` follows the paper's model:

- same sender and nonce as a stored ``tx2``: **replacement** iff
  ``price(tx1) >= (1 + R) * price(tx2)``;
- otherwise, if the pool is full, **eviction** makes room:

  - an incoming *future* transaction may evict the lowest-priced pending
    transaction iff its price is higher, more than ``P`` pending
    transactions are buffered, and the sender holds fewer than ``U``
    transactions in the pool;
  - an incoming *pending* transaction first evicts the lowest-priced future
    transaction (executable work is worth more than queued work — this is
    how ``txB`` at ``(1 - R/2) * Y`` enters a pool that TopoShot just filled
    with ``(1 + R) * Y`` futures, making the Figure 2 workflow coherent;
    real clients likewise shed queued transactions before executable ones);
    lacking futures it falls back to the price rule against pending ones.

EIP-1559 mode (Appendix E): the pool prices transactions by their max fee
and drops transactions whose max fee falls below the block base fee.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import MempoolError
from repro.eth.policies import GETH, MempoolPolicy
from repro.eth.transaction import Transaction


class AddOutcome(enum.Enum):
    """Result category of offering one transaction to a mempool."""

    ADMITTED_PENDING = "admitted_pending"
    ADMITTED_FUTURE = "admitted_future"
    REPLACED = "replaced"
    REJECTED_KNOWN = "rejected_known"
    REJECTED_STALE_NONCE = "rejected_stale_nonce"
    REJECTED_UNDERPRICED_REPLACEMENT = "rejected_underpriced_replacement"
    REJECTED_FUTURE_LIMIT = "rejected_future_limit"
    REJECTED_POOL_FULL = "rejected_pool_full"
    REJECTED_BASE_FEE = "rejected_base_fee"
    REJECTED_FEE_FLOOR = "rejected_fee_floor"

    # Enum members are singletons, so identity hashing is consistent with
    # their (identity-based) equality — and C-speed, unlike the default
    # name-based Enum hash, which showed up in mempool.add profiles.
    __hash__ = object.__hash__


_ADMITTED = {
    AddOutcome.ADMITTED_PENDING,
    AddOutcome.ADMITTED_FUTURE,
    AddOutcome.REPLACED,
}

# Pre-resolved outcome -> stats-key strings: AddOutcome.value goes through
# enum's DynamicClassAttribute descriptor, far too slow for once-per-add.
_OUTCOME_KEY = {outcome: outcome.value for outcome in AddOutcome}

# Shared immutable default for AddResult.evicted/.promoted: results are
# read-only, and two fresh lists per offered transaction was the second
# largest allocation source after the results themselves.
_NO_TXS: Tuple[Transaction, ...] = ()


class AddResult:
    """Everything that happened when a transaction was offered to the pool.

    A ``__slots__`` class (one is allocated per ``Mempool.add``, the
    hottest allocation in a campaign) with ``admitted``/``propagatable``
    computed eagerly instead of via properties: the relay path reads them
    for every received transaction.
    """

    __slots__ = (
        "tx",
        "outcome",
        "replaced",
        "evicted",
        "promoted",
        "is_pending",
        "admitted",
        "propagatable",
    )

    def __init__(
        self,
        tx: Transaction,
        outcome: AddOutcome,
        replaced: Optional[Transaction] = None,
        evicted: Optional[List[Transaction]] = None,
        promoted: Optional[List[Transaction]] = None,
        is_pending: bool = False,
    ) -> None:
        self.tx = tx
        self.outcome = outcome
        self.replaced = replaced
        self.evicted = _NO_TXS if evicted is None else evicted
        self.promoted = _NO_TXS if promoted is None else promoted
        self.is_pending = is_pending
        admitted = (
            outcome is AddOutcome.ADMITTED_PENDING
            or outcome is AddOutcome.ADMITTED_FUTURE
            or outcome is AddOutcome.REPLACED
        )
        self.admitted = admitted
        # Admitted *and* executable: only these are forwarded to peers.
        self.propagatable = admitted and is_pending

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AddResult({self.tx.short_hash()}, {self.outcome.name}, "
            f"pending={self.is_pending}, evicted={len(self.evicted)}, "
            f"promoted={len(self.promoted)})"
        )


NonceProvider = Callable[[str], int]


class Mempool:
    """An unconfirmed-transaction buffer governed by a :class:`MempoolPolicy`.

    Parameters
    ----------
    policy:
        The R/U/P/L parameter set (see :mod:`repro.eth.policies`).
    confirmed_nonce:
        Callable mapping a sender address to its confirmed chain nonce;
        defaults to "0 for everyone", which suits standalone unit tests.
    clock:
        Callable returning the current time, used to timestamp admissions
        for expiry handling. Defaults to a constant 0.
    """

    def __init__(
        self,
        policy: MempoolPolicy = GETH,
        confirmed_nonce: Optional[NonceProvider] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.policy = policy
        self._confirmed_nonce: NonceProvider = confirmed_nonce or (lambda sender: 0)
        self._clock: Callable[[], float] = clock or (lambda: 0.0)
        self.base_fee: int = 0
        # Live fee market (repro.eth.fee_market), attached opt-in by
        # Network.install_fee_market. None keeps admission on the exact
        # seed code path (golden fingerprints).
        self.fee_market = None
        # Hot-path caches of (immutable) policy attributes.
        self._capacity = policy.capacity
        self._enforce_base_fee = policy.enforce_base_fee
        self._future_limit = policy.future_limit_per_account
        # add_batch defers eviction-heap maintenance: while True,
        # _rebalance_sender records no heap entries and draws no sequence
        # numbers; the batch ends with one _rebuild_price_heaps().
        self._heaps_deferred = False

        self._by_hash: Dict[str, Transaction] = {}
        self._by_sender: Dict[str, Dict[int, Transaction]] = {}
        self._pending: Set[str] = set()
        self._future: Set[str] = set()
        self._added_at: Dict[str, float] = {}
        self._seq = itertools.count()
        # Lazy min-heaps keyed by (price, seq); entries are validated on pop.
        self._pending_heap: List[Tuple[int, int, str]] = []
        self._future_heap: List[Tuple[int, int, str]] = []

        # Counters exposed for tests and experiment bookkeeping.
        self.stats: Dict[str, int] = {outcome.value: 0 for outcome in AddOutcome}
        self.stats["evictions"] = 0

    def set_policy(self, policy: MempoolPolicy) -> None:
        """Swap the governing policy and refresh the hot-path caches.

        The supported way to change a live pool's policy (the Byzantine
        behavior layer swaps in R=0 tables): assigning ``self.policy``
        directly would leave ``_capacity``/``_enforce_base_fee``/
        ``_future_limit`` caching the old table. No transactions are
        re-validated; the new policy governs from the next offer on.
        """
        self.policy = policy
        self._capacity = policy.capacity
        self._enforce_base_fee = policy.enforce_base_fee
        self._future_limit = policy.future_limit_per_account

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_hash)

    def __contains__(self, tx_hash: str) -> bool:
        return tx_hash in self._by_hash

    def get(self, tx_hash: str) -> Optional[Transaction]:
        """Transaction by hash, or None (mirrors eth_getTransactionByHash)."""
        return self._by_hash.get(tx_hash)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def future_count(self) -> int:
        return len(self._future)

    @property
    def is_full(self) -> bool:
        return len(self._by_hash) >= self._capacity

    @property
    def free_slots(self) -> int:
        return max(0, self.policy.capacity - len(self._by_hash))

    def is_pending(self, tx_hash: str) -> bool:
        return tx_hash in self._pending

    def is_future(self, tx_hash: str) -> bool:
        return tx_hash in self._future

    def pending_transactions(self) -> List[Transaction]:
        """All executable transactions (unordered)."""
        return [self._by_hash[h] for h in self._pending]

    def future_transactions(self) -> List[Transaction]:
        """All non-executable transactions (unordered)."""
        return [self._by_hash[h] for h in self._future]

    def all_transactions(self) -> List[Transaction]:
        return list(self._by_hash.values())

    def sender_transaction(self, sender: str, nonce: int) -> Optional[Transaction]:
        """The stored transaction occupying (sender, nonce), if any."""
        nonces = self._by_sender.get(sender)
        return nonces.get(nonce) if nonces is not None else None

    def sender_count(self, sender: str) -> int:
        """How many transactions from ``sender`` are buffered."""
        nonces = self._by_sender.get(sender)
        return len(nonces) if nonces is not None else 0

    def pending_prices(self) -> List[int]:
        """Bid prices of all pending transactions (unsorted)."""
        return [self._by_hash[h].bid_price(self.base_fee) for h in self._pending]

    def stats_snapshot(self) -> Dict[str, int]:
        """Point-in-time copy of admission counters plus occupancy.

        ``stats`` itself is live (and deliberately never reset by
        :meth:`clear`); this copy adds the current ``size``/``pending``/
        ``future`` occupancy so one dict answers both "what happened" and
        "what is buffered now" for observability collectors and tests.
        """
        snapshot = dict(self.stats)
        snapshot["size"] = len(self._by_hash)
        snapshot["pending"] = len(self._pending)
        snapshot["future"] = len(self._future)
        return snapshot

    def median_pending_price(self) -> Optional[int]:
        """Median bid price over pending transactions (Y estimation, §5.2.1)."""
        prices = sorted(self.pending_prices())
        if not prices:
            return None
        mid = len(prices) // 2
        if len(prices) % 2 == 1:
            return prices[mid]
        return (prices[mid - 1] + prices[mid]) // 2

    def pending_by_price_desc(self) -> List[Transaction]:
        """Pending transactions ordered best-paying first (miner's view).

        Within one sender the nonce order is preserved, since a later nonce
        cannot be mined before an earlier one.
        """
        txs = [self._by_hash[h] for h in self._pending]
        txs.sort(key=lambda tx: (-tx.effective_price(self.base_fee), tx.sender, tx.nonce))
        # Stable fix-up: enforce per-sender nonce order.
        seen_nonce: Dict[str, int] = {}
        ordered: List[Transaction] = []
        deferred: Dict[str, List[Transaction]] = {}
        for tx in txs:
            expected = seen_nonce.get(tx.sender, self._confirmed_nonce(tx.sender) or 0)
            if tx.nonce == expected:
                ordered.append(tx)
                seen_nonce[tx.sender] = expected + 1
                queue = deferred.get(tx.sender, [])
                while queue and queue[0].nonce == seen_nonce[tx.sender]:
                    ready = queue.pop(0)
                    ordered.append(ready)
                    seen_nonce[tx.sender] += 1
            else:
                deferred.setdefault(tx.sender, []).append(tx)
                deferred[tx.sender].sort(key=lambda t: t.nonce)
        return ordered

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def add(self, tx: Transaction) -> AddResult:
        """Offer one transaction to the pool and apply the policy."""
        result = self._add_inner(tx)
        stats = self.stats
        stats[_OUTCOME_KEY[result.outcome]] += 1
        if result.evicted:
            stats["evictions"] += len(result.evicted)
        return result

    def add_batch(
        self,
        txs: Iterable[Transaction],
        stop_when_full: bool = False,
    ) -> Dict[str, int]:
        """Offer many transactions with one heap rebuild instead of
        per-transaction heappushes.

        The fast path runs while the pool *cannot* fill mid-chunk
        (``len(pool) + chunk <= capacity``): no eviction is possible, so
        the lazy eviction heaps are not consulted and their maintenance —
        the per-add heappush in ``_rebalance_sender`` — is deferred to a
        single :meth:`_rebuild_price_heaps` at the end. Once the pool can
        fill, the remainder falls back to sequential :meth:`add` (victim
        selection needs live heaps). ``stop_when_full=True`` instead
        replicates the legacy prefill loop exactly: stop offering the
        moment the pool is full, never evict.

        Equivalent to sequential :meth:`add` on every canonical observable
        (transaction set, pending/future split, per-sender views, stats).
        Tie-break order among *equal-priced* eviction candidates follows
        the rebuilt-heap convention (``_by_hash`` insertion order) — the
        same re-keying every base-fee change already performs in
        :meth:`apply_block`.

        Returns this batch's outcome counts (stats-key strings, plus
        ``"evictions"`` when the fallback path evicted).
        """
        if not isinstance(txs, (list, tuple)):
            txs = list(txs)
        counts: Dict[str, int] = {}
        if not txs:
            return counts
        stats = self.stats
        by_hash = self._by_hash
        capacity = self._capacity
        mutated = False
        self._heaps_deferred = True
        try:
            if stop_when_full:
                for tx in txs:
                    if len(by_hash) >= capacity:
                        break
                    result = self._add_inner(tx)
                    key = _OUTCOME_KEY[result.outcome]
                    stats[key] += 1
                    counts[key] = counts.get(key, 0) + 1
                    mutated = mutated or result.admitted
            else:
                i = 0
                n = len(txs)
                while i < n:
                    room = capacity - len(by_hash)
                    if room <= 0:
                        break
                    remaining = n - i
                    chunk_end = i + (remaining if room >= remaining else room)
                    for tx in txs[i:chunk_end]:
                        result = self._add_inner(tx)
                        key = _OUTCOME_KEY[result.outcome]
                        stats[key] += 1
                        counts[key] = counts.get(key, 0) + 1
                        mutated = mutated or result.admitted
                    i = chunk_end
                if i < n:
                    # Pool can now fill: rebuild the heaps the deferred
                    # chunks skipped, then let add() handle eviction.
                    self._heaps_deferred = False
                    if mutated:
                        self._rebuild_price_heaps()
                        mutated = False
                    for tx in txs[i:]:
                        result = self.add(tx)
                        key = _OUTCOME_KEY[result.outcome]
                        counts[key] = counts.get(key, 0) + 1
                        if result.evicted:
                            counts["evictions"] = counts.get(
                                "evictions", 0
                            ) + len(result.evicted)
                    return counts
        finally:
            self._heaps_deferred = False
        if mutated:
            self._rebuild_price_heaps()
        return counts

    def _add_inner(self, tx: Transaction) -> AddResult:
        tx_hash = tx.hash
        if tx_hash in self._by_hash:
            return AddResult(tx, AddOutcome.REJECTED_KNOWN)

        sender = tx.sender
        tx_nonce = tx.nonce
        confirmed = self._confirmed_nonce(sender) or 0
        if tx_nonce < confirmed:
            return AddResult(tx, AddOutcome.REJECTED_STALE_NONCE)

        if self._enforce_base_fee and tx.is_underpriced_for_base_fee(
            self.base_fee
        ):
            return AddResult(tx, AddOutcome.REJECTED_BASE_FEE)

        bid = tx.bid_price(self.base_fee)

        # Live fee-market floor (opt-in; see repro.eth.fee_market). Applied
        # to every offer including replacements, like Geth's underpriced
        # check — which is why measurement prices are clamped so that even
        # txB at (1 - R/2) * Y clears the floor (min_measurement_y).
        market = self.fee_market
        if market is not None and bid < market.floor_for(self._clock()):
            return AddResult(tx, AddOutcome.REJECTED_FEE_FLOOR)

        nonces = self._by_sender.get(sender)

        # --- Replacement path: a stored transaction occupies (sender, nonce).
        occupant = nonces.get(tx_nonce) if nonces is not None else None
        if occupant is not None:
            if not self.policy.replacement_allowed(
                occupant.bid_price(self.base_fee), bid
            ):
                return AddResult(
                    tx, AddOutcome.REJECTED_UNDERPRICED_REPLACEMENT, replaced=None
                )
            self._remove(occupant.hash)
            self._insert(tx)
            promoted = self._rebalance_sender(sender)
            return AddResult(
                tx,
                AddOutcome.REPLACED,
                replaced=occupant,
                promoted=[p for p in promoted if p.hash != tx_hash],
                is_pending=tx_hash in self._pending,
            )

        # _would_be_pending inlined on the `nonces` lookup already in hand.
        if nonces is None:
            will_be_pending = tx_nonce == confirmed
        else:
            nonce = confirmed
            while True:
                if nonce == tx_nonce:
                    will_be_pending = True
                    break
                if nonce not in nonces:
                    will_be_pending = False
                    break
                nonce += 1

        # --- Per-account future limit U.
        if not will_be_pending:
            limit = self._future_limit
            if limit is not None and (
                len(nonces) if nonces is not None else 0
            ) >= limit:
                return AddResult(tx, AddOutcome.REJECTED_FUTURE_LIMIT)

        # --- Eviction path when the pool is full.
        evicted: List[Transaction] = []
        if len(self._by_hash) >= self._capacity:
            victim = self._select_victim(will_be_pending, bid)
            if victim is None:
                return AddResult(tx, AddOutcome.REJECTED_POOL_FULL)
            self._remove(victim.hash)
            self._rebalance_sender(victim.sender)
            evicted.append(victim)

        self._insert(tx)
        promoted = self._rebalance_sender(sender)
        is_pending = tx_hash in self._pending
        outcome = (
            AddOutcome.ADMITTED_PENDING if is_pending else AddOutcome.ADMITTED_FUTURE
        )
        return AddResult(
            tx,
            outcome,
            evicted=evicted,
            promoted=[p for p in promoted if p.hash != tx_hash],
            is_pending=is_pending,
        )

    def _would_be_pending(self, tx: Transaction, confirmed: int) -> bool:
        """Would ``tx`` be executable immediately after insertion?"""
        nonces = self._by_sender.get(tx.sender, {})
        nonce = confirmed
        while True:
            if nonce == tx.nonce:
                return True
            if nonce not in nonces:
                return False
            nonce += 1

    def _select_victim(
        self, incoming_is_pending: bool, incoming_bid: int
    ) -> Optional[Transaction]:
        """Pick the transaction a full pool sheds for the incoming one."""
        if incoming_is_pending:
            future_victim = self._peek_lowest(self._future_heap, self._future)
            if future_victim is not None:
                return future_victim
            return self._pending_victim(incoming_bid)
        # Incoming future transactions may only displace pending ones
        # (the paper's eviction template), and only above the P floor.
        return self._pending_victim(incoming_bid)

    def _pending_victim(self, incoming_bid: int) -> Optional[Transaction]:
        if self.pending_count <= self.policy.eviction_pending_floor:
            return None
        victim = self._peek_lowest(self._pending_heap, self._pending)
        if victim is None:
            return None
        if victim.bid_price(self.base_fee) >= incoming_bid:
            return None
        return victim

    def _peek_lowest(
        self, heap: List[Tuple[int, int, str]], live: Set[str]
    ) -> Optional[Transaction]:
        """Lowest-priced live transaction in a lazy heap."""
        while heap:
            _, _, tx_hash = heap[0]
            if tx_hash in live:
                return self._by_hash[tx_hash]
            heapq.heappop(heap)
        return None

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _insert(self, tx: Transaction) -> None:
        self._by_hash[tx.hash] = tx
        self._by_sender.setdefault(tx.sender, {})[tx.nonce] = tx
        self._added_at[tx.hash] = self._clock()

    def _remove(self, tx_hash: str) -> Transaction:
        tx = self._by_hash.pop(tx_hash)
        sender_txs = self._by_sender[tx.sender]
        del sender_txs[tx.nonce]
        if not sender_txs:
            del self._by_sender[tx.sender]
        self._pending.discard(tx_hash)
        self._future.discard(tx_hash)
        self._added_at.pop(tx_hash, None)
        return tx

    def _rebalance_sender(self, sender: str) -> List[Transaction]:
        """Recompute pending/future split for one sender.

        Returns transactions newly *promoted* to pending (they must be
        propagated by the owning node, like Geth's promoteExecutables).
        """
        nonces = self._by_sender.get(sender)
        promoted: List[Transaction] = []
        if not nonces:
            return promoted
        confirmed = self._confirmed_nonce(sender) or 0
        pending_run: Set[str] = set()
        nonce = confirmed
        while nonce in nonces:
            pending_run.add(nonces[nonce].hash)
            nonce += 1
        # Inside add_batch the heaps are rebuilt wholesale at the end, so
        # per-transaction pushes (and their sequence draws) are skipped.
        deferred = self._heaps_deferred
        for tx in nonces.values():
            currently_pending = tx.hash in self._pending
            should_be_pending = tx.hash in pending_run
            if should_be_pending and not currently_pending:
                self._future.discard(tx.hash)
                self._pending.add(tx.hash)
                if not deferred:
                    heapq.heappush(
                        self._pending_heap,
                        (tx.bid_price(self.base_fee), next(self._seq), tx.hash),
                    )
                promoted.append(tx)
            elif not should_be_pending and currently_pending:
                self._pending.discard(tx.hash)
                self._future.add(tx.hash)
                if not deferred:
                    heapq.heappush(
                        self._future_heap,
                        (tx.bid_price(self.base_fee), next(self._seq), tx.hash),
                    )
            elif tx.hash not in self._pending and tx.hash not in self._future:
                # Fresh insertion.
                if should_be_pending:
                    self._pending.add(tx.hash)
                    if not deferred:
                        heapq.heappush(
                            self._pending_heap,
                            (tx.bid_price(self.base_fee), next(self._seq), tx.hash),
                        )
                    promoted.append(tx)
                else:
                    self._future.add(tx.hash)
                    if not deferred:
                        heapq.heappush(
                            self._future_heap,
                            (tx.bid_price(self.base_fee), next(self._seq), tx.hash),
                        )
        return promoted

    # ------------------------------------------------------------------
    # Chain events
    # ------------------------------------------------------------------
    def remove_transaction(self, tx_hash: str) -> Optional[Transaction]:
        """Explicitly drop a transaction (test hook / RPC txpool eviction)."""
        if tx_hash not in self._by_hash:
            return None
        tx = self._remove(tx_hash)
        self._rebalance_sender(tx.sender)
        return tx

    def apply_block(
        self, included: Iterable[Transaction], new_base_fee: Optional[int] = None
    ) -> List[Transaction]:
        """Process a mined block: drop included and stale transactions.

        The caller must have advanced the confirmed-nonce provider first.
        Returns every transaction dropped from the pool. If ``new_base_fee``
        is given and the policy enforces base fees, under-priced
        transactions are dropped as well (Appendix E).
        """
        dropped: List[Transaction] = []
        touched_senders: Set[str] = set()
        for tx in included:
            touched_senders.add(tx.sender)
            if tx.hash in self._by_hash:
                dropped.append(self._remove(tx.hash))
        # Drop now-stale nonces of every touched sender.
        for sender in touched_senders:
            confirmed = self._confirmed_nonce(sender) or 0
            stale = [
                tx
                for nonce, tx in self._by_sender.get(sender, {}).items()
                if nonce < confirmed
            ]
            for tx in stale:
                dropped.append(self._remove(tx.hash))
            self._rebalance_sender(sender)
        if new_base_fee is not None:
            base_fee_changed = new_base_fee != self.base_fee
            self.base_fee = new_base_fee
            if self.policy.enforce_base_fee:
                dropped.extend(self._drop_underpriced(new_base_fee))
            if base_fee_changed:
                # The lazy eviction heaps are keyed by bid_price(base_fee)
                # at push time; a base-fee change invalidates every stored
                # key, so _peek_lowest could hand eviction a non-lowest
                # victim and break the isolation argument (Appendix E).
                self._rebuild_price_heaps()
        return dropped

    def _rebuild_price_heaps(self) -> None:
        """Re-key both eviction heaps under the current ``base_fee``.

        Iterates ``_by_hash`` (insertion-ordered) rather than the
        pending/future hash *sets* so that re-assigned tie-breaker
        sequence numbers — and therefore victim selection among
        equal-priced transactions — stay identical across processes.
        """
        base_fee = self.base_fee
        pending_entries: List[Tuple[int, int, str]] = []
        future_entries: List[Tuple[int, int, str]] = []
        pending = self._pending
        for tx_hash, tx in self._by_hash.items():
            entry = (tx.bid_price(base_fee), next(self._seq), tx_hash)
            if tx_hash in pending:
                pending_entries.append(entry)
            else:
                future_entries.append(entry)
        heapq.heapify(pending_entries)
        heapq.heapify(future_entries)
        self._pending_heap = pending_entries
        self._future_heap = future_entries

    def _drop_underpriced(self, base_fee: int) -> List[Transaction]:
        doomed = [
            tx
            for tx in self._by_hash.values()
            if tx.is_underpriced_for_base_fee(base_fee)
        ]
        for tx in doomed:
            self._remove(tx.hash)
        for sender in {tx.sender for tx in doomed}:
            self._rebalance_sender(sender)
        return doomed

    def clear(self) -> int:
        """Drop every buffered transaction; returns how many were dropped.

        Used by experiment harnesses to model organic pool churn (mining,
        expiry, new traffic) compressed into an instant between measurement
        iterations.
        """
        dropped = len(self._by_hash)
        self._by_hash.clear()
        self._by_sender.clear()
        self._pending.clear()
        self._future.clear()
        self._added_at.clear()
        self._pending_heap.clear()
        self._future_heap.clear()
        return dropped

    def evict_expired(self, now: float) -> List[Transaction]:
        """Drop transactions older than the policy expiry ``e`` (3h in Geth)."""
        cutoff = now - self.policy.expiry_seconds
        doomed = [
            self._by_hash[h]
            for h, added in self._added_at.items()
            if added < cutoff
        ]
        for tx in doomed:
            self._remove(tx.hash)
        for sender in {tx.sender for tx in doomed}:
            self._rebalance_sender(sender)
        return doomed

    # ------------------------------------------------------------------
    # Snapshot/reset (see repro.sim.snapshot)
    # ------------------------------------------------------------------
    def capture_state(self) -> Dict[str, object]:
        """Capture full pool state for later :meth:`restore_state`.

        Transactions are immutable, so shallow container copies suffice.
        The tie-break sequence counter is captured with the read-then-
        recreate trick (a net no-op for the live pool) so that eviction
        order among equal-priced transactions replays identically.
        """
        seq_value = next(self._seq)
        self._seq = itertools.count(seq_value)
        return {
            "base_fee": self.base_fee,
            "by_hash": dict(self._by_hash),
            "by_sender": {
                sender: dict(nonces) for sender, nonces in self._by_sender.items()
            },
            "pending": set(self._pending),
            "future": set(self._future),
            "added_at": dict(self._added_at),
            "seq": seq_value,
            "pending_heap": list(self._pending_heap),
            "future_heap": list(self._future_heap),
            "stats": dict(self.stats),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore a capture taken by :meth:`capture_state`.

        The captured containers are copied, never adopted: one snapshot is
        restored many times (once per shard/sweep point), so handing the
        stored objects to the live pool would let the next run corrupt the
        snapshot. Insertion order of ``_by_hash`` is part of the capture
        (dict copies preserve it) because ``_rebuild_price_heaps`` iterates
        it to assign deterministic tie-breakers.
        """
        self.base_fee = state["base_fee"]
        self._by_hash = dict(state["by_hash"])
        self._by_sender = {
            sender: dict(nonces) for sender, nonces in state["by_sender"].items()
        }
        self._pending = set(state["pending"])
        self._future = set(state["future"])
        self._added_at = dict(state["added_at"])
        self._seq = itertools.count(state["seq"])
        self._pending_heap = list(state["pending_heap"])
        self._future_heap = list(state["future_heap"])
        self.stats = dict(state["stats"])

    # ------------------------------------------------------------------
    # Consistency check (used by property-based tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`MempoolError` if internal state is inconsistent."""
        if len(self._by_hash) > self.policy.capacity:
            raise MempoolError("pool exceeds capacity L")
        if self._pending & self._future:
            raise MempoolError("transaction both pending and future")
        if set(self._by_hash) != self._pending | self._future:
            raise MempoolError("pending/future sets do not cover the pool")
        for sender, nonces in self._by_sender.items():
            confirmed = self._confirmed_nonce(sender) or 0
            run = confirmed
            while run in nonces:
                if nonces[run].hash not in self._pending:
                    raise MempoolError(
                        f"tx {nonces[run].short_hash()} in pending run but "
                        "not marked pending"
                    )
                run += 1
            for nonce, tx in nonces.items():
                if nonce >= run and tx.hash not in self._future:
                    raise MempoolError(
                        f"tx {tx.short_hash()} beyond pending run but not "
                        "marked future"
                    )
                if nonce < confirmed:
                    raise MempoolError("stale nonce retained")
