"""DevP2P-style wire messages exchanged between simulated nodes.

Only the eth-protocol subset that matters for transaction and block
propagation is modeled. ``Transactions`` is the *push* path; the
``NewPooledTransactionHashes`` / ``GetPooledTransactions`` /
``PooledTransactions`` triple is the *announcement* path introduced by
Geth >= 1.9.11 (Section 2 of the paper). ``FindNode``/``Neighbors`` belong
to the discovery protocol (RLPx) and expose *inactive* neighbours only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.eth.chain import Block
    from repro.eth.transaction import Transaction


@dataclass(frozen=True)
class Message:
    """Base class for all wire messages."""

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Transactions(Message):
    """Direct transaction push (eth/6x ``Transactions`` packet)."""

    txs: Tuple["Transaction", ...]


@dataclass(frozen=True)
class NewPooledTransactionHashes(Message):
    """Announcement of pooled transactions by hash."""

    hashes: Tuple[str, ...]


@dataclass(frozen=True)
class GetPooledTransactions(Message):
    """Request for announced transactions."""

    hashes: Tuple[str, ...]


@dataclass(frozen=True)
class PooledTransactions(Message):
    """Response carrying requested transactions."""

    txs: Tuple["Transaction", ...]


@dataclass(frozen=True)
class NewBlock(Message):
    """Full-block propagation."""

    block: "Block"


@dataclass(frozen=True)
class Status(Message):
    """Handshake data: client version string and network id.

    The paper's mainnet study matches ``web3_clientVersion`` strings against
    handshake versions to map service frontends to backend nodes (§6.3).
    """

    client_version: str
    network_id: int = 1
    head_number: int = 0


@dataclass(frozen=True)
class FindNode(Message):
    """RLPx discovery query for routing-table entries (inactive neighbours)."""

    target: str = ""


@dataclass(frozen=True)
class Neighbors(Message):
    """Discovery response: routing-table entries of the queried node."""

    node_ids: Tuple[str, ...] = field(default_factory=tuple)
