"""Network container: nodes, links, message transport and ground truth.

The :class:`Network` owns the simulator, the latency model and the canonical
chain, wires nodes together, and — because it knows the true overlay graph —
provides the ground truth against which TopoShot's measured topology is
scored (the simulator-equivalent of the paper's local-node validation).
"""

from __future__ import annotations

from heapq import heappush
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

import networkx as nx

from repro.errors import (
    LinkExistsError,
    NetworkError,
    NotConnectedError,
    SnapshotError,
    UnknownNodeError,
)
from repro.eth.chain import Chain
from repro.eth.messages import Message
from repro.eth.node import Node, NodeConfig
from repro.obs import NULL, Observability
from repro.sim.engine import Simulator
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.idmap import IdMap
from repro.sim.latency import LatencyModel, UniformLatency
from repro.sim.snapshot import capture_simulator, restore_simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.eth.behaviors import BehaviorMix, BehaviorSet
    from repro.eth.policies import MempoolPolicy
    from repro.sim.invariants import InvariantChecker


class _LinkView:
    """Set-of-frozensets façade over the integer adjacency lists.

    The SoA refactor stores links as ``Network._adj[i] -> {j, ...}`` index
    sets; this view keeps the historical ``network._links`` surface —
    ``frozenset((a, b)) in net._links``, iteration, ``len`` — alive for
    tests and the legacy A/B benchmark engine without materializing a
    parallel set of 2-element frozensets per link.
    """

    __slots__ = ("_network",)

    def __init__(self, network: "Network") -> None:
        self._network = network

    def __contains__(self, link: object) -> bool:
        try:
            a, b = link  # frozenset/tuple of two endpoint ids
        except (TypeError, ValueError):
            return False
        net = self._network
        index = net._index
        ia = index.get(a)
        if ia is None:
            return False
        ib = index.get(b)
        return ib is not None and ib in net._adj[ia]

    def __iter__(self) -> Iterator[FrozenSet[str]]:
        net = self._network
        names = net._names
        for ia, peers in enumerate(net._adj):
            a = names[ia]
            for ib in peers:
                if ia < ib:
                    yield frozenset((a, names[ib]))

    def __len__(self) -> int:
        return self._network._link_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_LinkView({len(self)} links)"


class Network:
    """A simulated Ethereum P2P network (one blockchain overlay).

    Parameters
    ----------
    sim:
        Discrete-event engine; a fresh one is created from ``seed`` if
        omitted.
    latency:
        One-way link latency model (default: uniform 20-120 ms).
    chain:
        Canonical chain shared by the network's miners.
    """

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        latency: Optional[LatencyModel] = None,
        chain: Optional[Chain] = None,
        seed: int = 0,
    ) -> None:
        self.sim = sim or Simulator(seed=seed)
        self.latency = latency or UniformLatency()
        self.chain = chain or Chain()
        self.nodes: Dict[str, Node] = {}
        # SoA core: strings at the API, ints inside. The intern table
        # assigns each node id a dense index in add_node order (stable per
        # generation seed — see repro.sim.idmap); `_node_list` and `_adj`
        # are index-aligned arrays the transport walks instead of
        # string-keyed dicts. `ids.names`/`ids.index` are bound once as
        # `_names`/`_index` for the per-message lookups.
        self.ids = IdMap()
        self._names: List[str] = self.ids.names  # index -> node id
        self._index: Dict[str, int] = self.ids.index  # node id -> index
        self._node_list: List[Node] = []  # index -> Node
        self._adj: List[Set[int]] = []  # index -> neighbor indices
        self._link_count = 0
        # Compat façade: the historical `_links` set-of-frozensets surface
        # (membership/iteration/len), derived from `_adj` on the fly.
        self._links = _LinkView(self)
        # Cached id tuples (satellite of the SoA refactor: node_ids and
        # measurable_node_ids used to rebuild O(N) lists inside campaign
        # hot loops). Invalidated on add_node; the length keys make the
        # caches self-healing if supernode_ids is mutated directly.
        self._node_ids_cache: Optional[Tuple[str, ...]] = None
        self._measurable_cache: Optional[
            Tuple[Tuple[int, int], Tuple[str, ...]]
        ] = None
        # Topology/liveness epoch. Bumped by connect/disconnect and node
        # crash/restart; a message delivered under the epoch it was sent in
        # cannot have lost its link or target, so delivery skips the guard
        # chain entirely in the (overwhelmingly common) quiet case.
        self._epoch = 0
        # Nodes currently down. The delivery fast path additionally
        # requires this to be zero: an *already* crashed target has the
        # same epoch at send and delivery time, yet must still drop.
        self._crashed_count = 0
        self._latency_rng = self.sim.rng.stream("latency")
        # Bound once: these run once per message. The queue/seq bindings
        # let send() inline Simulator.schedule_call's heap push — one
        # Python frame per message saved; safe because the simulator never
        # reassigns either object and transport latency is strictly
        # positive (no schedule-in-the-past check needed).
        self._sim_queue = self.sim._queue
        self._next_seq = self.sim._seq.__next__
        self._latency_random = self._latency_rng.random
        self._deliver_cb = self._deliver
        self.supernode_ids: Set[str] = set()
        self.messages_sent = 0
        self.messages_by_kind: Dict[str, int] = {}
        self.messages_dropped = 0
        self.drops_by_reason: Dict[str, int] = {}
        self.faults: Optional[FaultInjector] = None
        # Byzantine behavior registry (repro.eth.behaviors) and runtime
        # invariant checker (repro.sim.invariants). Both None by default:
        # behaviors patch node instances at install time and the checker
        # replaces _deliver_cb, so an uninstalled network runs the exact
        # hot-path code either way (the repro.obs zero-cost argument).
        self.behaviors: Optional["BehaviorSet"] = None
        self.invariants: Optional["InvariantChecker"] = None
        # Observability hook. NULL (the shared disabled bundle) makes every
        # ``self.obs.emit(...)`` site free; install_observability swaps in a
        # live bundle and registers the pull collectors.
        self.obs: Observability = NULL
        # Live fee market (repro.eth.fee_market). None by default: pools
        # only consult an attached market, so the uninstalled network runs
        # the exact seed admission path (golden fingerprints).
        self.fee_market = None
        # Lazily-built resilient RPC client (repro.eth.rpc). Only consulted
        # when a fault plan carries an RpcFaultPlan; the fault-free path
        # never touches it.
        self._rpc_client = None

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def add_node(self, node: Node, supernode: bool = False) -> Node:
        """Attach a node; ``supernode`` marks measurement infrastructure
        excluded from ground-truth graphs."""
        if node.id in self.nodes:
            raise NetworkError(f"duplicate node id {node.id!r}")
        node.network = self
        self.nodes[node.id] = node
        node.index = self.ids.intern(node.id)
        self._node_list.append(node)
        self._adj.append(set())
        self._node_ids_cache = None
        self._measurable_cache = None
        if node.crashed:
            self._crashed_count += 1
        if supernode:
            self.supernode_ids.add(node.id)
        return node

    def create_node(
        self, node_id: str, config: Optional[NodeConfig] = None
    ) -> Node:
        """Create, attach and return a plain node."""
        return self.add_node(Node(node_id, self.sim, config))

    def node(self, node_id: str) -> Node:
        if node_id not in self.nodes:
            raise UnknownNodeError(node_id)
        return self.nodes[node_id]

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def node_ids(self) -> Tuple[str, ...]:
        """All node ids, add order (cached; nodes are never removed)."""
        cache = self._node_ids_cache
        if cache is None or len(cache) != len(self._names):
            cache = self._node_ids_cache = tuple(self._names)
        return cache

    def measurable_node_ids(self) -> Tuple[str, ...]:
        """All non-supernode node ids (cached against both set sizes)."""
        key = (len(self._names), len(self.supernode_ids))
        cached = self._measurable_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        supers = self.supernode_ids
        ids = tuple(nid for nid in self._names if nid not in supers)
        self._measurable_cache = (key, ids)
        return ids

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def connect(self, a: str, b: str, force: bool = False) -> None:
        """Create the active link a--b.

        Without ``force``, both endpoints must have a free peer slot.
        Supernodes connect with ``force=True`` (the paper's measurement node
        "is set up without bounds on its neighbors").
        """
        if a == b:
            raise NetworkError("cannot connect a node to itself")
        node_a, node_b = self.node(a), self.node(b)
        ia, ib = node_a.index, node_b.index
        adj = self._adj
        if ib in adj[ia]:
            raise LinkExistsError(f"link {a}--{b} already exists")
        if not force and not (node_a.can_accept_peer() and node_b.can_accept_peer()):
            raise NetworkError(f"no free peer slot for link {a}--{b}")
        adj[ia].add(ib)
        adj[ib].add(ia)
        self._link_count += 1
        self._epoch += 1
        node_a.add_peer(b)
        node_b.add_peer(a)

    def disconnect(self, a: str, b: str) -> None:
        ia = self._index.get(a)
        ib = self._index.get(b)
        if ia is None or ib is None or ib not in self._adj[ia]:
            raise NotConnectedError(f"no link {a}--{b}")
        self._adj[ia].discard(ib)
        self._adj[ib].discard(ia)
        self._link_count -= 1
        self._epoch += 1
        self.node(a).remove_peer(b)
        self.node(b).remove_peer(a)

    def are_connected(self, a: str, b: str) -> bool:
        ia = self._index.get(a)
        if ia is None:
            return False
        ib = self._index.get(b)
        return ib is not None and ib in self._adj[ia]

    def neighbors(self, node_id: str) -> List[str]:
        return self.node(node_id).peer_ids

    @property
    def link_count(self) -> int:
        return self._link_count

    def links(self) -> List[FrozenSet[str]]:
        return list(self._links)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def install_faults(self, plan: FaultPlan) -> FaultInjector:
        """Arm a :class:`~repro.sim.faults.FaultPlan` on this network.

        Every subsequent delivery consults the plan (loss, extra delay) and
        its churn/crash processes start running through the event queue.
        Installing a second plan disarms the first.
        """
        if self.faults is not None:
            self.faults.stop()
        self.faults = FaultInjector(self, plan)
        return self.faults

    def clear_faults(self) -> None:
        """Disarm fault injection; the network is perfectly reliable again."""
        if self.faults is not None:
            self.faults.stop()
            self.faults = None

    def node_is_up(self, node_id: str) -> bool:
        """False while ``node_id`` is crashed (fault injection)."""
        return not self.node(node_id).crashed

    def rpc_client(self, policy=None):
        """The network-wide resilient RPC client (lazily built, cached).

        Passing a :class:`~repro.eth.rpc.RpcClientPolicy` replaces the
        cached client (fresh breakers/health); passing ``None`` returns
        the existing one, creating a default-policy client on first use.
        """
        from repro.eth.rpc import ResilientRpcClient

        if policy is not None:
            self._rpc_client = ResilientRpcClient(self, policy)
        elif self._rpc_client is None:
            self._rpc_client = ResilientRpcClient(self)
        return self._rpc_client

    # ------------------------------------------------------------------
    # Live fee market (repro.eth.fee_market)
    # ------------------------------------------------------------------
    def install_fee_market(
        self,
        market=None,
        sample=None,
    ):
        """Attach a shared :class:`~repro.eth.fee_market.FeeMarket`.

        Binds the market to sampled pools and hands the same instance to
        every node's mempool, so the admission floor is consistent
        network-wide. The market is pull-based (no daemon events), which
        is why it composes with :meth:`snapshot`/:meth:`restore` — its
        state rides along in the capture. Pass a pre-configured
        :class:`~repro.eth.fee_market.FeeMarket` (or None for defaults)
        and optionally an explicit ``sample`` node-id list.
        """
        from repro.eth.fee_market import FeeMarket

        if market is None:
            market = FeeMarket()
        market.bind(self, sample=sample)
        self.fee_market = market
        # Supernodes are exempt (the Geth "locals" carve-out): measurement
        # infrastructure prices its own pool; targets enforce the floor.
        supers = self.supernode_ids
        for node in self._node_list:
            if node.id not in supers:
                node.mempool.fee_market = market
        return market

    def clear_fee_market(self) -> None:
        """Detach the fee market; admission reverts to the seed path."""
        self.fee_market = None
        for node in self._node_list:
            node.mempool.fee_market = None

    # ------------------------------------------------------------------
    # Byzantine behaviors (repro.eth.behaviors)
    # ------------------------------------------------------------------
    def install_behaviors(self, mix: "BehaviorMix") -> "BehaviorSet":
        """Install a seed-determined Byzantine behavior assignment.

        Draws the node->kind map from the ``"behaviors"`` RNG stream and
        patches the drawn node instances. Composes with an armed
        :class:`~repro.sim.faults.FaultPlan`; composes with
        :meth:`snapshot`/:meth:`restore` as long as the same behavior set
        stays installed (the snapshot records its signature).
        """
        from repro.eth.behaviors import BehaviorSet, assign_behaviors

        if self.behaviors is not None:
            self.behaviors.uninstall_all()
        behavior_set = BehaviorSet(self, mix)
        for node_id, kind in assign_behaviors(self, mix).items():
            behavior_set.install_on(self.nodes[node_id], kind)
        self.behaviors = behavior_set
        obs = self.obs
        if obs.enabled:
            obs.emit(
                self.sim.now,
                "behaviors",
                "installed",
                f"{len(behavior_set.assignments)} nodes ({mix.describe()})",
            )
        return behavior_set

    def clear_behaviors(self) -> None:
        """Restore every patched node; the network is all-honest again."""
        if self.behaviors is not None:
            self.behaviors.uninstall_all()
            self.behaviors = None

    def conforming_policy(self, node_id: str) -> "MempoolPolicy":
        """The policy ``node_id`` *claims* to run.

        For a node with an installed misbehavior this is its pre-install
        original (the invariant checker's conformance reference); for an
        honest node, its live policy.
        """
        if self.behaviors is not None:
            original = self.behaviors.conforming_policy(node_id)
            if original is not None:
                return original
        return self.node(node_id).mempool.policy

    # ------------------------------------------------------------------
    # Runtime invariants (repro.sim.invariants)
    # ------------------------------------------------------------------
    def install_invariants(
        self, checker: Optional["InvariantChecker"] = None, strict: bool = False
    ) -> "InvariantChecker":
        """Arm a runtime invariant checker on this network's transport.

        Replaces the pre-bound delivery callback with the checker's
        wrapper and registers per-node transaction observers — the
        ``repro.obs`` zero-cost pattern: an uninstalled network executes
        byte-identical hot-path code. Install at a quiescent instant
        (in-flight deliveries keep the previously bound callback).
        """
        from repro.sim.invariants import InvariantChecker

        if self.invariants is not None:
            self.clear_invariants()
        if checker is None:
            checker = InvariantChecker(strict=strict)
        checker.attach(self)
        self._deliver_cb = checker.make_delivery_wrapper(self._deliver)
        self.invariants = checker
        return checker

    def clear_invariants(self) -> None:
        """Disarm the checker; delivery goes back to the direct callback."""
        if self.invariants is not None:
            self.invariants.detach(self)
            self._deliver_cb = self._deliver
            self.invariants = None

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def install_observability(
        self, obs: Optional[Observability] = None, per_node: bool = False
    ) -> Observability:
        """Attach (and return) an observability bundle for the whole stack.

        Registers pull collectors for the engine, transport, mempools,
        supernode observations and fault injector (see
        :mod:`repro.obs.wiring` for the metric catalog), and arms the cold
        push sites (message drops, fault events).  Installing the same
        bundle twice is a no-op; installing a different one replaces the
        hook but leaves the old bundle's collectors intact.
        """
        from repro.obs.wiring import instrument_network

        if obs is None:
            obs = Observability()
        if obs is self.obs:
            return obs
        self.obs = obs
        instrument_network(obs, self, per_node=per_node)
        return obs

    def clear_observability(self) -> None:
        """Detach the bundle; push sites go back to the free NULL sink."""
        self.obs = NULL

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def send(self, from_id: str, to_id: str, msg: Message) -> None:
        """Deliver ``msg`` over the link after a sampled latency.

        The message can still die en route: a lossy link may drop it at
        send time, and a link or endpoint that disappears while it is in
        flight drops it at delivery time (with a ``drop`` trace record).
        """
        index = self._index
        fi = index.get(from_id)
        ti = index.get(to_id)
        if fi is None or ti is None or ti not in self._adj[fi]:
            if to_id not in self.nodes:
                raise UnknownNodeError(to_id)
            raise NotConnectedError(
                f"{from_id} is not connected to {to_id}; cannot send {msg.kind}"
            )
        if self._node_list[fi].crashed:
            self._drop(from_id, to_id, msg, "sender_crashed")
            return
        self.messages_sent += 1
        kind = type(msg).__name__
        by_kind = self.messages_by_kind
        try:
            by_kind[kind] += 1
        except KeyError:
            by_kind[kind] = 1
        # Inlined LatencyModel.__call__: same sample + positivity guard,
        # one Python call less on a once-per-message path. The uniform
        # model (the default) is additionally expanded in place — the type
        # check is exact so subclasses still get their own sample().
        latency = self.latency
        if type(latency) is UniformLatency:
            delay = latency.low + latency._span * self._latency_random()
        else:
            delay = latency.sample(self._latency_rng, from_id, to_id)
        if delay <= 0:
            raise ValueError(f"latency model produced non-positive delay {delay}")
        if self.faults is not None:
            if self.faults.should_drop(from_id, to_id):
                # The injector already traced this as fault:loss.
                self._drop(from_id, to_id, msg, "loss", trace=False)
                return
            delay += self.faults.extra_delay(from_id, to_id)
        # The label tuple is built unconditionally — a tracer/profiler may
        # attach after this message is queued but before it delivers — and
        # the engine formats it to the exact legacy "kind:from->to" string
        # only when someone is observing (see Simulator._execute).
        # Deliveries are never cancelled, so the fire-and-forget entry
        # shape (no Event allocation) is safe here — and the schedule_call
        # frame itself is inlined (see the __init__ bindings).
        sim = self.sim
        heappush(
            self._sim_queue,
            (
                sim._now + delay,
                self._next_seq(),
                self._deliver_cb,
                (fi, ti, msg, self._epoch),
                (kind, from_id, to_id),
            ),
        )
        sim._non_daemon_pending += 1

    def send_batch(
        self, from_id: str, entries: List[Tuple[str, Message]]
    ) -> None:
        """Send several messages from one node in one transport pass.

        Semantically a ``send`` per ``(to_id, msg)`` entry, in order — the
        same counters, the same per-entry latency draws from the same RNG
        stream, the same fault hooks — but the sender is resolved once and
        the heap entries go to the engine in a single
        :meth:`~repro.sim.engine.Simulator.push_entries` call. This is the
        flush path: one call per node per broadcast tick.
        """
        fi = self._index.get(from_id)
        if fi is None:
            raise UnknownNodeError(from_id)
        adj = self._adj[fi]
        index = self._index
        sender_crashed = self._node_list[fi].crashed
        by_kind = self.messages_by_kind
        latency = self.latency
        uniform = type(latency) is UniformLatency
        latency_random = self._latency_random
        next_seq = self._next_seq
        deliver_cb = self._deliver_cb
        epoch = self._epoch
        faults = self.faults
        sim = self.sim
        now = sim._now
        sent = 0
        heap_entries = []
        for to_id, msg in entries:
            ti = index.get(to_id)
            if ti is None:
                raise UnknownNodeError(to_id)
            if ti not in adj:
                raise NotConnectedError(
                    f"{from_id} is not connected to {to_id}; "
                    f"cannot send {msg.kind}"
                )
            if sender_crashed:
                self._drop(from_id, to_id, msg, "sender_crashed")
                continue
            sent += 1
            kind = type(msg).__name__
            try:
                by_kind[kind] += 1
            except KeyError:
                by_kind[kind] = 1
            if uniform:
                delay = latency.low + latency._span * latency_random()
            else:
                delay = latency.sample(self._latency_rng, from_id, to_id)
            if delay <= 0:
                raise ValueError(
                    f"latency model produced non-positive delay {delay}"
                )
            if faults is not None:
                if faults.should_drop(from_id, to_id):
                    self._drop(from_id, to_id, msg, "loss", trace=False)
                    continue
                delay += faults.extra_delay(from_id, to_id)
            heap_entries.append(
                (
                    now + delay,
                    next_seq(),
                    deliver_cb,
                    (fi, ti, msg, epoch),
                    (kind, from_id, to_id),
                )
            )
        self.messages_sent += sent
        if heap_entries:
            sim.push_entries(heap_entries)

    def _deliver(self, fi: int, ti: int, msg: Message, epoch: int = -1) -> None:
        """Deliver a message, guarding against a world that changed in flight.

        ``fi``/``ti`` are intern-table indices (the transport resolved the
        strings at send time); handlers still receive the sender's string
        id. ``epoch`` is the network epoch captured at send time. While it
        still matches, no link was torn down and no node crashed or
        restarted since the send, so the guard chain below cannot fire and
        delivery dispatches straight into the target's per-type handler
        table (skipping the generic :meth:`Node.handle_message` frame).
        Direct callers omit ``epoch`` and always take the guarded path.
        """
        if epoch == self._epoch and not self._crashed_count:
            target = self._node_list[ti]
            handler = target._dispatch.get(msg.__class__)
            if handler is not None:
                handler(self._names[fi], msg)
            else:
                target.handle_message(self._names[fi], msg)
            return
        from_id = self._names[fi]
        to_id = self._names[ti]
        if ti not in self._adj[fi]:
            self._drop(from_id, to_id, msg, "link_vanished")
            return
        target = self._node_list[ti]
        if target.crashed:
            self._drop(from_id, to_id, msg, "target_crashed")
            return
        target.handle_message(from_id, msg)

    def _drop(
        self,
        from_id: str,
        to_id: str,
        msg: Message,
        reason: str,
        trace: bool = True,
    ) -> None:
        """Account for a message that never reached its target."""
        self.messages_dropped += 1
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1
        if trace and self.sim.tracer is not None:
            self.sim.tracer.record(
                self.sim.now, "drop", f"{msg.kind}:{from_id}->{to_id} ({reason})"
            )
        obs = self.obs
        if obs.enabled:
            obs.emit(self.sim.now, "drop", reason, from_id, to_id, msg.kind)

    # ------------------------------------------------------------------
    # Simulation control
    # ------------------------------------------------------------------
    def run(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        self.sim.run_for(duration)

    def settle(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains (network quiescent)."""
        self.sim.run(max_events=max_events)

    # ------------------------------------------------------------------
    # Snapshot/reset
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Freeze the whole network at a quiescent instant.

        Preconditions (each raises :class:`SnapshotError`):

        * the event queue is drained — call :meth:`settle` first;
        * no fault plan is armed — snapshots bound the *common* world, a
          shard arms its own plan after restoring (an armed injector keeps
          daemon events and RNG draws in flight that cannot be frozen).

        Restoring the returned snapshot with :meth:`restore` puts every
        behaviour-relevant bit back: simulator clock/sequence/RNG streams,
        per-node mempools and caches, wallet-independent nonce views,
        topology, epoch, and transport counters. The same snapshot object
        can be restored any number of times.
        """
        if self.faults is not None:
            raise SnapshotError(
                "cannot snapshot with a fault plan armed; clear_faults() "
                "first and install the plan after the snapshot"
            )
        if self.invariants is not None:
            raise SnapshotError(
                "cannot snapshot with an invariant checker installed; "
                "clear_invariants() first and re-install after restoring"
            )
        sim_state = capture_simulator(self.sim)
        # capture_simulator replaced sim._seq; re-bind the inlined-send
        # reference or future sends would keep drawing from the *old*
        # counter while step()/run() draws from the new one — duplicate
        # sequence numbers, and heap ties falling through to comparing
        # callables.
        self._next_seq = self.sim._seq.__next__
        return {
            "sim": sim_state,
            "chain_height": self.chain.height,
            "nodes": {
                node_id: node.capture_state()
                for node_id, node in self.nodes.items()
            },
            # Integer adjacency by index; the idmap capture pins the
            # str<->int bijection the indices are meaningful under (restore
            # refuses a changed node set, so it can only differ if someone
            # re-ordered creation — exactly the corruption to catch).
            "idmap": self.ids.capture(),
            "adjacency": [set(peers) for peers in self._adj],
            "link_count": self._link_count,
            "epoch": self._epoch,
            "supernode_ids": set(self.supernode_ids),
            "messages_sent": self.messages_sent,
            "messages_by_kind": dict(self.messages_by_kind),
            "messages_dropped": self.messages_dropped,
            "drops_by_reason": dict(self.drops_by_reason),
            # Byzantine behaviors compose with snapshots as long as the
            # installed set is the same at capture and restore time; the
            # signature pins that, the state blob rewinds their runtime
            # caches and counters.
            "behaviors_signature": (
                self.behaviors.signature() if self.behaviors is not None else ()
            ),
            "behaviors_state": (
                self.behaviors.capture_state()
                if self.behaviors is not None
                else None
            ),
            # The fee market is pull-based (no queued events), so its
            # scalar state freezes cleanly alongside the pools it reads.
            "fee_market": (
                self.fee_market.capture_state()
                if self.fee_market is not None
                else None
            ),
        }

    def restore(self, snapshot: Dict[str, object]) -> None:
        """Rewind the network to a :meth:`snapshot`.

        The restored world is bit-identical to the captured one for every
        input that influences simulation behaviour, so "restore then run"
        replays exactly what "first run after capture" did. Preconditions
        (each raises :class:`SnapshotError`): no armed fault plan, the same
        node set as at capture time, and an unchanged chain height (mined
        blocks move confirmed nonces outside the snapshot's reach — rebuild
        instead).

        Links and peer sets are written directly rather than through
        :meth:`connect`/:meth:`disconnect`, which would emit Status
        handshakes into the freshly-cleared event queue.
        """
        if self.faults is not None:
            raise SnapshotError(
                "cannot restore with a fault plan armed; clear_faults() first"
            )
        if self.invariants is not None:
            raise SnapshotError(
                "cannot restore with an invariant checker installed; "
                "clear_invariants() first and re-install after restoring"
            )
        current_signature = (
            self.behaviors.signature() if self.behaviors is not None else ()
        )
        if current_signature != snapshot.get("behaviors_signature", ()):
            raise SnapshotError(
                "installed behaviors changed since the snapshot was taken; "
                "a restore would silently mix two adversary models — keep "
                "the same behavior set installed, or rebuild"
            )
        if set(self.nodes) != set(snapshot["nodes"]):
            raise SnapshotError(
                "node set changed since the snapshot was taken; "
                "rebuild the network instead of restoring"
            )
        if self.chain.height != snapshot["chain_height"]:
            raise SnapshotError(
                f"chain advanced since the snapshot (height {self.chain.height} "
                f"!= {snapshot['chain_height']}); rebuild instead of restoring"
            )
        if snapshot["idmap"] != self.ids.capture():
            raise SnapshotError(
                "node id interning table changed since the snapshot was "
                "taken; the captured integer adjacency would be "
                "misinterpreted — rebuild instead of restoring"
            )
        restore_simulator(self.sim, snapshot["sim"])
        self._next_seq = self.sim._seq.__next__
        for node_id, node_state in snapshot["nodes"].items():
            self.nodes[node_id].restore_state(node_state)
        self._adj = [set(peers) for peers in snapshot["adjacency"]]
        self._link_count = snapshot["link_count"]
        self._epoch = snapshot["epoch"]
        self._crashed_count = sum(
            1 for node in self.nodes.values() if node.crashed
        )
        self.supernode_ids = set(snapshot["supernode_ids"])
        self.messages_sent = snapshot["messages_sent"]
        self.messages_by_kind = dict(snapshot["messages_by_kind"])
        self.messages_dropped = snapshot["messages_dropped"]
        self.drops_by_reason = dict(snapshot["drops_by_reason"])
        if self.behaviors is not None:
            state = snapshot.get("behaviors_state")
            if state is not None:
                self.behaviors.restore_state(state)
        if self.fee_market is not None:
            market_state = snapshot.get("fee_market")
            if market_state is not None:
                self.fee_market.restore_state(market_state)

    # ------------------------------------------------------------------
    # Ground truth & hygiene
    # ------------------------------------------------------------------
    def ground_truth_graph(self, include_supernodes: bool = False) -> nx.Graph:
        """The true overlay graph (the hidden information TopoShot infers)."""
        graph = nx.Graph()
        names = self._names
        supers = self.supernode_ids
        for node_id in names:
            if include_supernodes or node_id not in supers:
                graph.add_node(node_id)
        for ia, peers in enumerate(self._adj):
            a = names[ia]
            for ib in peers:
                if ia < ib:
                    b = names[ib]
                    if include_supernodes or (
                        a not in supers and b not in supers
                    ):
                        graph.add_edge(a, b)
        return graph

    def ground_truth_edges(self) -> Set[FrozenSet[str]]:
        """True measurable links (both endpoints non-supernode)."""
        names = self._names
        supers = self.supernode_ids
        edges: Set[FrozenSet[str]] = set()
        for ia, peers in enumerate(self._adj):
            a = names[ia]
            if a in supers:
                continue
            for ib in peers:
                if ia < ib and names[ib] not in supers:
                    edges.add(frozenset((a, names[ib])))
        return edges

    def forget_known_transactions(self) -> None:
        """Clear every node's known-tx state.

        Called between measurement iterations to bound memory; safe because
        broadcasts only happen on admission events, never retroactively.
        """
        for node in self._node_list:
            node.forget_known_transactions()
        if self.invariants is not None:
            # The checker's per-link push/announce/request bookkeeping
            # mirrors the caches just wiped; keep them in lockstep or
            # re-sent traffic would read as violations.
            self.invariants.reset_transient()
        if self.behaviors is not None:
            # Same lockstep argument for spoof-relay runtime caches: stale
            # per-behavior known-hash state surviving an iteration wipe
            # desyncs from the nodes' freshly-bumped tables.
            self.behaviors.reset_runtime_caches()

    def total_mempool_size(self) -> int:
        return sum(len(node.mempool) for node in self.nodes.values())

    def __repr__(self) -> str:
        return (
            f"Network(nodes={len(self.nodes)}, links={self._link_count}, "
            f"t={self.sim.now:.2f}s)"
        )


def fully_connect(network: Network, node_ids: Iterable[str]) -> None:
    """Create every pairwise link among ``node_ids`` (test helper)."""
    ids = list(node_ids)
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            if not network.are_connected(a, b):
                network.connect(a, b, force=True)
