"""Kademlia-style peer discovery (the *platform overlay*).

Each node keeps a routing table of up to 272 **inactive** neighbours — the
Geth default the paper quotes — organized into XOR-distance buckets. The
table is what FIND_NODE exposes, and what the W2 baseline
(:mod:`repro.baselines.findnode`) crawls; it is deliberately much larger
than, and only loosely correlated with, the ~50 *active* neighbours that
TopoShot measures.

The discovery substrate is also what the Ethereum-like topology generator
(:mod:`repro.netgen.ethereum`) uses: active links are dialled out of
routing-table candidates, reproducing the promote-from-buffer behaviour
discussed in Section 6.2.2.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

DEFAULT_TABLE_CAPACITY = 272
BUCKET_COUNT = 16


# node id -> 64-bit Kademlia id. Table fills hash the same few thousand
# short strings millions of times during generation; the cache turns each
# into a dict hit. Entries are ~100 bytes each and node-id populations are
# small (50k ids ≈ 5 MB), so the cache is deliberately unbounded.
_KAD_ID_CACHE: Dict[str, int] = {}


def kademlia_id(node_id: str) -> int:
    """Stable 64-bit Kademlia identifier for a node id string."""
    cached = _KAD_ID_CACHE.get(node_id)
    if cached is None:
        digest = hashlib.blake2b(node_id.encode("utf-8"), digest_size=8).digest()
        cached = _KAD_ID_CACHE[node_id] = int.from_bytes(digest, "big")
    return cached


def xor_distance(a: str, b: str) -> int:
    return kademlia_id(a) ^ kademlia_id(b)


def bucket_index(owner: str, other: str) -> int:
    """Map a peer into one of ``BUCKET_COUNT`` XOR-distance buckets.

    Real Kademlia buckets by log-distance, which concentrates almost all
    peers in the top buckets; Geth compensates with 17 buckets x 16 slots.
    We spread by the distance's low bits instead (a uniformized variant) so
    a small simulated table keeps the bucket/capacity structure without the
    extreme top-bucket skew — the property that matters downstream is the
    bounded, owner-specific candidate subset, not the exact skew.
    """
    distance = xor_distance(owner, other)
    return distance % BUCKET_COUNT


@dataclass
class RoutingTable:
    """A node's DHT routing table of inactive neighbours."""

    owner_id: str
    capacity: int = DEFAULT_TABLE_CAPACITY
    buckets: Dict[int, List[str]] = field(default_factory=dict)

    @property
    def bucket_capacity(self) -> int:
        return max(1, self.capacity // BUCKET_COUNT)

    def entries(self) -> List[str]:
        """All table entries, bucket order."""
        out: List[str] = []
        for index in sorted(self.buckets):
            out.extend(self.buckets[index])
        return out

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self.buckets.values())

    def __contains__(self, node_id: str) -> bool:
        index = bucket_index(self.owner_id, node_id)
        return node_id in self.buckets.get(index, [])

    def add(self, node_id: str) -> bool:
        """Insert ``node_id``; returns False when its bucket is full."""
        if node_id == self.owner_id:
            return False
        index = bucket_index(self.owner_id, node_id)
        bucket = self.buckets.setdefault(index, [])
        if node_id in bucket:
            return False
        if len(bucket) >= self.bucket_capacity:
            return False
        bucket.append(node_id)
        return True

    def fill_from(
        self,
        population: Iterable[str],
        rng: random.Random,
        target_size: Optional[int] = None,
    ) -> int:
        """Populate the table from a shuffled candidate population.

        Returns the number of entries actually inserted.
        """
        target = self.capacity if target_size is None else target_size
        candidates = [nid for nid in population if nid != self.owner_id]
        rng.shuffle(candidates)
        inserted = 0
        for candidate in candidates:
            if len(self) >= target:
                break
            if self.add(candidate):
                inserted += 1
        return inserted

    def fill_from_sampled(
        self,
        population: List[str],
        rng: random.Random,
        target_size: Optional[int] = None,
    ) -> int:
        """Populate the table from a bounded random sample of ``population``.

        :meth:`fill_from` copies and shuffles the whole population per
        table — O(N) each, O(N^2) across a network build, which is what
        capped generation near 5k nodes. Sampling ``3*target + 8``
        candidates (oversampled because bucket caps reject some) keeps the
        per-table cost independent of N. Tables can land slightly under
        ``target`` when many draws share a bucket; the active-link dialling
        loop tolerates that.

        Returns the number of entries actually inserted.
        """
        target = self.capacity if target_size is None else target_size
        size = len(self)
        if size >= target:
            return 0
        k = min(len(population), 3 * target + 8)
        inserted = 0
        for candidate in rng.sample(population, k):
            if candidate == self.owner_id:
                continue
            if self.add(candidate):
                inserted += 1
                size += 1
                if size >= target:
                    break
        return inserted

    def closest(self, target: str, count: int = 16) -> List[str]:
        """The ``count`` entries closest to ``target`` in XOR distance."""
        return sorted(self.entries(), key=lambda nid: xor_distance(nid, target))[
            :count
        ]


def build_routing_tables(
    node_ids: List[str],
    rng: random.Random,
    capacity: int = DEFAULT_TABLE_CAPACITY,
    fast: bool = False,
) -> Dict[str, RoutingTable]:
    """Build a routing table for every node from the global population.

    ``fast=True`` switches to :meth:`RoutingTable.fill_from_sampled` —
    near-linear in the population instead of quadratic, at the cost of a
    *different* (equally seed-deterministic) draw sequence. Keep the
    default for golden/fingerprinted topologies.
    """
    tables: Dict[str, RoutingTable] = {}
    for node_id in node_ids:
        table = RoutingTable(owner_id=node_id, capacity=capacity)
        if fast:
            table.fill_from_sampled(node_ids, rng)
        else:
            table.fill_from(node_ids, rng)
        tables[node_id] = table
    return tables
