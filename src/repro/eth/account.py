"""Externally owned accounts (EOAs) and wallets.

The simulator does not need real ECDSA; an account is a stable 20-byte-style
address plus a local nonce allocator. The :class:`Wallet` manages pools of
accounts the way TopoShot's measurement node does: distinct EOAs for ``txC``
seeds, and ``Z/U`` throwaway accounts for future-transaction floods.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


def _address_from_label(label: str) -> str:
    """Derive a deterministic 0x-prefixed 20-byte hex address from a label."""
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=20).hexdigest()
    return "0x" + digest


@dataclass
class Account:
    """An EOA: an address, a display label and a local next-nonce counter.

    ``next_nonce`` tracks the nonce the *owner* will use for its next
    transaction; the chain's confirmed nonce is tracked separately by
    :class:`repro.eth.chain.Chain`.
    """

    label: str
    address: str = field(default="")
    next_nonce: int = 0
    balance_wei: int = 10**24  # effectively unlimited; overdrafts not modeled

    def __post_init__(self) -> None:
        if not self.address:
            self.address = _address_from_label(self.label)

    def allocate_nonce(self) -> int:
        """Return the next nonce and advance the counter."""
        nonce = self.next_nonce
        self.next_nonce += 1
        return nonce

    def peek_nonce(self) -> int:
        """Next nonce without consuming it."""
        return self.next_nonce

    def __hash__(self) -> int:
        return hash(self.address)

    def __repr__(self) -> str:
        return f"Account({self.label}, nonce={self.next_nonce})"


class Wallet:
    """A namespace of accounts with deterministic addresses.

    Account labels are namespaced by the wallet name so two wallets never
    collide. The wallet hands out *fresh* accounts (never used before) for
    measurement flows that require per-edge sender isolation.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._accounts: Dict[str, Account] = {}
        self._fresh_counter = itertools.count()

    def account(self, label: str) -> Account:
        """Return the account with ``label``, creating it on first use."""
        if label not in self._accounts:
            self._accounts[label] = Account(label=f"{self.name}/{label}")
        return self._accounts[label]

    def fresh_account(self, prefix: str = "acct") -> Account:
        """Create and return an account guaranteed unused by this wallet."""
        label = f"{prefix}-{next(self._fresh_counter)}"
        return self.account(label)

    def fresh_accounts(self, count: int, prefix: str = "acct") -> List[Account]:
        """Create ``count`` fresh accounts."""
        return [self.fresh_account(prefix) for _ in range(count)]

    def capture_state(self) -> Dict[str, object]:
        """Capture nonce allocations for later :meth:`restore_state`.

        The fresh-account counter is captured with the read-then-recreate
        trick so the next `fresh_account` label after a restore matches the
        one that followed the capture.
        """
        counter_value = next(self._fresh_counter)
        self._fresh_counter = itertools.count(counter_value)
        return {
            "nonces": {
                label: account.next_nonce
                for label, account in self._accounts.items()
            },
            "fresh_counter": counter_value,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Rewind the wallet to a capture taken by :meth:`capture_state`.

        Accounts created after the capture are dropped; surviving
        ``Account`` objects are kept (their addresses are label-derived and
        stable) with their nonce counters rewound in place.
        """
        nonces: Dict[str, int] = state["nonces"]
        for label in [l for l in self._accounts if l not in nonces]:
            del self._accounts[label]
        for label, next_nonce in nonces.items():
            self._accounts[label].next_nonce = next_nonce
        self._fresh_counter = itertools.count(state["fresh_counter"])

    def __iter__(self) -> Iterator[Account]:
        return iter(self._accounts.values())

    def __len__(self) -> int:
        return len(self._accounts)

    def __contains__(self, label: str) -> bool:
        return label in self._accounts
