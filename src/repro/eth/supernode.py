"""The measurement supernode.

The paper's measurement node ``M`` "is set up without bounds on its
neighbors, so it can be connected to the majority of the network"
(Section 6). Ours likewise connects to every target with no peer limit,
never relays traffic (pure observer/injector), and records an observation
log answering the question at the heart of Step 4 of the primitive:
*did node B send me transaction txA?*

Announcements count as observations too: a node only announces hashes of
transactions in its own pool, so an announcement is equally strong evidence
of possession (and the supernode bypasses the 5-second announcement hold
that would otherwise mask observations from later announcers — the paper's
instrumented Geth client does the same kind of local-check bypassing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import SendTimeoutError
from repro.eth.messages import (
    FindNode,
    GetPooledTransactions,
    Neighbors,
    NewPooledTransactionHashes,
    Transactions,
)
from repro.eth.node import Node, NodeConfig
from repro.eth.policies import GETH
from repro.eth.transaction import Transaction
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.eth.network import Network


@dataclass(frozen=True)
class Observation:
    """One piece of evidence: ``peer`` possessed ``tx_hash`` at ``time``."""

    time: float
    peer: str
    tx_hash: str
    kind: str  # "push" or "announce"


def supernode_config(client_version: str = "TopoShot/measurement") -> NodeConfig:
    """Configuration for a measurement node: no peer bound, no relaying,
    and a mempool large enough never to interfere with observations."""
    return NodeConfig(
        policy=GETH.with_capacity(1_000_000),
        max_peers=None,
        relays_transactions=False,
        push_to_all=True,
        client_version=client_version,
    )


class Supernode(Node):
    """Measurement node: observer of pushes/announcements, direct injector."""

    def __init__(
        self,
        node_id: str,
        sim: Simulator,
        config: Optional[NodeConfig] = None,
    ) -> None:
        super().__init__(node_id, sim, config or supernode_config())
        self.observations: List[Observation] = []
        self._first_seen: Dict[Tuple[str, str], float] = {}
        self._first_kind: Dict[Tuple[str, str], str] = {}
        # Lifetime totals by evidence kind ("push"/"announce"). Unlike the
        # per-iteration log, these survive clear_observations(), so the
        # observability collectors can report campaign-wide counts.
        self.observation_counts: Dict[str, int] = {}
        self.neighbor_responses: Dict[str, Tuple[str, ...]] = {}
        self.tx_observers.append(self._record_push)

    def _handle_neighbors(self, from_id: str, msg: Neighbors) -> None:
        # Discovery crawling (the W2 baseline): remember who reported
        # which routing-table entries.
        self.neighbor_responses[from_id] = msg.node_ids

    # ------------------------------------------------------------------
    # Observation log
    # ------------------------------------------------------------------
    def _record_push(self, from_id: str, tx: Transaction, _result) -> None:
        if from_id:
            self._record(from_id, tx.hash, "push")

    def _record(self, peer: str, tx_hash: str, kind: str) -> None:
        key = (peer, tx_hash)
        if key not in self._first_seen:
            self._first_seen[key] = self.sim.now
            self._first_kind[key] = kind
            self.observations.append(
                Observation(self.sim.now, peer, tx_hash, kind)
            )
            counts = self.observation_counts
            counts[kind] = counts.get(kind, 0) + 1

    def _handle_announcement(
        self, from_id: str, msg: NewPooledTransactionHashes
    ) -> None:
        # An announcement proves possession; record it for every hash and
        # fetch the bodies we do not have, ignoring the announcement hold.
        wanted = []
        for tx_hash in msg.hashes:
            self._record(from_id, tx_hash, "announce")
            self._mark_known(from_id, tx_hash)
            if tx_hash not in self.mempool:
                wanted.append(tx_hash)
        if wanted:
            self._send(from_id, GetPooledTransactions(hashes=tuple(wanted)))

    def observed_from(self, peer: str, tx_hash: str) -> bool:
        """Did ``peer`` demonstrably possess ``tx_hash``?"""
        return (peer, tx_hash) in self._first_seen

    def first_observation_time(self, peer: str, tx_hash: str) -> Optional[float]:
        return self._first_seen.get((peer, tx_hash))

    def observers_of(self, tx_hash: str) -> Set[str]:
        """Every peer seen possessing ``tx_hash``."""
        return {peer for (peer, h) in self._first_seen if h == tx_hash}

    def observation_kind(self, peer: str, tx_hash: str) -> Optional[str]:
        """How ``peer`` first demonstrated possession: push/announce.

        Feeds the per-edge evidence records the hardened pipeline keeps
        (which message kind returned ``txA``, from whom, at what time).
        """
        return self._first_kind.get((peer, tx_hash))

    def clear_observations(self) -> None:
        """Reset the log between measurement iterations."""
        self.observations.clear()
        self._first_seen.clear()
        self._first_kind.clear()

    # ------------------------------------------------------------------
    # Snapshot/reset (see repro.sim.snapshot)
    # ------------------------------------------------------------------
    def capture_state(self) -> Dict[str, object]:
        state = super().capture_state()
        state["observations"] = list(self.observations)
        state["first_seen"] = dict(self._first_seen)
        state["first_kind"] = dict(self._first_kind)
        state["observation_counts"] = dict(self.observation_counts)
        state["neighbor_responses"] = dict(self.neighbor_responses)
        return state

    def restore_state(self, state: Dict[str, object]) -> None:
        super().restore_state(state)
        self.observations = list(state["observations"])
        self._first_seen = dict(state["first_seen"])
        self._first_kind = dict(state.get("first_kind", {}))
        self.observation_counts = dict(state["observation_counts"])
        self.neighbor_responses = dict(state["neighbor_responses"])

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def send_transactions(self, peer_id: str, txs: Sequence[Transaction]) -> None:
        """Push transactions directly to one peer, bypassing broadcast.

        Order within the packet is preserved on arrival, which Step 2/3 of
        the primitive relies on ("immediately after" the future flood).

        Raises :class:`~repro.errors.SendTimeoutError` when the network's
        fault plan times the injection out; the measurement stack converts
        that into a setup failure and retries with backoff.
        """
        if not txs:
            return
        faults = self.network.faults if self.network is not None else None
        if faults is not None and faults.send_times_out(peer_id):
            raise SendTimeoutError(peer_id, f"injecting {len(txs)} transactions")
        self._send(peer_id, Transactions(txs=tuple(txs)))

    def announce_hashes(self, peer_id: str, hashes: Sequence[str]) -> None:
        """Announce transaction hashes without ever delivering the bodies.

        This is the Bitcoin/TxProbe blocking trick (Section 4.1): a peer
        that requests an announced hash burns its announcement-hold window
        waiting for a body that never comes.
        """
        if hashes:
            self._send(peer_id, NewPooledTransactionHashes(hashes=tuple(hashes)))

    def send_find_node(self, peer_id: str) -> None:
        """Issue an RLPx FIND_NODE-style routing-table query."""
        self._send(peer_id, FindNode())

    def clear_neighbor_responses(self) -> None:
        self.neighbor_responses.clear()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @classmethod
    def join(
        cls,
        network: "Network",
        node_id: str = "supernode-M",
        targets: Optional[Iterable[str]] = None,
    ) -> "Supernode":
        """Create a supernode, attach it and connect it to ``targets``
        (default: every existing node)."""
        supernode = cls(node_id, network.sim)
        network.add_node(supernode, supernode=True)
        target_ids = list(targets) if targets is not None else [
            nid for nid in network.node_ids if nid != node_id
        ]
        for target in target_ids:
            if not network.are_connected(node_id, target):
                network.connect(node_id, target, force=True)
        return supernode
