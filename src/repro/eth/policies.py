"""Mempool policy presets for the five Ethereum clients of Table 3.

The paper profiles real clients with black-box unit tests and reports four
parameters per client (Section 5.1, Tables 2 and 3):

====== ======================================================================
``R``  minimal gas-price bump ratio for an incoming transaction to replace an
       existing one with the same sender and nonce
``U``  max number of future transactions from one account admitted to a pool
``P``  minimal number of pending transactions required before future
       transactions may evict pending ones
``L``  mempool capacity (total transactions)
====== ======================================================================

These presets drive the simulated clients; :mod:`repro.core.profiler`
re-measures them black-box, reproducing Table 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Optional


@dataclass(frozen=True)
class MempoolPolicy:
    """Admission/replacement/eviction parameters of one client's mempool.

    ``future_limit_per_account`` of ``None`` means unlimited (Besu).
    ``expiry_seconds`` is the unconfirmed-transaction lifetime ``e`` used by
    the non-interference analysis (3 hours for Geth).
    """

    name: str
    replace_bump: float  # R, e.g. 0.10 for a 10% price bump
    future_limit_per_account: Optional[int]  # U; None = unlimited
    eviction_pending_floor: int  # P
    capacity: int  # L
    deployment_share: float = 0.0  # fraction of mainnet nodes (Table 3 col. 2)
    expiry_seconds: float = 3 * 3600.0  # e
    enforce_base_fee: bool = False  # EIP-1559 mode (Appendix E)

    def __post_init__(self) -> None:
        if self.replace_bump < 0:
            raise ValueError("replacement bump R must be non-negative")
        if self.capacity <= 0:
            raise ValueError("capacity L must be positive")
        if self.eviction_pending_floor < 0:
            raise ValueError("eviction floor P must be non-negative")
        if (
            self.future_limit_per_account is not None
            and self.future_limit_per_account < 0
        ):
            raise ValueError("future limit U must be non-negative or None")

    @property
    def measurable(self) -> bool:
        """TopoShot needs a non-zero R to build its isolation price band.

        Nethermind and Aleth report R == 0 and are not measurable
        (Section 5.1: "renders our TopoShot unable to work").
        """
        return self.replace_bump > 0

    def replacement_allowed(self, old_price: int, new_price: int) -> bool:
        """True when ``new_price`` may replace ``old_price`` under R.

        With R == 0 an *equal* price suffices, which is the flawed setting
        the paper reported to the Ethereum bug bounty (free re-propagation).
        """
        threshold = old_price * (1.0 + self.replace_bump)
        return new_price + 1e-9 >= threshold

    def scaled(self, capacity: int) -> "MempoolPolicy":
        """A proportionally scaled copy for tractable simulation sizes.

        ``P`` and ``U`` shrink by the same ratio as ``L`` (rounded up so a
        non-zero floor never becomes zero); ``R`` is dimensionless and kept.
        """
        if capacity <= 0:
            raise ValueError("scaled capacity must be positive")
        ratio = capacity / self.capacity
        floor = (
            0
            if self.eviction_pending_floor == 0
            else max(1, math.ceil(self.eviction_pending_floor * ratio))
        )
        limit = self.future_limit_per_account
        if limit is not None:
            limit = max(1, math.ceil(limit * ratio))
        return intern_policy(
            replace(
                self,
                capacity=capacity,
                eviction_pending_floor=floor,
                future_limit_per_account=limit,
            )
        )

    def with_bump(self, replace_bump: float) -> "MempoolPolicy":
        """Copy with a custom R (models non-default ``--txpool.pricebump``)."""
        return intern_policy(replace(self, replace_bump=replace_bump))

    def with_capacity(self, capacity: int) -> "MempoolPolicy":
        """Copy with a custom L, leaving P and U untouched.

        This is the "custom mempool size" non-default setting blamed for
        false negatives in Section 6.1.
        """
        return intern_policy(replace(self, capacity=capacity))

    def with_base_fee_enforcement(self) -> "MempoolPolicy":
        """Copy running in EIP-1559 mode (Appendix E)."""
        return intern_policy(replace(self, enforce_base_fee=True))


# Flyweight registry: a frozen (hashable) policy stands for itself, so
# equal derived policies collapse to one shared instance. At 50k nodes a
# generated network holds a handful of distinct policies, not 50k copies;
# the derived constructors above route every new value through here.
_INTERNED: Dict["MempoolPolicy", "MempoolPolicy"] = {}


def intern_policy(policy: MempoolPolicy) -> MempoolPolicy:
    """Return the canonical shared instance equal to ``policy``."""
    return _INTERNED.setdefault(policy, policy)


# Table 3 of the paper, verbatim. Deployment shares are the second column.
GETH = MempoolPolicy(
    name="geth",
    replace_bump=0.10,
    future_limit_per_account=4096,
    eviction_pending_floor=0,
    capacity=5120,
    deployment_share=0.8324,
)

PARITY = MempoolPolicy(
    name="parity",
    replace_bump=0.125,
    future_limit_per_account=81,
    eviction_pending_floor=2000,
    capacity=8192,
    deployment_share=0.1457,
)

NETHERMIND = MempoolPolicy(
    name="nethermind",
    replace_bump=0.0,
    future_limit_per_account=17,
    eviction_pending_floor=0,
    capacity=2048,
    deployment_share=0.0153,
)

BESU = MempoolPolicy(
    name="besu",
    replace_bump=0.10,
    future_limit_per_account=None,
    eviction_pending_floor=0,
    capacity=4096,
    deployment_share=0.0052,
)

ALETH = MempoolPolicy(
    name="aleth",
    replace_bump=0.0,
    future_limit_per_account=1,
    eviction_pending_floor=0,
    capacity=2048,
    deployment_share=0.0,
)

CLIENT_POLICIES: Dict[str, MempoolPolicy] = {
    policy.name: policy for policy in (GETH, PARITY, NETHERMIND, BESU, ALETH)
}

# Seed the flyweight registry with the presets themselves, so deriving
# "the geth preset" back from a modified copy returns the module constant.
for _policy in CLIENT_POLICIES.values():
    _INTERNED.setdefault(_policy, _policy)
del _policy


def policy_by_name(name: str) -> MempoolPolicy:
    """Look up a preset by client name (case-insensitive)."""
    key = name.lower()
    if key not in CLIENT_POLICIES:
        known = ", ".join(sorted(CLIENT_POLICIES))
        raise KeyError(f"unknown client {name!r}; known clients: {known}")
    return CLIENT_POLICIES[key]
