"""Per-node RPC facade.

Mirrors the queries the paper actually issues:

- ``eth_getTransactionByHash`` — validation that ``txC`` was evicted (§6.1);
- ``txpool_status`` / ``txpool_content`` — mempool inspection;
- ``admin_peers`` — ground-truth neighbour list on locally controlled nodes
  (the ``peer_list`` query of §5.2.3's pre-processing phase);
- ``web3_clientVersion`` — service backend discovery on the mainnet (§6.3);
- ``eth_sendRawTransaction`` — local submission.

Nodes configured with ``responds_to_rpc=False`` model the unresponsive
targets the pre-processing phase skips.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.eth.node import Node
from repro.eth.transaction import Transaction


class RpcUnavailableError(ReproError):
    """The target node does not expose an RPC interface."""


class RpcServer:
    """Dispatches RPC method calls against one node."""

    def __init__(self, node: Node) -> None:
        self.node = node
        self._methods = {
            "web3_clientVersion": self._client_version,
            "eth_getTransactionByHash": self._get_transaction,
            "eth_blockNumber": self._block_number,
            "eth_sendRawTransaction": self._send_raw_transaction,
            "txpool_status": self._txpool_status,
            "txpool_content": self._txpool_content,
            "admin_peers": self._admin_peers,
            "admin_nodeInfo": self._node_info,
        }

    @property
    def methods(self) -> List[str]:
        return sorted(self._methods)

    def call(self, method: str, *params: Any) -> Any:
        """Invoke ``method`` with ``params``.

        Raises :class:`RpcUnavailableError` when the node has RPC disabled,
        and :class:`KeyError` for unknown methods.
        """
        if not self.node.config.responds_to_rpc:
            raise RpcUnavailableError(f"node {self.node.id} has RPC disabled")
        if method not in self._methods:
            raise KeyError(f"unknown RPC method {method!r}")
        return self._methods[method](*params)

    # ------------------------------------------------------------------
    # Methods
    # ------------------------------------------------------------------
    def _client_version(self) -> str:
        return self.node.config.client_version

    def _get_transaction(self, tx_hash: str) -> Optional[Dict[str, Any]]:
        tx = self.node.mempool.get(tx_hash)
        if tx is None:
            return None
        return {
            "hash": tx.hash,
            "from": tx.sender,
            "to": tx.to,
            "nonce": tx.nonce,
            "gasPrice": tx.gas_price,
            "gas": tx.gas_limit,
            "value": tx.value,
            "pending": self.node.mempool.is_pending(tx.hash),
        }

    def _block_number(self) -> int:
        return self.node.head_number

    def _send_raw_transaction(self, tx: Transaction) -> str:
        result = self.node.submit_transaction(tx)
        if not result.admitted:
            raise ReproError(f"transaction rejected: {result.outcome.value}")
        return tx.hash

    def _txpool_status(self) -> Dict[str, int]:
        return {
            "pending": self.node.mempool.pending_count,
            "queued": self.node.mempool.future_count,
        }

    def _txpool_content(self) -> Dict[str, Dict[str, List[str]]]:
        pending: Dict[str, List[str]] = {}
        queued: Dict[str, List[str]] = {}
        for tx in self.node.mempool.pending_transactions():
            pending.setdefault(tx.sender, []).append(tx.hash)
        for tx in self.node.mempool.future_transactions():
            queued.setdefault(tx.sender, []).append(tx.hash)
        return {"pending": pending, "queued": queued}

    def _admin_peers(self) -> List[str]:
        return self.node.peer_ids

    def _node_info(self) -> Dict[str, Any]:
        return {
            "id": self.node.id,
            "client": self.node.config.client_version,
            "network": self.node.config.network_id,
            "maxPeers": self.node.config.max_peers,
            "activePeers": self.node.degree,
        }
