"""The measurement plane: per-node RPC, fault injection, and a hardened client.

Mirrors the queries the paper actually issues:

- ``eth_getTransactionByHash`` — validation that ``txC`` was evicted (§6.1);
- ``txpool_status`` / ``txpool_content`` — mempool inspection;
- ``admin_peers`` — ground-truth neighbour list on locally controlled nodes
  (the ``peer_list`` query of §5.2.3's pre-processing phase);
- ``web3_clientVersion`` — service backend discovery on the mainnet (§6.3);
- ``eth_sendRawTransaction`` — local submission.

Three layers:

:class:`RpcServer`
    The always-correct per-node dispatcher (the seed behavior). Nodes
    configured with ``responds_to_rpc=False`` model the unresponsive
    targets the pre-processing phase skips.
:class:`RpcEndpoint`
    One node's listener as seen over an *unreliable* transport. When the
    network's fault plan carries an :class:`~repro.sim.faults.RpcFaultPlan`
    it injects seed-driven call timeouts, transient errors, token-bucket
    rate limits, stale/truncated txpool snapshots and connection flaps;
    with no RPC fault plan it is a zero-cost passthrough to the server.
:class:`ResilientRpcClient`
    The measurer's side: per-method deadlines, retry with deterministic
    jitter, hedged reads for snapshot-critical queries, per-endpoint
    circuit breaking + health scoring (the PR 6 breaker), client-side
    rate-limit compliance, and snapshot plausibility validation. Its
    tri-state helpers (``True`` / ``False`` / ``None`` = *unknown*) are
    what lets the inference stack degrade to ``suspect`` instead of
    recording false negatives when the plane misbehaves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import (
    ReproError,
    RpcConnectionError,
    RpcError,
    RpcExhaustedError,
    RpcMethodNotFoundError,
    RpcRateLimitedError,
    RpcTimeoutError,
    RpcTransientError,
    RpcUnavailableError,
)
from repro.eth.node import Node
from repro.eth.transaction import Transaction
from repro.service.supervisor import CircuitBreaker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.eth.network import Network
    from repro.sim.faults import RpcFaultState

__all__ = [
    "RpcServer",
    "RpcEndpoint",
    "RpcClientPolicy",
    "ResilientRpcClient",
    "PoolSnapshot",
    "HARDENED_POLICY",
    "RAW_POLICY",
    "rpc_faults_active",
    "rpc_tx_in_pool",
    # Historical home of these errors; re-exported for import compatibility.
    "RpcUnavailableError",
    "RpcMethodNotFoundError",
]

SNAPSHOT_OK = "ok"
SNAPSHOT_STALE = "stale"
SNAPSHOT_TRUNCATED = "truncated"
SNAPSHOT_FAILED = "failed"


class RpcServer:
    """Dispatches RPC method calls against one node."""

    def __init__(self, node: Node) -> None:
        self.node = node
        self._methods = {
            "web3_clientVersion": self._client_version,
            "eth_getTransactionByHash": self._get_transaction,
            "eth_blockNumber": self._block_number,
            "eth_sendRawTransaction": self._send_raw_transaction,
            "txpool_status": self._txpool_status,
            "txpool_content": self._txpool_content,
            "admin_peers": self._admin_peers,
            "admin_nodeInfo": self._node_info,
        }

    @property
    def methods(self) -> List[str]:
        return sorted(self._methods)

    def call(self, method: str, *params: Any) -> Any:
        """Invoke ``method`` with ``params``.

        Raises :class:`~repro.errors.RpcUnavailableError` when the node has
        RPC disabled, and :class:`~repro.errors.RpcMethodNotFoundError`
        (a ``KeyError`` subclass, for backward compatibility) for unknown
        methods.
        """
        if not self.node.config.responds_to_rpc:
            raise RpcUnavailableError(f"node {self.node.id} has RPC disabled")
        if method not in self._methods:
            raise RpcMethodNotFoundError(method)
        return self._methods[method](*params)

    # ------------------------------------------------------------------
    # Methods
    # ------------------------------------------------------------------
    def _client_version(self) -> str:
        return self.node.config.client_version

    def _get_transaction(self, tx_hash: str) -> Optional[Dict[str, Any]]:
        tx = self.node.mempool.get(tx_hash)
        if tx is None:
            return None
        return {
            "hash": tx.hash,
            "from": tx.sender,
            "to": tx.to,
            "nonce": tx.nonce,
            "gasPrice": tx.gas_price,
            "gas": tx.gas_limit,
            "value": tx.value,
            "pending": self.node.mempool.is_pending(tx.hash),
        }

    def _block_number(self) -> int:
        return self.node.head_number

    def _send_raw_transaction(self, tx: Transaction) -> str:
        result = self.node.submit_transaction(tx)
        if not result.admitted:
            raise ReproError(f"transaction rejected: {result.outcome.value}")
        return tx.hash

    def _txpool_status(self) -> Dict[str, int]:
        return {
            "pending": self.node.mempool.pending_count,
            "queued": self.node.mempool.future_count,
        }

    def _txpool_content(self) -> Dict[str, Dict[str, List[str]]]:
        pending: Dict[str, List[str]] = {}
        queued: Dict[str, List[str]] = {}
        for tx in self.node.mempool.pending_transactions():
            pending.setdefault(tx.sender, []).append(tx.hash)
        for tx in self.node.mempool.future_transactions():
            queued.setdefault(tx.sender, []).append(tx.hash)
        return {"pending": pending, "queued": queued}

    def _admin_peers(self) -> List[str]:
        return self.node.peer_ids

    def _node_info(self) -> Dict[str, Any]:
        return {
            "id": self.node.id,
            "client": self.node.config.client_version,
            "network": self.node.config.network_id,
            "maxPeers": self.node.config.max_peers,
            "activePeers": self.node.degree,
        }


# ----------------------------------------------------------------------
# Fault-injecting endpoint
# ----------------------------------------------------------------------
def rpc_faults_active(network: "Network") -> bool:
    """True when the installed fault plan degrades the RPC plane."""
    injector = network.faults
    return injector is not None and injector.rpc is not None


#: Methods whose responses come from the (possibly lagged) snapshot bundle:
#: a caching proxy serves pool state and head number from one consistent
#: but stale view, which is exactly what the plausibility checks look for.
_BUNDLE_METHODS = frozenset({"txpool_status", "txpool_content", "eth_blockNumber"})


class RpcEndpoint:
    """One node's RPC listener as seen over an unreliable transport.

    With no :class:`~repro.sim.faults.RpcFaultPlan` installed this is a
    pure passthrough to :class:`RpcServer` — no RNG draws, no simulated
    time, byte-identical to the seed behavior. With one installed, every
    call runs the fault gauntlet in a fixed order: connection flap (no
    draw), token bucket (no draw), one transport draw (timeout/error),
    then per-snapshot staleness and truncation draws.
    """

    def __init__(self, network: "Network", node_id: str) -> None:
        self.network = network
        self.node_id = node_id
        self._server = RpcServer(network.node(node_id))

    @property
    def faults(self) -> Optional["RpcFaultState"]:
        injector = self.network.faults
        return injector.rpc if injector is not None else None

    def call(self, method: str, *params: Any, deadline: float = 0.0) -> Any:
        faults = self.faults
        if faults is None:
            return self._server.call(method, *params)
        if not self._server.node.config.responds_to_rpc:
            # Permanent condition: surface it before burning fault draws.
            raise RpcUnavailableError(f"node {self.node_id} has RPC disabled")
        if faults.endpoint_down(self.node_id):
            raise RpcConnectionError(
                f"connection to {self.node_id} refused (listener flapping)"
            )
        retry_after = faults.consume_token(self.node_id)
        if retry_after is not None:
            raise RpcRateLimitedError(self.node_id, retry_after)
        fate = faults.transport_fault(self.node_id)
        if fate == "timeout":
            raise RpcTimeoutError(self.node_id, method, deadline)
        if fate == "error":
            raise RpcTransientError(
                f"RPC {method} to {self.node_id} failed transiently"
            )
        if method in _BUNDLE_METHODS:
            return self._bundled(method, faults)
        return self._server.call(method, *params)

    def _bundled(self, method: str, faults: "RpcFaultState") -> Any:
        fresh = {
            "status": self._server.call("txpool_status"),
            "content": self._server.call("txpool_content"),
            "head": self._server.call("eth_blockNumber"),
        }
        bundle = faults.lagged_bundle(self.node_id, fresh)
        if method == "eth_blockNumber":
            return bundle["head"]
        if method == "txpool_status":
            return dict(bundle["status"])
        content = {
            "pending": {k: list(v) for k, v in bundle["content"]["pending"].items()},
            "queued": {k: list(v) for k, v in bundle["content"]["queued"].items()},
        }
        if faults.should_truncate(self.node_id):
            keep = faults.plan.truncate_keep_fraction
            content["pending"] = _truncate_groups(content["pending"], keep)
            content["queued"] = _truncate_groups(content["queued"], keep)
        return content


def _truncate_groups(
    groups: Dict[str, List[str]], keep_fraction: float
) -> Dict[str, List[str]]:
    """Drop the tail page of a sender-grouped dump (insertion order)."""
    keep = int(len(groups) * keep_fraction)
    truncated: Dict[str, List[str]] = {}
    for index, (sender, hashes) in enumerate(groups.items()):
        if index >= keep:
            break
        truncated[sender] = hashes
    return truncated


# ----------------------------------------------------------------------
# Resilient client
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RpcClientPolicy:
    """Every knob of the hardened client, in one validated bundle.

    Attributes
    ----------
    max_attempts:
        Total tries per logical call (first attempt + retries).
    deadline:
        Default per-attempt deadline in simulated seconds; a timed-out
        attempt burns this much waiting.
    method_deadlines:
        Per-method overrides (``txpool_content`` dumps are slow).
    backoff_base / backoff_factor / backoff_max / jitter_frac:
        Exponential backoff between attempts, with deterministic jitter
        seeded from ``(endpoint, method, attempt)`` — same seed, same
        waits, bit-identical reruns.
    hedge_methods / hedge_delay:
        Snapshot-critical reads race a hedged second request after
        ``hedge_delay`` instead of waiting out the full deadline, so a
        timeout costs ``hedge_delay`` rather than ``deadline``.
    breaker_threshold / breaker_cooldown:
        Per-endpoint circuit breaker (the PR 6 three-state machine run on
        simulated time): after ``breaker_threshold`` consecutive
        failures the endpoint is skipped for ``breaker_cooldown`` seconds.
    health_alpha / min_health:
        EMA health score per endpoint (1 = perfect); endpoints under
        ``min_health`` land on skip lists and lose candidate priority.
    comply_with_rate_limits:
        Honor 429 ``retry_after`` hints (wait, never hammer).
    validate_snapshots / min_pool_shrink_fraction:
        Plausibility checks on pool snapshots: content-vs-status count
        mismatch flags truncation, a head number behind the last known or
        a pending count collapsing below ``min_pool_shrink_fraction`` of
        the last trusted value flags staleness; flagged reads are retried
        once (hedged) before being surfaced.
    failure_means_negative:
        The *unhardened* stance: an unanswerable lookup is reported as
        ``False`` (the silent false negative this PR exists to kill)
        instead of ``None`` (unknown → degrade to suspect).
    """

    max_attempts: int = 4
    deadline: float = 2.0
    method_deadlines: Mapping[str, float] = field(
        default_factory=lambda: {"txpool_content": 5.0}
    )
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 4.0
    jitter_frac: float = 0.5
    hedge_methods: Tuple[str, ...] = (
        "txpool_status",
        "txpool_content",
        "eth_blockNumber",
        "eth_getTransactionByHash",
    )
    hedge_delay: float = 0.5
    breaker_threshold: int = 5
    breaker_cooldown: float = 30.0
    health_alpha: float = 0.3
    min_health: float = 0.2
    comply_with_rate_limits: bool = True
    validate_snapshots: bool = True
    min_pool_shrink_fraction: float = 0.5
    failure_means_negative: bool = False

    def __post_init__(self) -> None:
        from repro.errors import MeasurementError

        if self.max_attempts < 1:
            raise MeasurementError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.deadline <= 0:
            raise MeasurementError(f"deadline must be positive, got {self.deadline}")
        for name in ("backoff_base", "backoff_factor", "backoff_max", "hedge_delay"):
            if getattr(self, name) <= 0:
                raise MeasurementError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise MeasurementError(
                f"jitter_frac must be in [0, 1], got {self.jitter_frac}"
            )
        if not 0.0 < self.health_alpha <= 1.0:
            raise MeasurementError(
                f"health_alpha must be in (0, 1], got {self.health_alpha}"
            )

    def deadline_for(self, method: str) -> float:
        return self.method_deadlines.get(method, self.deadline)


#: The default stance: measure *through* the weather.
HARDENED_POLICY = RpcClientPolicy()

#: The seed's implicit stance, made explicit for A/B benchmarks: one
#: attempt, no hedging, no validation, and a failed lookup silently
#: becomes a negative.
RAW_POLICY = RpcClientPolicy(
    max_attempts=1,
    hedge_methods=(),
    comply_with_rate_limits=False,
    validate_snapshots=False,
    failure_means_negative=True,
    breaker_threshold=1_000_000_000,
)


@dataclass
class PoolSnapshot:
    """A validated txpool view with its plausibility verdict attached."""

    node_id: str
    taken_at: float
    status: Dict[str, int]
    content: Dict[str, Dict[str, List[str]]]
    head: int
    verdict: str = SNAPSHOT_OK
    hedged: bool = False

    @property
    def ok(self) -> bool:
        return self.verdict == SNAPSHOT_OK

    @property
    def pending_count(self) -> int:
        return int(self.status.get("pending", 0))

    def content_pending_count(self) -> int:
        return sum(len(v) for v in self.content.get("pending", {}).values())


class ResilientRpcClient:
    """The measurer's RPC stack: deadlines, retries, hedging, compliance.

    One instance per network (see ``Network.rpc_client``). With no RPC
    fault plan installed every call short-circuits to the bare server —
    no RNG, no simulated time, no bookkeeping — so golden fingerprints
    are untouched. All resilience state (breakers, health, pacing) keys
    on simulated time, making reruns bit-identical.
    """

    def __init__(
        self, network: "Network", policy: Optional[RpcClientPolicy] = None
    ) -> None:
        self.network = network
        self.policy = policy if policy is not None else HARDENED_POLICY
        self._endpoints: Dict[str, RpcEndpoint] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._health: Dict[str, float] = {}
        self._next_allowed: Dict[str, float] = {}
        self._last_head: Dict[str, int] = {}
        self._last_pending: Dict[str, int] = {}
        # Counters (exported as toposhot_rpc_* — see repro.obs.wiring).
        self.calls_total = 0
        self.attempts_total = 0
        self.retries_total = 0
        self.hedges_total = 0
        self.rate_limited_total = 0
        self.breaker_rejections_total = 0
        self.exhausted_total = 0
        self.degraded_lookups_total = 0
        self.snapshot_verdicts: Dict[str, int] = {}

    # -- plumbing ------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when an RPC fault plan is installed (resilient path)."""
        return rpc_faults_active(self.network)

    def endpoint(self, node_id: str) -> RpcEndpoint:
        ep = self._endpoints.get(node_id)
        if ep is None:
            ep = self._endpoints[node_id] = RpcEndpoint(self.network, node_id)
        return ep

    def breaker(self, node_id: str) -> CircuitBreaker:
        br = self._breakers.get(node_id)
        if br is None:
            br = self._breakers[node_id] = CircuitBreaker(
                failure_threshold=self.policy.breaker_threshold,
                cooldown=self.policy.breaker_cooldown,
                clock=lambda: self.network.sim.now,
            )
        return br

    def health(self, node_id: str) -> float:
        return self._health.get(node_id, 1.0)

    def health_report(self) -> Dict[str, float]:
        return {nid: self._health[nid] for nid in sorted(self._health)}

    def unhealthy_endpoints(self) -> List[str]:
        """Endpoints below the health floor or with an open breaker —
        pre-processing skip lists and candidate de-prioritization."""
        flagged = set()
        for nid, score in self._health.items():
            if score < self.policy.min_health:
                flagged.add(nid)
        for nid, br in self._breakers.items():
            if br.state != CircuitBreaker.CLOSED:
                flagged.add(nid)
        return sorted(flagged)

    def _bump_health(self, node_id: str, outcome: float) -> None:
        alpha = self.policy.health_alpha
        prev = self._health.get(node_id, 1.0)
        self._health[node_id] = (1.0 - alpha) * prev + alpha * outcome

    def _sleep(self, delay: float) -> None:
        if delay > 0:
            self.network.run(delay)

    def _backoff_delay(self, node_id: str, method: str, attempt: int) -> float:
        p = self.policy
        base = min(p.backoff_max, p.backoff_base * p.backoff_factor ** (attempt - 1))
        jitter = random.Random(f"{node_id}:{method}:{attempt}").random()
        return base * (1.0 + p.jitter_frac * jitter)

    # -- the call path -------------------------------------------------
    def call(self, node_id: str, method: str, *params: Any) -> Any:
        """One logical call: retries, hedging, compliance, breaking.

        Raises :class:`~repro.errors.RpcUnavailableError` /
        :class:`~repro.errors.RpcMethodNotFoundError` immediately
        (permanent conditions), :class:`~repro.errors.RpcExhaustedError`
        when the retry budget or the circuit breaker gives out.
        """
        endpoint = self.endpoint(node_id)
        if not self.active:
            return endpoint.call(method, *params)

        policy = self.policy
        breaker = self.breaker(node_id)
        self.calls_total += 1
        if not breaker.allow():
            self.breaker_rejections_total += 1
            self.exhausted_total += 1
            raise RpcExhaustedError(
                node_id,
                method,
                0,
                RpcConnectionError(
                    f"circuit open for {node_id} "
                    f"(retry after {breaker.retry_after():g}s)"
                ),
            )
        if policy.comply_with_rate_limits:
            self._sleep(self._next_allowed.get(node_id, 0.0) - self.network.sim.now)

        deadline = policy.deadline_for(method)
        last: Optional[RpcError] = None
        attempt = 0
        while attempt < policy.max_attempts:
            attempt += 1
            self.attempts_total += 1
            try:
                result = endpoint.call(method, *params, deadline=deadline)
            except (RpcUnavailableError, RpcMethodNotFoundError):
                # Permanent: not weather, don't burn the breaker on it.
                breaker.release_probe()
                raise
            except RpcRateLimitedError as exc:
                last = exc
                self.rate_limited_total += 1
                # Throttling is endpoint *health*, not sickness: comply,
                # don't trip the breaker.
                if policy.comply_with_rate_limits:
                    self._next_allowed[node_id] = (
                        self.network.sim.now + exc.retry_after
                    )
                    self._sleep(exc.retry_after)
                continue
            except RpcTimeoutError as exc:
                last = exc
                breaker.record_failure()
                self._bump_health(node_id, 0.0)
                if method in policy.hedge_methods and policy.hedge_delay < deadline:
                    # The hedged twin was already in flight: we only paid
                    # the hedge delay, and the next attempt goes now.
                    self.hedges_total += 1
                    self._sleep(policy.hedge_delay)
                    continue
                self._sleep(deadline)
            except (RpcTransientError, RpcConnectionError) as exc:
                last = exc
                breaker.record_failure()
                self._bump_health(node_id, 0.0)
            else:
                breaker.record_success()
                self._bump_health(node_id, 1.0)
                return result
            if attempt < policy.max_attempts:
                self.retries_total += 1
                self._sleep(self._backoff_delay(node_id, method, attempt))
        self.exhausted_total += 1
        raise RpcExhaustedError(node_id, method, attempt, last)

    # -- tri-state helpers for the inference stack ---------------------
    def tx_in_pool(self, node_id: str, tx_hash: str) -> Optional[bool]:
        """Is ``tx_hash`` in ``node_id``'s pool? ``None`` means *unknown*.

        The §6.1 cross-check. Unknown (exhausted retries, open breaker)
        must never masquerade as a negative — unless the policy is the
        deliberately unhardened :data:`RAW_POLICY`, whose
        ``failure_means_negative`` reproduces the naive client's silent
        false negatives for A/B benchmarks. Targets without RPC fall
        back to the simulator's direct pool view, mirroring the seed's
        omniscient oracle.
        """
        if not self.active:
            return tx_hash in self.network.node(node_id).mempool
        try:
            return self.call(node_id, "eth_getTransactionByHash", tx_hash) is not None
        except RpcUnavailableError:
            return tx_hash in self.network.node(node_id).mempool
        except RpcError:
            self.degraded_lookups_total += 1
            return False if self.policy.failure_means_negative else None

    def peer_count(self, node_id: str) -> Optional[int]:
        """``len(admin_peers)``, or ``None`` when the plane won't answer."""
        if not self.active:
            return len(self.endpoint(node_id).call("admin_peers"))
        try:
            return len(self.call(node_id, "admin_peers"))
        except RpcError:
            self.degraded_lookups_total += 1
            return None

    def _record_verdict(self, verdict: str) -> None:
        self.snapshot_verdicts[verdict] = self.snapshot_verdicts.get(verdict, 0) + 1

    def pool_snapshot(self, node_id: str) -> PoolSnapshot:
        """Fetch and validate one txpool view.

        A flagged (stale/truncated) read is refetched once — the hedged
        second opinion — before the verdict is surfaced; only ``ok``
        snapshots update the per-endpoint plausibility baselines.
        """
        snapshot = self._fetch_snapshot(node_id)
        if (
            self.policy.validate_snapshots
            and not snapshot.ok
            and snapshot.verdict != SNAPSHOT_FAILED
        ):
            retry = self._fetch_snapshot(node_id)
            retry.hedged = True
            if retry.ok or retry.verdict == snapshot.verdict:
                snapshot = retry
        if snapshot.ok:
            self._last_head[node_id] = snapshot.head
            self._last_pending[node_id] = snapshot.pending_count
        self._record_verdict(snapshot.verdict)
        return snapshot

    def _fetch_snapshot(self, node_id: str) -> PoolSnapshot:
        now = self.network.sim.now
        try:
            head = self.call(node_id, "eth_blockNumber")
            status = self.call(node_id, "txpool_status")
            content = self.call(node_id, "txpool_content")
        except RpcError:
            self.degraded_lookups_total += 1
            return PoolSnapshot(
                node_id, now, {}, {"pending": {}, "queued": {}}, -1, SNAPSHOT_FAILED
            )
        snapshot = PoolSnapshot(node_id, now, status, content, head)
        if self.policy.validate_snapshots:
            snapshot.verdict = self._validate(node_id, snapshot)
        return snapshot

    def _validate(self, node_id: str, snapshot: PoolSnapshot) -> str:
        content_count = snapshot.content_pending_count()
        if content_count < snapshot.pending_count:
            return SNAPSHOT_TRUNCATED
        last_head = self._last_head.get(node_id)
        if last_head is not None and snapshot.head < last_head:
            return SNAPSHOT_STALE
        last_pending = self._last_pending.get(node_id)
        if (
            last_pending is not None
            and last_pending > 0
            and snapshot.pending_count
            < self.policy.min_pool_shrink_fraction * last_pending
        ):
            return SNAPSHOT_STALE
        return SNAPSHOT_OK

    def counters(self) -> Dict[str, int]:
        """Flat counter view (the toposhot_rpc_* metric payload)."""
        payload = {
            "calls": self.calls_total,
            "attempts": self.attempts_total,
            "retries": self.retries_total,
            "hedges": self.hedges_total,
            "rate_limited": self.rate_limited_total,
            "breaker_rejections": self.breaker_rejections_total,
            "exhausted": self.exhausted_total,
            "degraded_lookups": self.degraded_lookups_total,
        }
        for verdict, count in sorted(self.snapshot_verdicts.items()):
            payload[f"snapshots_{verdict}"] = count
        return payload


# ----------------------------------------------------------------------
# Inference-stack entry point
# ----------------------------------------------------------------------
def rpc_tx_in_pool(network: "Network", node_id: str, tx_hash: str) -> Optional[bool]:
    """The cross-check every verdict leans on, routed through the plane.

    With no RPC fault plan installed this is the seed's direct pool
    membership test — zero overhead, zero draws. With one installed it
    goes through the network's resilient client and may return ``None``
    (*unknown*), which callers must degrade to suspect/re-probe, never to
    a negative.
    """
    if not rpc_faults_active(network):
        return tx_hash in network.node(node_id).mempool
    return network.rpc_client().tx_in_pool(node_id, tx_hash)
