"""Crash-safe job journal: an append-only JSON-lines write-ahead log.

Every job-state transition is appended as one JSON line and fsynced, so
after a SIGKILL the journal replays to the exact last durable state of
every job: terminal jobs keep their results, in-flight jobs are recovered
into ``queued`` and resume from their shard checkpoints.  The file is
append-only during operation; :meth:`JobJournal.compact` rewrites it
atomically (tmp + fsync + rename, the same discipline as the campaign
checkpoints) to one line per job.

Torn-tail tolerance: appends are fsynced, so at most the final line can
be torn by a crash mid-append.  Replay skips unparsable lines rather than
refusing the whole journal — losing one un-fsynced transition is the
defined contract, losing the journal is not.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.errors import ServiceError
from repro.service.jobs import JobRecord

PathLike = Union[str, Path]

JOURNAL_VERSION = 1


class JobJournal:
    """Append-only WAL of :class:`~repro.service.jobs.JobRecord` states."""

    def __init__(self, path: PathLike, fsync: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._handle = open(self.path, "a", encoding="utf-8")
        self.appends_total = 0

    def append(self, record: JobRecord) -> None:
        """Durably append one state transition (one JSON line)."""
        if self._handle.closed:
            raise ServiceError("journal is closed")
        line = json.dumps(
            {"v": JOURNAL_VERSION, "record": record.to_dict()},
            sort_keys=True,
            separators=(",", ":"),
        )
        self._handle.write(line + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.appends_total += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
            self._handle.close()

    # ------------------------------------------------------------------
    # Replay / compaction
    # ------------------------------------------------------------------
    @staticmethod
    def replay(path: PathLike) -> Tuple[Dict[str, JobRecord], int]:
        """Last durable record per job, in first-submission order.

        Returns ``(records, skipped_lines)``; ``skipped_lines`` counts
        unparsable entries (a torn tail after a crash mid-append).
        """
        latest: Dict[str, JobRecord] = {}
        order: list = []
        skipped = 0
        journal = Path(path)
        if not journal.exists():
            return {}, skipped
        with open(journal, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    record = JobRecord.from_dict(payload["record"])
                except (
                    json.JSONDecodeError,
                    KeyError,
                    TypeError,
                    ValueError,
                    ServiceError,
                ):
                    skipped += 1
                    continue
                if record.job_id not in latest:
                    order.append(record.job_id)
                latest[record.job_id] = record
        return {job_id: latest[job_id] for job_id in order}, skipped

    def compact(self, records: Optional[Iterable[JobRecord]] = None) -> int:
        """Atomically rewrite the journal to one line per job.

        With ``records=None`` the journal compacts to its own replay.
        Returns the number of records kept.  The live append handle is
        re-opened on the new file.
        """
        from repro.io import atomic_write_text, cleanup_orphan_tmp

        if records is None:
            replayed, _ = self.replay(self.path)
            records = list(replayed.values())
        else:
            records = list(records)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._handle.close()
        cleanup_orphan_tmp(self.path)
        lines = [
            json.dumps(
                {"v": JOURNAL_VERSION, "record": record.to_dict()},
                sort_keys=True,
                separators=(",", ":"),
            )
            for record in records
        ]
        atomic_write_text(self.path, "".join(line + "\n" for line in lines))
        self._handle = open(self.path, "a", encoding="utf-8")
        return len(records)
