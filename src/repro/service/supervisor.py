"""Supervised job execution: retries, deadlines, circuit breaking.

The supervisor runs inside an executor *thread* (the asyncio loop stays
responsive); everything here is synchronous.  One job execution is the
attempt loop::

    while True:
        breaker.allow() or raise CircuitOpen        # fail fast, requeue
        try: result = kind_executor(record, ctx)    # cooperative stops
        except infra failure:
            breaker.record_failure()
            attempts exhausted -> FAILED (partial result if any)
            else sleep(backoff * jitter); backoff *= factor; retry

Cooperative stops (deadline, client cancel, service drain) surface at
**shard boundaries**: the measure executor passes a heartbeat into
``run_campaign``'s per-shard progress hook, so by the time a stop raises,
a shard-granular checkpoint is already durable on disk — which is what
makes a timed-out or drained job resumable and lets it report a partial
result with confidence labels instead of erroring.
"""

from __future__ import annotations

import json
import random
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.errors import (
    CircuitOpen,
    JobCancelled,
    JobTimeout,
    ServiceError,
)
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    KIND_MEASURE,
    KIND_SYNTHETIC,
    TIMED_OUT,
    JobRecord,
)

Clock = Callable[[], float]

# Confidence label attached to partial results (extends the campaign's
# high/cross_validated/suspect/quarantined edge-label vocabulary at the
# whole-result level).
CONFIDENCE_PARTIAL = "partial"
CONFIDENCE_COMPLETE = "complete"


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Classic three-state breaker guarding the worker pool.

    CLOSED counts consecutive infrastructure failures; at
    ``failure_threshold`` it OPENs for ``cooldown`` seconds, during which
    :meth:`allow` is False (jobs are requeued, not burned).  After the
    cooldown one probe attempt is let through (HALF_OPEN): success closes
    the breaker, failure re-opens it for another cooldown.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        clock: Clock = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ServiceError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_outstanding = False
        self._lock = threading.Lock()
        self.trips_total = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = self.HALF_OPEN
            self._probe_outstanding = False

    def allow(self) -> bool:
        """May an attempt proceed right now?  HALF_OPEN admits one probe."""
        with self._lock:
            self._maybe_half_open()
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN and not self._probe_outstanding:
                self._probe_outstanding = True
                return True
            return False

    def can_attempt(self) -> bool:
        """Non-claiming view of :meth:`allow`: would an attempt be admitted?

        The dispatch loop uses this to keep jobs queued while the breaker
        is OPEN *or* while a HALF_OPEN probe is already in flight, instead
        of popping jobs that the supervisor would immediately bounce back
        with :class:`CircuitOpen`.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == self.CLOSED:
                return True
            return (
                self._state == self.HALF_OPEN
                and not self._probe_outstanding
            )

    def release_probe(self) -> None:
        """Give back a probe slot claimed by :meth:`allow` without a verdict.

        A probe attempt that ends via deadline or client cancel says
        nothing about pool health; releasing the slot lets the next job
        probe.  Without this the breaker wedges HALF_OPEN forever, with
        ``allow()`` False for every job.
        """
        with self._lock:
            self._probe_outstanding = False

    def retry_after(self) -> float:
        with self._lock:
            self._maybe_half_open()
            if self._state != self.OPEN:
                return 0.0
            return max(
                0.0, self.cooldown - (self._clock() - self._opened_at)
            )

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_outstanding = False
            self._state = self.CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == self.HALF_OPEN:
                # The probe failed: straight back to OPEN.
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probe_outstanding = False
                self.trips_total += 1
            elif (
                self._state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self.trips_total += 1


# ----------------------------------------------------------------------
# Cooperative stop plumbing
# ----------------------------------------------------------------------
class CancelToken:
    """Thread-safe stop request carried from the asyncio loop into the
    executor thread.  ``reason`` distinguishes a client cancel (terminal)
    from a service drain (requeue-for-recovery)."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason = ""

    def request(self, reason: str) -> None:
        # First reason wins: a drain broadcast must not overwrite an
        # earlier client cancel (which would requeue a cancelled job).
        if not self._event.is_set():
            self.reason = reason
        self._event.set()

    @property
    def requested(self) -> bool:
        return self._event.is_set()


class ExecutionContext:
    """What a kind-executor needs: checkpoint path + a heartbeat.

    ``heartbeat()`` is the cooperative stop point — kind executors call it
    at every resumable boundary (the measure executor wires it into the
    per-shard progress hook)."""

    def __init__(
        self,
        record: JobRecord,
        cancel: CancelToken,
        state_dir: Path,
        clock: Clock,
        deadline_at: Optional[float],
    ) -> None:
        self.record = record
        self.cancel = cancel
        self.state_dir = state_dir
        self.clock = clock
        self.deadline_at = deadline_at

    @property
    def checkpoint_path(self) -> Path:
        return self.state_dir / f"job-{self.record.job_id}.ckpt.json"

    def heartbeat(self) -> None:
        """Raise the appropriate stop if one is pending (checkpoint is
        already durable when this is called from a shard boundary)."""
        if self.cancel.requested:
            raise JobCancelled(
                f"job {self.record.job_id} "
                + (
                    "requeued by service drain"
                    if self.cancel.reason == "drain"
                    else "cancelled by client"
                ),
                requeue=self.cancel.reason == "drain",
            )
        if self.deadline_at is not None and self.clock() >= self.deadline_at:
            raise JobTimeout(
                f"job {self.record.job_id} exceeded its "
                f"{self.record.spec.deadline:.1f}s deadline"
            )


# ----------------------------------------------------------------------
# Kind executors
# ----------------------------------------------------------------------
def _execute_measure(record: JobRecord, ctx: ExecutionContext) -> dict:
    """Run a TopoShot campaign on the sharded executor, resumably.

    The campaign checkpoint lives under the service state dir keyed by
    job id; any retry or recovery resumes from completed shards, so work
    is never repeated and results are never duplicated.
    """
    from repro.core.parallel_exec import CampaignSpec, run_campaign
    from repro.io import measurement_to_dict

    params = record.spec.params
    campaign = CampaignSpec.from_dict(params["campaign"])
    workers = int(params.get("workers", 1))

    ctx.heartbeat()

    def progress(_index: int, _total: int, _result: object) -> None:
        # Called after each shard's checkpoint is written: the safe place
        # to honor deadline/cancel/drain stops.
        ctx.heartbeat()

    measurement = run_campaign(
        campaign,
        workers=workers,
        checkpoint_path=ctx.checkpoint_path,
        resume=ctx.checkpoint_path.exists(),
        progress=progress,
    )
    summary: dict = {
        "kind": KIND_MEASURE,
        "confidence": CONFIDENCE_COMPLETE,
        "nodes": len(measurement.node_ids),
        "edges": len(measurement.edges),
        "iterations": measurement.iterations,
        "transactions_sent": measurement.transactions_sent,
        "failure_count": len(measurement.failures),
        "measurement": measurement_to_dict(measurement),
    }
    if measurement.failures:
        # Degraded-but-complete: the campaign survived adverse events and
        # reports which pairs are uncovered (NetworkMeasurement.failures).
        summary["confidence"] = CONFIDENCE_PARTIAL
    if measurement.score is not None:
        summary["score"] = str(measurement.score)
    return summary


def _measure_partial(record: JobRecord, ctx: ExecutionContext) -> Optional[dict]:
    """Best-effort partial result from the shard checkpoint on disk."""
    from repro.core.parallel_exec import ParallelCheckpoint

    path = ctx.checkpoint_path
    if not path.exists():
        return None
    try:
        checkpoint = ParallelCheckpoint.load(path)
    except Exception:
        return None
    edges = set()
    transactions = 0
    failure_count = 0
    for result in checkpoint.completed.values():
        edges |= result.edges
        transactions += result.transactions_sent
        failure_count += len(result.failures)
    return {
        "kind": KIND_MEASURE,
        "confidence": CONFIDENCE_PARTIAL,
        "completed_shards": len(checkpoint.completed),
        "n_shards": checkpoint.n_shards,
        "edges": len(edges),
        "edge_list": sorted(sorted(e) for e in edges),
        "transactions_sent": transactions,
        "failure_count": failure_count,
        "resumable": True,
    }


def _synthetic_checkpoint(ctx: ExecutionContext) -> Path:
    return ctx.state_dir / f"job-{ctx.record.job_id}.steps.json"


def _execute_synthetic(record: JobRecord, ctx: ExecutionContext) -> dict:
    """Deterministic stand-in workload for load tests and smoke CI.

    Params: ``steps`` (resumable units), ``step_duration`` (wall seconds
    per step), ``fail_attempts`` (the first N attempts raise an injected
    infrastructure failure — the worker-crash simulator).
    """
    from repro.io import atomic_write_text

    params = record.spec.params
    steps = max(1, int(params.get("steps", 1)))
    step_duration = float(params.get("step_duration", 0.0))
    fail_attempts = int(params.get("fail_attempts", 0))

    checkpoint = _synthetic_checkpoint(ctx)
    completed = 0
    if checkpoint.exists():
        try:
            completed = int(
                json.loads(checkpoint.read_text(encoding="utf-8"))[
                    "completed_steps"
                ]
            )
        except (ValueError, KeyError, OSError):
            completed = 0

    if record.attempts <= fail_attempts:
        raise ServiceError(
            f"injected worker failure (attempt {record.attempts} of "
            f"{fail_attempts} failing attempts)"
        )

    for step in range(completed, steps):
        ctx.heartbeat()
        if step_duration:
            time.sleep(step_duration)
        atomic_write_text(
            checkpoint, json.dumps({"completed_steps": step + 1}) + "\n"
        )
    return {
        "kind": KIND_SYNTHETIC,
        "confidence": CONFIDENCE_COMPLETE,
        "steps": steps,
        "resumed_from": completed,
        "payload": params.get("payload"),
    }


def _synthetic_partial(
    record: JobRecord, ctx: ExecutionContext
) -> Optional[dict]:
    checkpoint = _synthetic_checkpoint(ctx)
    if not checkpoint.exists():
        return None
    try:
        completed = int(
            json.loads(checkpoint.read_text(encoding="utf-8"))[
                "completed_steps"
            ]
        )
    except (ValueError, KeyError, OSError):
        return None
    return {
        "kind": KIND_SYNTHETIC,
        "confidence": CONFIDENCE_PARTIAL,
        "completed_steps": completed,
        "steps": max(1, int(record.spec.params.get("steps", 1))),
        "resumable": True,
    }


#: kind -> (executor, partial-result builder). Additional measurement
#: protocols (DEthna, Ethna — see PAPERS.md) plug in here as new kinds.
JOB_KINDS: Dict[str, tuple] = {
    KIND_MEASURE: (_execute_measure, _measure_partial),
    KIND_SYNTHETIC: (_execute_synthetic, _synthetic_partial),
}


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
class JobSupervisor:
    """Runs one job's attempt loop to a terminal state (thread context).

    Backoff between attempts is exponential with deterministic jitter:
    the jitter fraction is drawn from a RNG seeded by ``(job_id, attempt)``
    so a given job's retry schedule is reproducible in tests without any
    global RNG coupling.
    """

    def __init__(
        self,
        state_dir: Path,
        breaker: Optional[CircuitBreaker] = None,
        clock: Clock = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        backoff_base: float = 0.2,
        backoff_factor: float = 2.0,
        backoff_max: float = 30.0,
        jitter_frac: float = 0.25,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.breaker = breaker or CircuitBreaker(clock=clock)
        self.clock = clock
        self.sleep = sleep
        self.backoff_base = float(backoff_base)
        self.backoff_factor = float(backoff_factor)
        self.backoff_max = float(backoff_max)
        self.jitter_frac = float(jitter_frac)
        self.retries_total = 0

    def backoff_delay(self, job_id: str, attempt: int) -> float:
        """The wait before retry ``attempt`` (1-based): exponential with
        deterministic per-(job, attempt) jitter."""
        base = min(
            self.backoff_max,
            self.backoff_base * (self.backoff_factor ** (attempt - 1)),
        )
        jitter = random.Random(f"{job_id}:{attempt}").random()
        return base * (1.0 + self.jitter_frac * jitter)

    def run(self, record: JobRecord, cancel: CancelToken) -> JobRecord:
        """Execute ``record`` to a terminal state (mutated in place).

        Raises :class:`CircuitOpen` (requeue) or propagates
        :class:`JobCancelled` with ``requeue=True`` (drain) — every other
        outcome lands in the record as done/failed/cancelled/timed_out.
        """
        kind = record.spec.kind
        if kind not in JOB_KINDS:
            record.state = FAILED
            record.error = {
                "type": "unknown_kind",
                "detail": f"no executor registered for job kind {kind!r}",
            }
            record.finished_at = self.clock()
            return record
        executor, partial_builder = JOB_KINDS[kind]
        ctx = ExecutionContext(
            record=record,
            cancel=cancel,
            state_dir=self.state_dir,
            clock=self.clock,
            deadline_at=record.deadline_at(),
        )
        while True:
            if not self.breaker.allow():
                raise CircuitOpen(
                    "worker pool circuit breaker is open",
                    retry_after=self.breaker.retry_after(),
                )
            record.attempts += 1
            try:
                result = executor(record, ctx)
            except JobTimeout as exc:
                # A timeout is no verdict on pool health: free the probe
                # slot this attempt may hold so the breaker cannot wedge
                # HALF_OPEN with a probe that never reports.
                self.breaker.release_probe()
                record.state = TIMED_OUT
                record.error = exc.to_dict()
                record.result = partial_builder(record, ctx)
                record.partial = record.result is not None
                record.finished_at = self.clock()
                return record
            except JobCancelled as exc:
                self.breaker.release_probe()
                if exc.requeue:
                    raise  # drain: the service journals it back to queued
                record.state = CANCELLED
                record.error = exc.to_dict()
                record.result = partial_builder(record, ctx)
                record.partial = record.result is not None
                record.finished_at = self.clock()
                return record
            except Exception as exc:
                # Infrastructure failure (worker crash, broken pool,
                # malformed campaign): counts against the breaker and the
                # job's retry budget.
                self.breaker.record_failure()
                detail = f"{type(exc).__name__}: {exc}"
                if record.attempts >= record.spec.max_attempts:
                    record.state = FAILED
                    record.error = {
                        "type": "attempts_exhausted",
                        "detail": detail,
                        "attempts": record.attempts,
                    }
                    record.result = partial_builder(record, ctx)
                    record.partial = record.result is not None
                    record.finished_at = self.clock()
                    return record
                delay = self.backoff_delay(record.job_id, record.attempts)
                if (
                    ctx.deadline_at is not None
                    and self.clock() + delay >= ctx.deadline_at
                ):
                    record.state = TIMED_OUT
                    record.error = {
                        "type": JobTimeout.code,
                        "detail": (
                            "deadline would pass during retry backoff after: "
                            + detail
                        ),
                    }
                    record.result = partial_builder(record, ctx)
                    record.partial = record.result is not None
                    record.finished_at = self.clock()
                    return record
                self.retries_total += 1
                self.sleep(delay)
                continue
            else:
                self.breaker.record_success()
                record.state = DONE
                record.result = result
                record.partial = (
                    result.get("confidence") == CONFIDENCE_PARTIAL
                )
                record.finished_at = self.clock()
                self._cleanup_checkpoints(ctx)
                return record

    def _cleanup_checkpoints(self, ctx: ExecutionContext) -> None:
        """Completed jobs do not need their resume state any more."""
        for path in (
            ctx.checkpoint_path,
            _synthetic_checkpoint(ctx),
        ):
            try:
                path.unlink()
            except FileNotFoundError:
                pass
