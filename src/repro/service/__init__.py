"""Topology-measurement-as-a-service (``repro.service``).

A long-running, multi-tenant front end over the deterministic sharded
campaign executor (:mod:`repro.core.parallel_exec`): clients submit
measurement jobs over a local JSON/HTTP API and the service supervises
them end to end — admission control with per-tenant token buckets,
weighted-round-robin fairness, retry with exponential backoff under a
circuit breaker, per-job deadlines with shard-granular partial results,
and a crash-safe journal that makes SIGKILL recoverable and SIGTERM a
graceful drain.  See ``docs/service.md`` for the operator story.

Module map:

- :mod:`repro.service.jobs`       job specs, records, lifecycle states
- :mod:`repro.service.limiter`    token buckets, quotas, admission control
- :mod:`repro.service.scheduler`  weighted-round-robin fair drain
- :mod:`repro.service.supervisor` retries, deadlines, circuit breaker
- :mod:`repro.service.journal`    fsynced JSON-lines write-ahead log
- :mod:`repro.service.server`     asyncio HTTP front end + dispatch
- :mod:`repro.service.client`     stdlib blocking client
"""

from repro.service.client import ServiceClient, ServiceClientError
from repro.service.jobs import (
    JobRecord,
    JobSpec,
    KIND_MEASURE,
    KIND_SYNTHETIC,
    node_seconds_cost,
)
from repro.service.journal import JobJournal
from repro.service.limiter import AdmissionController, TenantQuota, TokenBucket
from repro.service.scheduler import FairScheduler
from repro.service.server import MeasurementService, ServiceConfig, run_service
from repro.service.supervisor import CircuitBreaker, JobSupervisor

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "FairScheduler",
    "JobJournal",
    "JobRecord",
    "JobSpec",
    "JobSupervisor",
    "KIND_MEASURE",
    "KIND_SYNTHETIC",
    "MeasurementService",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "TenantQuota",
    "TokenBucket",
    "node_seconds_cost",
    "run_service",
]
