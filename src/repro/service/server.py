"""The measurement service: asyncio HTTP front end + supervised dispatch.

``MeasurementService`` is a long-running process that accepts topology
measurement jobs over a local JSON/HTTP API, admits them through the
token-bucket :class:`~repro.service.limiter.AdmissionController`, queues
them in the weighted-round-robin
:class:`~repro.service.scheduler.FairScheduler`, and executes them in
worker threads under the retrying, circuit-broken
:class:`~repro.service.supervisor.JobSupervisor`.  Every state transition
is journaled to a fsynced JSON-lines WAL so a SIGKILL recovers cleanly,
and SIGTERM drains gracefully: running jobs stop at their next shard
checkpoint and are requeued (journaled) for the next incarnation.

API (all JSON; content-type headers are accepted but not required)::

    POST /v1/jobs              submit    -> 202 {"job": ...}
    GET  /v1/jobs              list      -> 200 {"jobs": [...summaries]}
    GET  /v1/jobs/{id}         inspect   -> 200 {"job": ...}
    POST /v1/jobs/{id}/cancel  cancel    -> 202 {"job": ...}
    GET  /v1/metrics           stats     -> 200 {"service": ..., "obs": ...}
    GET  /v1/healthz           liveness  -> 200 {"status": "ok"|"draining"}

Typed failures map to HTTP-ish statuses via ``ServiceError.http_status``
(429 quota/queue sheds with ``retry_after`` hints, 503 while draining).
The HTTP layer is a deliberately minimal hand-rolled parser over
``asyncio.start_server`` — the service binds loopback for a single
operator, not the open internet, and the repository admits no new
dependencies.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.errors import (
    BadRequest,
    CircuitOpen,
    JobCancelled,
    NotFound,
    ServiceError,
)
from repro.obs import NULL, Observability
from repro.service.jobs import (
    ACTIVE_STATES,
    CANCELLED,
    FAILED,
    QUEUED,
    RUNNING,
    STATES,
    JobRecord,
    JobSpec,
    node_seconds_cost,
)
from repro.service.journal import JobJournal
from repro.service.limiter import AdmissionController, TenantQuota
from repro.service.scheduler import FairScheduler
from repro.service.supervisor import (
    CancelToken,
    CircuitBreaker,
    JOB_KINDS,
    JobSupervisor,
)

PathLike = Union[str, Path]

#: How long the dispatch loop naps when there is nothing to do (it is
#: also woken eagerly by submissions and completions).
_IDLE_TICK = 0.05


@dataclass
class ServiceConfig:
    """Everything an operator can tune, JSON-loadable for ``cli serve``."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands in endpoint.json
    state_dir: PathLike = "service-state"
    max_concurrent: int = 2
    max_running_per_tenant: int = 2
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    tenant_quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    global_jobs_per_second: float = 20.0
    global_job_burst: float = 40.0
    max_queued_total: int = 256
    breaker_failure_threshold: int = 5
    breaker_cooldown: float = 5.0
    backoff_base: float = 0.2
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    journal_fsync: bool = True
    #: Terminal records kept in memory per tenant; older ones are evicted
    #: (0 disables). An evicted job_id is no longer idempotency-protected.
    max_terminal_records_per_tenant: int = 512
    #: Journal appends between automatic compactions (0 disables): bounds
    #: WAL growth over a long service lifetime, not just at startup.
    journal_compact_interval: int = 4096

    @classmethod
    def from_dict(cls, payload: dict) -> "ServiceConfig":
        payload = dict(payload)
        if "default_quota" in payload:
            payload["default_quota"] = TenantQuota(**payload["default_quota"])
        if "tenant_quotas" in payload:
            payload["tenant_quotas"] = {
                tenant: TenantQuota(**quota)
                for tenant, quota in payload["tenant_quotas"].items()
            }
        return cls(**payload)


class MeasurementService:
    """Supervised, multi-tenant measurement-job service (one event loop).

    All mutable scheduling state (queues, records, token buckets) is owned
    by the asyncio loop; executor threads only touch their own
    :class:`JobRecord` and the supervisor, and hand control back via
    ``asyncio.to_thread``.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        obs: Observability = NULL,
    ) -> None:
        self.config = config or ServiceConfig()
        self.obs = obs
        self.clock = time.time
        self.state_dir = Path(self.config.state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        quotas = self.config.tenant_quotas
        self.admission = AdmissionController(
            default_quota=self.config.default_quota,
            tenant_quotas=quotas,
            global_jobs_per_second=self.config.global_jobs_per_second,
            global_job_burst=self.config.global_job_burst,
            max_queued_total=self.config.max_queued_total,
        )
        self.scheduler = FairScheduler(
            weight_of=lambda tenant: self.admission.quota_for(tenant).weight,
            max_running_per_tenant=self.config.max_running_per_tenant,
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown=self.config.breaker_cooldown,
        )
        self.supervisor = JobSupervisor(
            state_dir=self.state_dir,
            breaker=self.breaker,
            clock=self.clock,
            backoff_base=self.config.backoff_base,
            backoff_factor=self.config.backoff_factor,
            backoff_max=self.config.backoff_max,
        )
        self.journal: Optional[JobJournal] = None
        self.records: Dict[str, JobRecord] = {}
        self.recovered_jobs = 0
        self.skipped_journal_lines = 0
        self.evicted_records_total = 0
        self.compactions_total = 0
        self._appends_at_compact = 0
        self._running: Dict[str, int] = {}  # tenant -> executing jobs
        self._cancel_tokens: Dict[str, CancelToken] = {}
        self._tasks: Set[asyncio.Task] = set()
        self._slots = 0
        self._wake: Optional[asyncio.Event] = None
        self._stopping = False
        self._drained = asyncio.Event()
        self._server: Optional[asyncio.base_events.Server] = None
        self._dispatcher: Optional[asyncio.Task] = None
        from repro.obs.wiring import instrument_service

        instrument_service(obs, self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def journal_path(self) -> Path:
        return self.state_dir / "journal.jsonl"

    @property
    def endpoint_path(self) -> Path:
        return self.state_dir / "endpoint.json"

    def _recover(self) -> None:
        """Replay the WAL: keep terminal results, requeue in-flight jobs."""
        replayed, skipped = JobJournal.replay(self.journal_path)
        self.skipped_journal_lines = skipped
        for record in replayed.values():
            if record.state in ACTIVE_STATES:
                record.state = QUEUED
                record.recovered = True
                if record.spec.kind not in JOB_KINDS:
                    record.state = FAILED
                    record.error = {
                        "type": "unknown_kind",
                        "detail": (
                            "journal recovery found no executor for kind "
                            f"{record.spec.kind!r}"
                        ),
                    }
                    record.finished_at = self.clock()
                else:
                    self.scheduler.push(record)
                    self.recovered_jobs += 1
            self.records[record.job_id] = record
        self.journal = JobJournal(self.journal_path, fsync=self.config.journal_fsync)
        if replayed:
            # One line per job again; the requeued states are now durable.
            self.journal.compact(self.records.values())
        self._appends_at_compact = self.journal.appends_total

    async def start(self) -> None:
        """Recover state, bind the socket, start dispatching."""
        self._wake = asyncio.Event()
        self._recover()
        self._slots = max(1, int(self.config.max_concurrent))
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        self.host, self.port = host, int(port)
        from repro.io import atomic_write_text

        atomic_write_text(
            self.endpoint_path,
            json.dumps(
                {
                    "host": self.host,
                    "port": self.port,
                    "url": f"http://{self.host}:{self.port}",
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
        )
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        if self.obs.enabled:
            self.obs.emit(
                self.clock(), "service.started", self.port, self.recovered_jobs
            )

    def request_shutdown(self) -> None:
        """Signal-handler entry: begin the graceful drain."""
        if not self._stopping:
            self._stopping = True
            for token in self._cancel_tokens.values():
                token.request("drain")
            if self._wake is not None:
                self._wake.set()

    async def shutdown(self) -> None:
        """Drain: stop intake, checkpoint running jobs, journal the queue."""
        self.request_shutdown()
        if self._dispatcher is not None:
            await self._dispatcher
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        # Journal still-queued jobs in their queued state: the next
        # incarnation recovers and finishes them.
        for record in self.scheduler.drain_all():
            self._journal(record)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.journal is not None:
            self.journal.close()
        try:
            self.endpoint_path.unlink()
        except FileNotFoundError:
            pass
        self._drained.set()
        if self.obs.enabled:
            self.obs.emit(self.clock(), "service.stopped", len(self.records))

    async def serve_forever(self) -> None:
        """Run until SIGTERM/SIGINT, then drain gracefully."""
        await self.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_shutdown)
            except NotImplementedError:  # pragma: no cover - non-Unix
                pass
        while not self._stopping:
            await asyncio.sleep(_IDLE_TICK)
        await self.shutdown()

    # ------------------------------------------------------------------
    # Submission / cancellation (called from the request handlers)
    # ------------------------------------------------------------------
    def submit(self, payload: dict) -> Tuple[JobRecord, bool]:
        """Admit one job; returns ``(record, created)``.

        Resubmitting an existing ``job_id`` is idempotent: the stored
        record is returned unchanged (``created=False``), which is what
        lets clients retry submissions after a crash without duplicating
        work or results.
        """
        try:
            spec = JobSpec.from_dict(payload)
        except (KeyError, TypeError, ValueError, ServiceError) as exc:
            raise BadRequest(f"malformed job spec: {exc}") from exc
        existing = self.records.get(spec.job_id)
        if existing is not None:
            return existing, False
        if spec.kind not in JOB_KINDS:
            raise BadRequest(
                f"unknown job kind {spec.kind!r}; "
                f"available: {sorted(JOB_KINDS)}"
            )
        self.admission.admit(
            spec.tenant,
            node_seconds_cost(spec),
            self.scheduler.queued_total(),
            self.scheduler.queued_for(spec.tenant),
        )
        record = JobRecord(spec=spec, submitted_at=self.clock())
        self.records[record.job_id] = record
        self._journal(record)
        self.scheduler.push(record)
        if self._wake is not None:
            self._wake.set()
        return record, True

    def cancel(self, job_id: str) -> JobRecord:
        record = self.records.get(job_id)
        if record is None:
            raise NotFound(f"unknown job id {job_id!r}")
        if record.terminal:
            return record
        # A token exists from dispatch time on, so this covers ADMITTED
        # (popped, executor not yet started) as well as RUNNING jobs.
        token = self._cancel_tokens.get(job_id)
        if token is not None:
            token.request("cancel")
            return record  # the executor thread finishes the transition
        queued = self.scheduler.remove(job_id)
        if queued is not None:
            queued.state = CANCELLED
            queued.error = JobCancelled("cancelled while queued").to_dict()
            queued.finished_at = self.clock()
            self._journal(queued)
            self._enforce_retention()
        return record

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._wake is not None
        while not self._stopping:
            dispatched = False
            # can_attempt() also pauses dispatch while a HALF_OPEN probe
            # is in flight — popping more jobs then would only bounce
            # them straight back via CircuitOpen.
            if self._slots > 0 and self.breaker.can_attempt():
                record = self.scheduler.pop(self._running)
                if record is not None:
                    self._slots -= 1
                    token = self._admit_for_run(record)
                    task = asyncio.create_task(self._run_job(record, token))
                    self._tasks.add(task)
                    task.add_done_callback(self._tasks.discard)
                    dispatched = True
            if not dispatched:
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=_IDLE_TICK)
                except asyncio.TimeoutError:
                    pass
                self._wake.clear()

    def _admit_for_run(self, record: JobRecord) -> CancelToken:
        """Bookkeeping that must happen synchronously with scheduler.pop.

        The cancel token and the tenant's running count exist before the
        event loop yields, so a cancel landing while the job is ADMITTED
        is honored, and a single dispatch pass popping several jobs can
        never overfill ``max_running_per_tenant`` (the scheduler would
        otherwise see a stale running map).
        """
        token = CancelToken()
        if self._stopping:
            token.request("drain")
        self._cancel_tokens[record.job_id] = token
        self._running[record.tenant] = self._running.get(record.tenant, 0) + 1
        return token

    async def _run_job(self, record: JobRecord, token: CancelToken) -> None:
        record.state = RUNNING
        record.started_at = self.clock()
        self._journal(record)
        requeue_front = False
        try:
            await asyncio.to_thread(self.supervisor.run, record, token)
        except CircuitOpen:
            # Fail fast without burning the job: back to the queue head.
            record.state = QUEUED
            requeue_front = True
        except JobCancelled as exc:
            if not exc.requeue:  # pragma: no cover - defensive
                raise
            # Service drain: the job checkpointed at a shard boundary and
            # goes back to queued for the next incarnation.
            record.state = QUEUED
            requeue_front = True
        finally:
            self._cancel_tokens.pop(record.job_id, None)
            count = self._running.get(record.tenant, 1) - 1
            if count > 0:
                self._running[record.tenant] = count
            else:
                self._running.pop(record.tenant, None)
            self._slots += 1
            self._journal(record)
            if requeue_front and not self._stopping:
                self.scheduler.push(record, front=True)
            if self._wake is not None:
                self._wake.set()
        if record.terminal:
            self._observe_completion(record)
            self._enforce_retention()

    def _journal(self, record: JobRecord) -> None:
        if self.journal is not None:
            self.journal.append(record)

    def _enforce_retention(self) -> None:
        """Bound memory and disk over a long service lifetime.

        Evicts the oldest terminal records beyond the per-tenant cap
        (active jobs are never touched) and compacts the journal to one
        line per surviving job once enough appends have accumulated since
        the last rewrite — without this, ``records`` and the WAL grow
        forever under sustained traffic.
        """
        limit = self.config.max_terminal_records_per_tenant
        if limit > 0:
            by_tenant: Dict[str, List[JobRecord]] = {}
            for record in self.records.values():
                if record.terminal:
                    by_tenant.setdefault(record.tenant, []).append(record)
            for terminal in by_tenant.values():
                if len(terminal) <= limit:
                    continue
                terminal.sort(key=lambda r: r.finished_at or 0.0)
                for record in terminal[: len(terminal) - limit]:
                    del self.records[record.job_id]
                    self.evicted_records_total += 1
        interval = self.config.journal_compact_interval
        if (
            self.journal is not None
            and interval > 0
            and self.journal.appends_total - self._appends_at_compact
            >= interval
        ):
            self.journal.compact(self.records.values())
            self._appends_at_compact = self.journal.appends_total
            self.compactions_total += 1

    def _observe_completion(self, record: JobRecord) -> None:
        if not self.obs.enabled:
            return
        from repro.obs import wiring

        labels = {"tenant": record.tenant}
        queue_seconds = record.queue_seconds()
        if queue_seconds is not None:
            self.obs.histogram(
                wiring.SERVICE_QUEUE_SECONDS,
                "Seconds from submission to first execution",
                labels=labels,
            ).observe(queue_seconds)
        run_seconds = record.run_seconds()
        if run_seconds is not None:
            self.obs.histogram(
                wiring.SERVICE_RUN_SECONDS,
                "Seconds spent executing (including retries)",
                labels=labels,
            ).observe(run_seconds)
        total_seconds = record.total_seconds()
        if total_seconds is not None:
            self.obs.histogram(
                wiring.SERVICE_TOTAL_SECONDS,
                "Seconds from submission to terminal state",
                labels=labels,
            ).observe(total_seconds)
        self.obs.emit(
            self.clock(),
            "service.job_finished",
            record.job_id,
            record.tenant,
            record.state,
            record.attempts,
            record.partial,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The ``/v1/metrics`` service body (and the obs pull source)."""
        by_state = {state: 0 for state in STATES}
        for record in self.records.values():
            by_state[record.state] += 1
        # Queued records live in the scheduler, not double-counted above
        # (they are in self.records too; the counts are consistent).
        return {
            "draining": self._stopping,
            "queued": self.scheduler.queued_total(),
            "queued_by_tenant": self.scheduler.depths(),
            "running": sum(self._running.values()),
            "running_by_tenant": dict(sorted(self._running.items())),
            "jobs_by_state": by_state,
            "jobs_total": len(self.records),
            "recovered_jobs": self.recovered_jobs,
            "evicted_records_total": self.evicted_records_total,
            "admitted_total": self.admission.admitted_total,
            "rejected": dict(sorted(self.admission.rejected.items())),
            "tokens": self.admission.token_levels(),
            "breaker": {
                "state": self.breaker.state,
                "trips_total": self.breaker.trips_total,
                "retry_after": self.breaker.retry_after(),
            },
            "retries_total": self.supervisor.retries_total,
            "journal": {
                "path": str(self.journal_path),
                "appends_total": (
                    self.journal.appends_total if self.journal else 0
                ),
                "compactions_total": self.compactions_total,
                "skipped_lines_on_recovery": self.skipped_journal_lines,
            },
        }

    # ------------------------------------------------------------------
    # HTTP front end
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._handle_request(reader)
        except ServiceError as exc:
            status, payload = exc.http_status, {"error": exc.to_dict()}
        except Exception as exc:  # noqa: BLE001 - boundary of the server
            status, payload = 500, {
                "error": {"type": "internal", "detail": f"{type(exc).__name__}: {exc}"}
            }
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reasons = {
            200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable", 504: "Gateway Timeout",
        }
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode("ascii") + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, dict]:
        request_line = await reader.readline()
        parts = request_line.decode("ascii", "replace").split()
        if len(parts) < 2:
            raise BadRequest("malformed request line")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("ascii", "replace").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        raw = await reader.readexactly(length) if length else b""
        if raw:
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise BadRequest(f"request body is not JSON: {exc}") from exc
        else:
            body = {}
        return self._route(method, path, body)

    def _route(self, method: str, path: str, body: dict) -> Tuple[int, dict]:
        segments = [s for s in path.split("?")[0].split("/") if s]
        if segments[:1] != ["v1"]:
            return 404, {"error": {"type": "not_found", "detail": path}}
        tail = segments[1:]
        if tail == ["healthz"] and method == "GET":
            return 200, {"status": "draining" if self._stopping else "ok"}
        if tail == ["metrics"] and method == "GET":
            payload: dict = {"service": self.stats()}
            if self.obs.enabled:
                payload["obs"] = self.obs.snapshot()
            return 200, payload
        if tail == ["jobs"]:
            if method == "POST":
                if self._stopping:
                    return 503, {
                        "error": {
                            "type": "draining",
                            "detail": "service is draining; "
                            "resubmit to the next incarnation",
                        }
                    }
                record, created = self.submit(body)
                return (202 if created else 200), {"job": record.to_dict()}
            if method == "GET":
                return 200, {
                    "jobs": [
                        record.summary() for record in self.records.values()
                    ]
                }
            return 405, {"error": {"type": "method_not_allowed", "detail": method}}
        if len(tail) >= 2 and tail[0] == "jobs":
            job_id = tail[1]
            if len(tail) == 3 and tail[2] == "cancel" and method == "POST":
                return 202, {"job": self.cancel(job_id).to_dict()}
            if len(tail) == 2 and method == "GET":
                record = self.records.get(job_id)
                if record is None:
                    return 404, {
                        "error": {"type": "not_found", "detail": job_id}
                    }
                return 200, {"job": record.to_dict()}
        return 404, {"error": {"type": "not_found", "detail": path}}


def run_service(
    config: Optional[ServiceConfig] = None, obs: Observability = NULL
) -> None:
    """Blocking entry point used by ``repro.cli serve``."""
    service = MeasurementService(config=config, obs=obs)
    asyncio.run(service.serve_forever())
