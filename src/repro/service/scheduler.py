"""Fairness-capped scheduling: weighted round-robin drain over tenants.

The drain discipline follows the animica mempool spec (``mempool/drain.py``:
ordered selection under budgets with per-sender fairness caps), transposed
to tenants and jobs: each tenant owns a FIFO queue, and the scheduler
serves tenants in a round-robin rotation where a tenant with weight *w*
may dispatch up to *w* jobs per rotation pass before yielding.  Combined
with a per-tenant running cap, an abusive tenant with a thousand queued
jobs delays an honest tenant's next job by at most one rotation — it can
never starve it.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Mapping, Optional

from repro.service.jobs import ADMITTED, JobRecord


class FairScheduler:
    """Per-tenant FIFO queues + weighted round-robin drain.

    Not thread-safe by design: it is owned by the service's asyncio loop
    (the executor threads never touch it).
    """

    def __init__(
        self,
        weight_of: Optional[Callable[[str], int]] = None,
        max_running_per_tenant: int = 2,
    ) -> None:
        self.weight_of = weight_of or (lambda tenant: 1)
        self.max_running_per_tenant = max(1, int(max_running_per_tenant))
        self._queues: Dict[str, Deque[JobRecord]] = {}
        self._rotation: Deque[str] = deque()
        self._credits: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Enqueue
    # ------------------------------------------------------------------
    def push(self, record: JobRecord, front: bool = False) -> None:
        """Queue a job (``front=True`` for drain/circuit-open requeues, so
        an interrupted job does not lose its place behind newer work)."""
        tenant = record.tenant
        queue = self._queues.get(tenant)
        if queue is None:
            queue = deque()
            self._queues[tenant] = queue
        if front:
            queue.appendleft(record)
        else:
            queue.append(record)
        if tenant not in self._credits:
            self._rotation.append(tenant)
            self._credits[tenant] = max(1, int(self.weight_of(tenant)))

    # ------------------------------------------------------------------
    # Weighted round-robin drain
    # ------------------------------------------------------------------
    def pop(
        self, running: Optional[Mapping[str, int]] = None
    ) -> Optional[JobRecord]:
        """Pick the next job fairly, or None if nothing is dispatchable.

        ``running`` maps tenant -> currently executing jobs; tenants at
        the ``max_running_per_tenant`` cap are skipped this call (their
        queued work stays put).
        """
        running = running or {}
        # Each tenant is visited at most twice per call (once to refresh
        # exhausted credits, once to serve), so the walk is bounded.
        for _ in range(2 * len(self._rotation) + 1):
            if not self._rotation:
                return None
            tenant = self._rotation[0]
            queue = self._queues.get(tenant)
            if not queue:
                self._rotation.popleft()
                self._credits.pop(tenant, None)
                continue
            if running.get(tenant, 0) >= self.max_running_per_tenant:
                self._rotation.rotate(-1)
                continue
            if self._credits.get(tenant, 0) <= 0:
                self._credits[tenant] = max(1, int(self.weight_of(tenant)))
                self._rotation.rotate(-1)
                continue
            record = queue.popleft()
            self._credits[tenant] -= 1
            if not queue:
                # Drop the empty tenant from the rotation eagerly; a later
                # push re-inserts it at the back with fresh credits.
                self._rotation.remove(tenant)
                self._credits.pop(tenant, None)
            record.state = ADMITTED
            return record
        return None

    # ------------------------------------------------------------------
    # Introspection / management
    # ------------------------------------------------------------------
    def queued_total(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def queued_for(self, tenant: str) -> int:
        queue = self._queues.get(tenant)
        return len(queue) if queue else 0

    def depths(self) -> Dict[str, int]:
        return {
            tenant: len(queue)
            for tenant, queue in sorted(self._queues.items())
            if queue
        }

    def remove(self, job_id: str) -> Optional[JobRecord]:
        """Pull a still-queued job out (client cancellation)."""
        for queue in self._queues.values():
            for record in queue:
                if record.job_id == job_id:
                    queue.remove(record)
                    return record
        return None

    def drain_all(self) -> List[JobRecord]:
        """Empty every queue (service shutdown journaling).

        Records keep their ``queued`` state — they are being persisted for
        recovery, not dispatched.
        """
        drained: List[JobRecord] = []
        for tenant in sorted(self._queues):
            drained.extend(self._queues[tenant])
        self._queues.clear()
        self._rotation.clear()
        self._credits.clear()
        return drained
