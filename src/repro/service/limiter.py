"""Admission control: token buckets, tenant quotas, bounded queues.

Modeled on the animica mempool DoS-limits spec (``mempool/limiter.py``):
per-peer *and* global rate throttles, denominated in two currencies —
jobs/s (the tx/s analogue) and simulated node-seconds/s (the bytes/s
analogue, so few huge jobs cost what many small ones do) — plus bounded
queues that shed load with typed 429-style rejections instead of growing
without bound.

Rejections are *cheap and typed*: :class:`~repro.errors.QueueFull` for
bounded-queue sheds, :class:`~repro.errors.QuotaExceeded` for dry token
buckets, both carrying a ``retry_after`` hint derived from the refill
horizon.  Admission is two-phase (check every bucket, then debit) so a
rejection never burns tokens from a bucket that did have capacity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import QueueFull, QuotaExceeded, ServiceError

Clock = Callable[[], float]


class TokenBucket:
    """Classic leaky token bucket: ``rate`` tokens/s up to ``capacity``.

    ``rate <= 0`` disables the bucket (always full) so operators can turn
    individual throttles off without special-casing call sites.
    """

    __slots__ = ("rate", "capacity", "_tokens", "_last", "_clock")

    def __init__(
        self, rate: float, capacity: float, clock: Clock = time.monotonic
    ) -> None:
        if capacity <= 0 and rate > 0:
            raise ServiceError(
                f"token bucket needs positive capacity, got {capacity}"
            )
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._tokens = float(capacity)
        self._clock = clock
        self._last = clock()

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        self._last = now
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)

    def available(self) -> float:
        """Tokens on hand right now (after refill)."""
        if not self.enabled:
            return float("inf")
        self._refill()
        return self._tokens

    def can_take(self, n: float = 1.0) -> bool:
        return self.available() >= n

    def take(self, n: float = 1.0) -> None:
        """Debit ``n`` tokens; caller must have checked :meth:`can_take`."""
        if not self.enabled:
            return
        self._refill()
        self._tokens -= n

    def try_take(self, n: float = 1.0) -> bool:
        if not self.can_take(n):
            return False
        self.take(n)
        return True

    def retry_after(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens could be on hand (refill horizon).

        Demands beyond ``capacity`` can never be satisfied; report the
        full-bucket horizon rather than infinity so clients still get a
        finite, honest backoff hint.
        """
        if not self.enabled:
            return 0.0
        self._refill()
        deficit = min(n, self.capacity) - self._tokens
        return max(0.0, deficit / self.rate)


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant fair-use envelope (the animica per-peer caps).

    ``weight`` feeds the scheduler's weighted round-robin drain;
    ``max_queued`` bounds the tenant's queue so one abusive tenant sheds
    its own overload instead of consuming the global queue budget.
    """

    jobs_per_second: float = 2.0
    job_burst: float = 8.0
    node_seconds_per_second: float = 2000.0
    node_seconds_burst: float = 8000.0
    max_queued: int = 32
    weight: int = 1

    def to_dict(self) -> dict:
        return {
            "jobs_per_second": self.jobs_per_second,
            "job_burst": self.job_burst,
            "node_seconds_per_second": self.node_seconds_per_second,
            "node_seconds_burst": self.node_seconds_burst,
            "max_queued": self.max_queued,
            "weight": self.weight,
        }


class _TenantBuckets:
    __slots__ = ("quota", "jobs", "node_seconds")

    def __init__(self, quota: TenantQuota, clock: Clock) -> None:
        self.quota = quota
        self.jobs = TokenBucket(quota.jobs_per_second, quota.job_burst, clock)
        self.node_seconds = TokenBucket(
            quota.node_seconds_per_second, quota.node_seconds_burst, clock
        )


class AdmissionController:
    """Decides, per submission, admit vs typed shed.

    Check order is cheapest-reject-first (the animica admission pipeline):
    bounded queues (free), then the global jobs/s throttle, then the
    tenant's jobs/s and node-seconds buckets.  All checks pass before any
    bucket is debited.
    """

    def __init__(
        self,
        default_quota: Optional[TenantQuota] = None,
        tenant_quotas: Optional[Dict[str, TenantQuota]] = None,
        global_jobs_per_second: float = 20.0,
        global_job_burst: float = 40.0,
        max_queued_total: int = 256,
        clock: Clock = time.monotonic,
    ) -> None:
        self.default_quota = default_quota or TenantQuota()
        self._quotas = dict(tenant_quotas or {})
        self._clock = clock
        self._tenants: Dict[str, _TenantBuckets] = {}
        self.global_bucket = TokenBucket(
            global_jobs_per_second, global_job_burst, clock
        )
        self.max_queued_total = int(max_queued_total)
        # Shed/accept accounting, read by the obs pull collector.
        self.admitted_total = 0
        self.rejected: Dict[str, int] = {}

    def quota_for(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self.default_quota)

    def _buckets_for(self, tenant: str) -> _TenantBuckets:
        buckets = self._tenants.get(tenant)
        if buckets is None:
            buckets = _TenantBuckets(self.quota_for(tenant), self._clock)
            self._tenants[tenant] = buckets
        return buckets

    def _reject(self, reason: str, exc: Exception) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1
        raise exc

    def admit(
        self,
        tenant: str,
        cost_node_seconds: float,
        queued_total: int,
        queued_for_tenant: int,
    ) -> None:
        """Admit one job or raise a typed 429-style rejection."""
        if queued_total >= self.max_queued_total:
            self._reject(
                "queue_full_global",
                QueueFull(
                    f"service queue is at capacity ({self.max_queued_total} "
                    "jobs); load shed",
                    retry_after=1.0,
                ),
            )
        quota = self.quota_for(tenant)
        if queued_for_tenant >= quota.max_queued:
            self._reject(
                "queue_full_tenant",
                QueueFull(
                    f"tenant {tenant!r} queue is at capacity "
                    f"({quota.max_queued} jobs); load shed",
                    retry_after=1.0,
                ),
            )
        buckets = self._buckets_for(tenant)
        # Two-phase: every bucket must have capacity before any is debited.
        if not self.global_bucket.can_take(1.0):
            self._reject(
                "global_rate",
                QuotaExceeded(
                    "global job-rate throttle exhausted",
                    retry_after=self.global_bucket.retry_after(1.0),
                ),
            )
        if not buckets.jobs.can_take(1.0):
            self._reject(
                "tenant_rate",
                QuotaExceeded(
                    f"tenant {tenant!r} job-rate quota exhausted",
                    retry_after=buckets.jobs.retry_after(1.0),
                ),
            )
        if not buckets.node_seconds.can_take(cost_node_seconds):
            self._reject(
                "tenant_budget",
                QuotaExceeded(
                    f"tenant {tenant!r} node-seconds budget exhausted "
                    f"(job costs {cost_node_seconds:.0f})",
                    retry_after=buckets.node_seconds.retry_after(
                        cost_node_seconds
                    ),
                ),
            )
        self.global_bucket.take(1.0)
        buckets.jobs.take(1.0)
        buckets.node_seconds.take(cost_node_seconds)
        self.admitted_total += 1

    def token_levels(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant remaining tokens, for the metrics collector."""
        levels: Dict[str, Dict[str, float]] = {}
        for tenant, buckets in sorted(self._tenants.items()):
            levels[tenant] = {
                # Disabled buckets report their (infinite) headroom as the
                # configured capacity so the levels stay JSON-serializable.
                "jobs": min(buckets.jobs.available(), buckets.jobs.capacity),
                "node_seconds": min(
                    buckets.node_seconds.available(),
                    buckets.node_seconds.capacity,
                ),
            }
        return levels
