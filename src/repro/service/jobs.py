"""Job model for the measurement service: specs, records, lifecycle.

A job walks the supervised lifecycle::

    queued ──> admitted ──> running ──> done
                  ^            │  ├───> failed      (attempts exhausted)
                  │            │  ├───> cancelled   (client request)
                  └────────────┘  └───> timed_out   (deadline; partial result)
                 (requeue: drain or circuit-open)

``queued`` means the job passed admission control and sits in its tenant's
fair-share queue; ``admitted`` means the weighted-round-robin drain picked
it and it is waiting on an executor slot; ``running`` means an executor
thread owns it.  Every transition is journaled (:mod:`repro.service.journal`)
so a crashed service recovers each job into a well-defined state.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ServiceError

# Lifecycle states (plain strings: they serialize as-is into the journal
# and API payloads).
QUEUED = "queued"
ADMITTED = "admitted"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TIMED_OUT = "timed_out"

STATES = (QUEUED, ADMITTED, RUNNING, DONE, FAILED, CANCELLED, TIMED_OUT)
TERMINAL_STATES = frozenset((DONE, FAILED, CANCELLED, TIMED_OUT))
ACTIVE_STATES = frozenset((QUEUED, ADMITTED, RUNNING))

#: Job kinds shipped with the service. ``measure`` runs a TopoShot campaign
#: on the sharded executor; ``synthetic`` is a deterministic stand-in used
#: by load tests and the smoke suite (and the template for hosting other
#: measurement protocols — DEthna/Ethna — as additional kinds later).
KIND_MEASURE = "measure"
KIND_SYNTHETIC = "synthetic"


def new_job_id(tenant: str) -> str:
    """Unique, journal-stable job id (embeds the tenant for readability)."""
    return f"{tenant}-{uuid.uuid4().hex[:12]}"


@dataclass
class JobSpec:
    """What the client asked for — immutable once admitted.

    ``params`` is kind-specific: for ``measure`` a normalized
    ``{"campaign": CampaignSpec.to_dict(), "workers": N}`` payload, for
    ``synthetic`` the knobs of :func:`repro.service.supervisor.
    _execute_synthetic`.  ``deadline`` is wall-clock seconds from
    submission; ``max_attempts`` bounds the retry-with-backoff loop.
    """

    tenant: str
    kind: str = KIND_MEASURE
    params: Dict[str, object] = field(default_factory=dict)
    deadline: Optional[float] = None
    max_attempts: int = 3
    job_id: str = ""

    def __post_init__(self) -> None:
        if not self.tenant or not str(self.tenant).strip():
            raise ServiceError("job spec needs a non-empty tenant")
        if self.max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ServiceError(
                f"deadline must be positive seconds, got {self.deadline}"
            )
        if not self.job_id:
            self.job_id = new_job_id(self.tenant)

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "kind": self.kind,
            "params": dict(self.params),
            "deadline": self.deadline,
            "max_attempts": self.max_attempts,
            "job_id": self.job_id,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        return cls(
            tenant=str(payload["tenant"]),
            kind=str(payload.get("kind", KIND_MEASURE)),
            params=dict(payload.get("params", {})),
            deadline=payload.get("deadline"),
            max_attempts=int(payload.get("max_attempts", 3)),
            job_id=str(payload.get("job_id", "")),
        )


@dataclass
class JobRecord:
    """One job's full supervised state — the unit the journal persists.

    Timestamps are service wall-clock (``time.monotonic`` of the serving
    process is useless across restarts, so these use ``time.time``-style
    absolute seconds supplied by the service clock).
    """

    spec: JobSpec
    state: str = QUEUED
    attempts: int = 0
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[dict] = None
    error: Optional[dict] = None
    #: True when the result is a shard-granular partial (deadline/cancel
    #: hit mid-campaign); the result payload carries confidence labels.
    partial: bool = False
    #: True when this record was re-admitted by journal recovery.
    recovered: bool = False

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def deadline_at(self) -> Optional[float]:
        if self.spec.deadline is None:
            return None
        return self.submitted_at + self.spec.deadline

    def queue_seconds(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return max(0.0, self.started_at - self.submitted_at)

    def run_seconds(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return max(0.0, self.finished_at - self.started_at)

    def total_seconds(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return max(0.0, self.finished_at - self.submitted_at)

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "state": self.state,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "result": self.result,
            "error": self.error,
            "partial": self.partial,
            "recovered": self.recovered,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobRecord":
        state = str(payload.get("state", QUEUED))
        if state not in STATES:
            raise ServiceError(f"unknown job state {state!r} in record")
        return cls(
            spec=JobSpec.from_dict(payload["spec"]),
            state=state,
            attempts=int(payload.get("attempts", 0)),
            submitted_at=float(payload.get("submitted_at", 0.0)),
            started_at=payload.get("started_at"),
            finished_at=payload.get("finished_at"),
            result=payload.get("result"),
            error=payload.get("error"),
            partial=bool(payload.get("partial", False)),
            recovered=bool(payload.get("recovered", False)),
        )

    def summary(self) -> dict:
        """The compact API listing view (no result body)."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "kind": self.spec.kind,
            "state": self.state,
            "attempts": self.attempts,
            "partial": self.partial,
            "recovered": self.recovered,
            "error": self.error,
        }


def node_seconds_cost(spec: JobSpec) -> float:
    """Admission-time cost estimate in *simulated node-seconds*.

    The tenant budget buckets are denominated in this unit so a tenant
    cannot sidestep a jobs/s limit by submitting few huge campaigns: a
    measure job costs ``n_nodes * repeats`` (the dominant simulation-cost
    driver), a synthetic job its declared step count.
    """
    if spec.kind == KIND_MEASURE:
        campaign = spec.params.get("campaign")
        if isinstance(campaign, dict):
            network = campaign.get("network", {})
            nodes = int(network.get("n_nodes", 0)) or 1
            repeats = campaign.get("repeats") or 1
            return float(nodes * max(1, int(repeats)))
        return 1.0
    if spec.kind == KIND_SYNTHETIC:
        return float(max(1, int(spec.params.get("steps", 1))))
    return 1.0
