"""Blocking client for the measurement service (stdlib ``http.client``).

The client mirrors the server's typed error taxonomy: non-2xx responses
raise :class:`ServiceClientError` carrying the HTTP status and the typed
error payload (``type``, ``detail``, ``retry_after``), so callers handle
load-shedding programmatically::

    client = ServiceClient.from_state_dir("service-state")
    try:
        job = client.submit(tenant="alice", kind="synthetic",
                            params={"steps": 3})
    except ServiceClientError as exc:
        if exc.error_type in ("quota_exceeded", "queue_full"):
            time.sleep(exc.retry_after or 1.0)   # typed 429: back off
"""

from __future__ import annotations

import http.client
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ServiceError
from repro.service.jobs import TERMINAL_STATES

PathLike = Union[str, Path]


class ServiceClientError(ServiceError):
    """A non-2xx response, with the server's typed error attached."""

    def __init__(self, status: int, error: dict) -> None:
        self.status = int(status)
        self.error = dict(error or {})
        detail = self.error.get("detail", "") or f"HTTP {status}"
        super().__init__(f"[{status}] {self.error.get('type', 'error')}: {detail}")

    @property
    def error_type(self) -> str:
        return str(self.error.get("type", ""))

    @property
    def retry_after(self) -> Optional[float]:
        value = self.error.get("retry_after")
        return float(value) if value is not None else None


class ServiceClient:
    """Minimal synchronous HTTP client for :mod:`repro.service.server`."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    @classmethod
    def from_state_dir(
        cls, state_dir: PathLike, timeout: float = 30.0
    ) -> "ServiceClient":
        """Connect via the ``endpoint.json`` the server writes on bind
        (which is how callers find an ephemeral ``--port 0`` service)."""
        endpoint = Path(state_dir) / "endpoint.json"
        if not endpoint.exists():
            raise ServiceError(
                f"no endpoint file at {endpoint}; is the service running?"
            )
        payload = json.loads(endpoint.read_text(encoding="utf-8"))
        return cls(payload["host"], int(payload["port"]), timeout=timeout)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            status = response.status
        except (ConnectionError, OSError) as exc:
            raise ServiceError(
                f"measurement service unreachable at "
                f"{self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            conn.close()
        try:
            data = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"non-JSON response (HTTP {status})") from exc
        if status >= 400:
            raise ServiceClientError(status, data.get("error", {}))
        return data

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        kind: str = "measure",
        params: Optional[dict] = None,
        deadline: Optional[float] = None,
        max_attempts: int = 3,
        job_id: str = "",
    ) -> dict:
        """Submit a job; returns the server's job record dict."""
        payload: Dict[str, object] = {
            "tenant": tenant,
            "kind": kind,
            "params": params or {},
            "max_attempts": max_attempts,
        }
        if deadline is not None:
            payload["deadline"] = deadline
        if job_id:
            payload["job_id"] = job_id
        return self._request("POST", "/v1/jobs", payload)["job"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def jobs(self) -> List[dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")["job"]

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def wait(
        self, job_id: str, timeout: float = 60.0, poll: float = 0.05
    ) -> dict:
        """Poll until the job reaches a terminal state (or raise on timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in TERMINAL_STATES:
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {record['state']!r} after "
                    f"{timeout:.1f}s"
                )
            time.sleep(poll)
