"""Periodic processes on top of the event engine.

A :class:`PeriodicProcess` re-schedules itself after each tick, optionally
with exponential jitter (Poisson process), until stopped. It is used for
block production, background workloads and liveness-style maintenance.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Event, Simulator


class PeriodicProcess:
    """Invoke ``action`` repeatedly on the simulator clock.

    Parameters
    ----------
    sim:
        Engine the process schedules itself on.
    interval:
        Mean interval between invocations, seconds.
    action:
        Zero-argument callable invoked each tick.
    poisson:
        If true, the gap to the next tick is exponentially distributed with
        mean ``interval`` (memoryless, like proof-of-work block arrival);
        otherwise the gap is exactly ``interval``.
    rng_name:
        RNG stream name used for jitter draws.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        action: Callable[[], None],
        poisson: bool = False,
        rng_name: str = "periodic",
        label: str = "periodic",
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval = interval
        self.action = action
        self.poisson = poisson
        self.label = label
        self._rng = sim.rng.stream(rng_name)
        self._event: Optional[Event] = None
        self._running = False
        self.ticks = 0

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Begin ticking; the first tick fires after ``initial_delay``.

        When ``initial_delay`` is omitted a regular gap is drawn.
        """
        if self._running:
            return
        self._running = True
        delay = self._next_gap() if initial_delay is None else initial_delay
        self._event = self.sim.schedule(delay, self._tick, label=self.label)

    def stop(self) -> None:
        """Stop ticking; a queued tick is cancelled."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def running(self) -> bool:
        return self._running

    def _next_gap(self) -> float:
        if self.poisson:
            return self._rng.expovariate(1.0 / self.interval)
        return self.interval

    def _tick(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        self.action()
        if self._running:
            self._event = self.sim.schedule(
                self._next_gap(), self._tick, label=self.label
            )
