"""Named, seeded random-number streams.

Reproducibility discipline: no component uses the global ``random`` module.
Each component asks the registry for a stream keyed by a stable name
(e.g. ``"latency"``, ``"node:17"``); the stream's seed is derived from the
master seed and the name, so adding a new consumer never perturbs the draws
seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Tuple


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    Uses BLAKE2b so the mapping is stable across Python versions and
    processes (unlike ``hash()``, which is salted).
    """
    digest = hashlib.blake2b(
        f"{master_seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def spawn_seed(master_seed: int, *key: object) -> int:
    """Derive a child master seed for a spawned execution unit (e.g. a shard).

    ``key`` parts are joined with ``/`` under a ``spawn:`` prefix, so the
    child-seed universe is disjoint from ordinary stream names and stable
    across processes: ``spawn_seed(s, "shard", 3)`` is the same integer in
    every worker.
    """
    return derive_seed(master_seed, "spawn:" + "/".join(str(part) for part in key))


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Create a child registry whose master seed is derived from ``name``.

        Useful for giving a whole subsystem (e.g. a topology generator) an
        independent seed universe.
        """
        return RngRegistry(derive_seed(self.master_seed, name))

    def spawn(self, *key: object) -> int:
        """Return the child master seed for spawn ``key`` (see :func:`spawn_seed`)."""
        return spawn_seed(self.master_seed, *key)

    def capture(self) -> Tuple[int, Dict[str, object]]:
        """Capture the master seed and the exact state of every live stream.

        The returned value is opaque; pass it back to :meth:`restore`.
        """
        return (
            self.master_seed,
            {name: stream.getstate() for name, stream in self._streams.items()},
        )

    def restore(self, captured: Tuple[int, Dict[str, object]]) -> None:
        """Restore the registry to a previously captured state, in place.

        Streams present in the capture get their exact saved state back via
        ``setstate``. Streams created *after* the capture are re-seeded from
        the captured master seed, which is what a fresh registry would have
        handed out on their first use — so "restore then run" draws the same
        numbers as "fresh build then run".

        All updates mutate the existing ``random.Random`` objects: consumers
        hold bound references to them (``stream.random`` etc.), so the
        objects themselves must never be replaced.
        """
        master_seed, states = captured
        self.master_seed = master_seed
        for name, stream in self._streams.items():
            if name in states:
                stream.setstate(states[name])
            else:
                stream.seed(derive_seed(master_seed, name))

    def reseed(self, child_seed: int) -> None:
        """Re-seed every live stream under a new master seed, in place.

        Used to put a replica into a shard's seed universe: after
        ``reseed(spawn_seed(master, "shard", i))`` every existing stream —
        and every stream lazily created later — derives from the shard seed,
        regardless of whether the replica was freshly built or restored.
        """
        self.master_seed = child_seed
        for name, stream in self._streams.items():
            stream.seed(derive_seed(child_seed, name))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)
