"""Named, seeded random-number streams.

Reproducibility discipline: no component uses the global ``random`` module.
Each component asks the registry for a stream keyed by a stable name
(e.g. ``"latency"``, ``"node:17"``); the stream's seed is derived from the
master seed and the name, so adding a new consumer never perturbs the draws
seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    Uses BLAKE2b so the mapping is stable across Python versions and
    processes (unlike ``hash()``, which is salted).
    """
    digest = hashlib.blake2b(
        f"{master_seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Create a child registry whose master seed is derived from ``name``.

        Useful for giving a whole subsystem (e.g. a topology generator) an
        independent seed universe.
        """
        return RngRegistry(derive_seed(self.master_seed, name))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)
