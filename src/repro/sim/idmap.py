"""String↔integer node-id interning for the struct-of-arrays core.

The public simulation API speaks node-id *strings* (``"testnet-0042"``,
``"supernode-M"``); the hot state underneath — adjacency, the delivery
path, per-node arrays — is indexed by dense integers. :class:`IdMap` is
the boundary between the two: it assigns each string the next free index
the first time it is interned and never forgets or reorders an entry, so

* the mapping is a **bijection** between the interned strings and
  ``range(len(idmap))``;
* indices are **stable for a generation seed**: interning happens in node
  creation order, which ``repro.netgen`` derives deterministically from
  the spec and seed, so the same ``(spec, seed)`` yields the same
  ``str -> int`` table in every process;
* a snapshot/restore cycle cannot disturb it — restores never add or
  remove nodes (``Network.restore`` enforces an identical node set), and
  :meth:`capture` exists so tests can assert the bijection survived.

The map deliberately exposes its two internal containers (``names`` list,
``index`` dict) as read-only-by-convention attributes: the transport binds
them once and does raw ``list[i]`` / ``dict[s]`` operations per message,
which is the whole point of interning.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple


class IdMap:
    """Append-only intern table mapping node-id strings to dense ints."""

    __slots__ = ("names", "index")

    def __init__(self) -> None:
        #: Interned strings, position == index. Owned by the map; callers
        #: may read (and bind) but never mutate.
        self.names: List[str] = []
        #: Inverse of :attr:`names`.
        self.index: Dict[str, int] = {}

    def intern(self, name: str) -> int:
        """Return ``name``'s index, assigning the next free one if new."""
        idx = self.index.get(name)
        if idx is None:
            idx = len(self.names)
            self.index[name] = idx
            self.names.append(name)
        return idx

    def index_of(self, name: str) -> int:
        """The index of an already-interned ``name`` (KeyError if absent)."""
        return self.index[name]

    def get(self, name: str, default: int = -1) -> int:
        return self.index.get(name, default)

    def name_of(self, index: int) -> str:
        """The string for ``index`` (IndexError if out of range)."""
        if index < 0:
            raise IndexError(f"negative node index {index}")
        return self.names[index]

    def __len__(self) -> int:
        return len(self.names)

    def __contains__(self, name: str) -> bool:
        return name in self.index

    def __iter__(self) -> Iterator[str]:
        return iter(self.names)

    def capture(self) -> Tuple[str, ...]:
        """Frozen copy of the table, index order (for bijection checks)."""
        return tuple(self.names)

    def check_bijection(self) -> None:
        """Assert internal consistency (tests/invariants only)."""
        if len(self.names) != len(self.index):
            raise AssertionError(
                f"idmap desync: {len(self.names)} names vs "
                f"{len(self.index)} index entries"
            )
        for idx, name in enumerate(self.names):
            if self.index.get(name) != idx:
                raise AssertionError(
                    f"idmap desync at {idx}: {name!r} maps to "
                    f"{self.index.get(name)!r}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IdMap({len(self.names)} ids)"
