"""Core discrete-event simulation loop.

The simulator maintains a heap of :class:`Event` records ordered by
``(time, sequence)``. The sequence number makes ordering total and
deterministic: two events scheduled for the same instant fire in the order
they were scheduled.

Typical usage::

    sim = Simulator(seed=42)
    sim.schedule(1.5, lambda: print("fires at t=1.5"))
    sim.run()
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ScheduleInPastError, SimulationError
from repro.sim.rng import RngRegistry
from repro.sim.tracing import Tracer


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so the heap pops them in deterministic
    chronological order. ``cancelled`` events are popped and discarded.
    ``daemon`` events (fault-injection processes, periodic maintenance) run
    normally but do not keep an open-ended :meth:`Simulator.run` alive: once
    only daemon events remain the simulation is considered quiescent.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    daemon: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the :class:`~repro.sim.rng.RngRegistry`. Every
        stochastic component derives its own named stream from this seed.
    trace:
        If true, keep a :class:`~repro.sim.tracing.Tracer` recording every
        executed event (useful in tests, costly in large runs).
    """

    def __init__(self, seed: int = 0, trace: bool = False) -> None:
        self._now = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._executed = 0
        self._non_daemon_pending = 0
        self.rng = RngRegistry(seed)
        self.seed = seed
        self.tracer: Optional[Tracer] = Tracer() if trace else None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def executed_events(self) -> int:
        """Number of events executed so far."""
        return self._executed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        label: str = "",
        daemon: bool = False,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which the caller may ``cancel()``.
        Raises :class:`ScheduleInPastError` for negative delays. ``daemon``
        events never keep an open-ended :meth:`run` going on their own.
        """
        if delay < 0:
            raise ScheduleInPastError(
                f"cannot schedule {delay:.6f}s in the past (now={self._now:.6f})"
            )
        event = Event(self._now + delay, next(self._seq), callback, label, daemon=daemon)
        heapq.heappush(self._queue, event)
        if not daemon:
            self._non_daemon_pending += 1
        return event

    def schedule_at(
        self, when: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute simulation time ``when``."""
        return self.schedule(when - self._now, callback, label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next non-cancelled event.

        Returns ``False`` when the queue is exhausted, ``True`` otherwise.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if not event.daemon:
                self._non_daemon_pending -= 1
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError(
                    f"event at t={event.time} popped after clock t={self._now}"
                )
            self._now = event.time
            if self.tracer is not None:
                self.tracer.record(self._now, "event", event.label)
            event.callback()
            self._executed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        ``until`` is an absolute simulation time; events scheduled beyond it
        stay queued and the clock is advanced exactly to ``until``.

        An open-ended run (``until=None``) stops once only daemon events
        remain queued — otherwise a recurring fault-injection process would
        keep ``settle()`` from ever returning. A bounded run executes daemon
        events up to ``until`` like any other event.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                return
            if until is None and self._non_daemon_pending <= 0:
                return
            next_event = self._peek()
            if next_event is None:
                break
            if until is not None and next_event.time > until:
                self._now = max(self._now, until)
                return
            if self.step():
                executed += 1
        if until is not None:
            self._now = max(self._now, until)

    def run_for(self, duration: float, max_events: Optional[int] = None) -> None:
        """Run the simulation for ``duration`` seconds of simulated time."""
        self.run(until=self._now + duration, max_events=max_events)

    def _peek(self) -> Optional[Event]:
        """Return the next live event without popping it."""
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                if not event.daemon:
                    self._non_daemon_pending -= 1
                continue
            return event
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.3f}, pending={len(self._queue)}, "
            f"executed={self._executed})"
        )
