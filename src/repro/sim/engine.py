"""Core discrete-event simulation loop.

The simulator maintains a heap of plain ``(time, seq, event)`` tuples so
heap ordering is decided by C-level tuple comparison instead of a generated
dataclass ``__lt__``. The sequence number makes ordering total and
deterministic: two events scheduled for the same instant fire in the order
they were scheduled, and the payload :class:`Event` is never compared.

Typical usage::

    sim = Simulator(seed=42)
    sim.schedule(1.5, lambda: print("fires at t=1.5"))
    sim.run()

For a breakdown of where callback time goes, attach an
:class:`~repro.core.profiler.EngineProfiler` via :meth:`Simulator.attach_profiler`.
For operator-facing metrics and a bounded structured event log, attach a
:class:`~repro.obs.Observability` via :meth:`Simulator.attach_observability`.
The runtime invariant checker (:mod:`repro.sim.invariants`) rides the same
zero-cost attach pattern one layer up, on the network's pre-bound delivery
callback — an engine without it installed executes byte-identical code.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Optional, Tuple

from repro.errors import ScheduleInPastError, SimulationError
from repro.sim.rng import RngRegistry
from repro.sim.tracing import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.profiler import EngineProfiler
    from repro.obs import EventLog, Observability


class Event:
    """A scheduled callback.

    The heap entry carrying an event is ``(time, seq, event)``; the event
    object itself is just the mutable payload. ``cancelled`` events are
    popped and discarded. ``daemon`` events (fault-injection processes,
    periodic maintenance) run normally but do not keep an open-ended
    :meth:`Simulator.run` alive: once only daemon events remain the
    simulation is considered quiescent.

    Not every heap entry carries an :class:`Event`: fire-and-forget
    callbacks from :meth:`Simulator.schedule_call` are stored as plain
    ``(time, seq, callback, args, label)`` 5-tuples with no handle at all.
    The two shapes share one heap — ``(time, seq)`` prefixes are unique,
    so ordering never compares the payloads.

    A ``label`` may be either a string or a *lazy* 3-tuple ``(kind,
    from_id, to_id)``; the engine formats the tuple as
    ``f"{kind}:{from_id}->{to_id}"`` only at the instant an attached
    tracer/profiler/event log observes it. The transport queues roughly
    one labelled entry per simulated message, so skipping the f-string in
    the (default) unobserved case is a measurable share of campaign time.
    """

    __slots__ = ("time", "seq", "callback", "args", "label", "cancelled", "daemon")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple = (),
        label: str = "",
        daemon: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.label = label
        self.cancelled = False
        self.daemon = daemon

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            flag
            for flag, on in (("d", self.daemon), ("x", self.cancelled))
            if on
        )
        return f"Event(t={self.time:.6f}, seq={self.seq}, {self.label!r}{flags})"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the :class:`~repro.sim.rng.RngRegistry`. Every
        stochastic component derives its own named stream from this seed.
    trace:
        If true, keep a :class:`~repro.sim.tracing.Tracer` recording every
        executed event (useful in tests, costly in large runs).
    """

    def __init__(self, seed: int = 0, trace: bool = False) -> None:
        self._now = 0.0
        # Entries are (time, seq, Event) or (time, seq, callback, args,
        # label) — see Event's docstring.
        self._queue: list[Tuple] = []
        self._seq = itertools.count()
        self._executed = 0
        self._non_daemon_pending = 0
        self.rng = RngRegistry(seed)
        self.seed = seed
        self.tracer: Optional[Tracer] = Tracer() if trace else None
        self.profiler: Optional["EngineProfiler"] = None
        self.event_log: Optional["EventLog"] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def executed_events(self) -> int:
        """Number of events executed so far."""
        return self._executed

    @property
    def wants_labels(self) -> bool:
        """Whether event labels are observable (tracer or profiler attached).

        Hot callers use this to skip building label strings nobody reads:
        with ~1 message per event, the f-string per send is a measurable
        share of the un-traced hot path.
        """
        return (
            self.tracer is not None
            or self.profiler is not None
            or self.event_log is not None
        )

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def attach_profiler(
        self, profiler: Optional["EngineProfiler"] = None
    ) -> "EngineProfiler":
        """Attach (and return) a profiler timing every executed callback.

        Wall-clock cost is aggregated by label category (the part before
        the first ``:``), so a run breaks down into ``Transactions``,
        ``NewPooledTransactionHashes``, ``flush``, ``fault`` ... buckets.
        Profiling only observes wall time; simulation order and the
        simulated clock are unaffected.
        """
        if profiler is None:
            from repro.core.profiler import EngineProfiler

            profiler = EngineProfiler()
        self.profiler = profiler
        return profiler

    def detach_profiler(self) -> None:
        self.profiler = None

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_observability(
        self, obs: Optional["Observability"] = None, log_events: bool = False
    ) -> "Observability":
        """Attach (and return) an observability bundle for this simulator.

        Registers a pull collector mirroring the engine's clock and event
        counters into ``obs.metrics`` (read only at export time, zero
        per-event cost).  With ``log_events=True`` the engine additionally
        appends one ``(time, "event", label)`` tuple per executed event to
        ``obs.events`` — the ring-buffered analogue of ``trace=True``,
        bounded by the log's capacity instead of growing without limit.
        """
        from repro.obs import Observability
        from repro.obs.wiring import instrument_simulator

        if obs is None:
            obs = Observability()
        instrument_simulator(obs, self)
        if log_events and obs.enabled:
            self.event_log = obs.events
        return obs

    def detach_observability(self) -> None:
        """Stop feeding the event log (registered collectors stay)."""
        self.event_log = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        label: str = "",
        daemon: bool = False,
        args: Tuple = (),
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which the caller may ``cancel()``.
        Raises :class:`ScheduleInPastError` for negative delays. ``daemon``
        events never keep an open-ended :meth:`run` going on their own.
        ``args`` lets hot paths avoid allocating a closure per message.
        """
        if delay < 0:
            raise ScheduleInPastError(
                f"cannot schedule {delay:.6f}s in the past (now={self._now:.6f})"
            )
        when = self._now + delay
        event = Event(when, next(self._seq), callback, args, label, daemon)
        heapq.heappush(self._queue, (when, event.seq, event))
        if not daemon:
            self._non_daemon_pending += 1
        return event

    def schedule_call(
        self,
        delay: float,
        callback: Callable[..., None],
        label: str = "",
        args: Tuple = (),
    ) -> None:
        """Fire-and-forget scheduling for the per-message hot path.

        Semantically identical to :meth:`schedule` with ``daemon=False``,
        except that no :class:`Event` handle is created or returned — the
        heap entry is the plain 5-tuple ``(time, seq, callback, args,
        label)``. Use only when the caller will never cancel: transport
        deliveries are the canonical case (roughly one call per simulated
        message, the single most frequent allocation in a campaign).
        """
        if delay < 0:
            raise ScheduleInPastError(
                f"cannot schedule {delay:.6f}s in the past (now={self._now:.6f})"
            )
        when = self._now + delay
        heapq.heappush(self._queue, (when, next(self._seq), callback, args, label))
        self._non_daemon_pending += 1

    def push_entries(self, entries: list) -> None:
        """Bulk fire-and-forget push: per-tick batched event delivery.

        ``entries`` is a list of fully formed heap 5-tuples ``(time, seq,
        callback, args, label)`` with strictly positive-offset times and
        sequence numbers drawn from this simulator's counter (callers hold
        the bound ``_seq.__next__``; :class:`repro.eth.network.Network`
        does). One call amortizes the scheduling overhead of a whole
        broadcast-flush tick — one pending-counter update and one bound
        heappush loop instead of a ``schedule_call`` frame per message.
        """
        queue = self._queue
        push = heapq.heappush
        for entry in entries:
            push(queue, entry)
        self._non_daemon_pending += len(entries)

    def schedule_at(
        self,
        when: float,
        callback: Callable[..., None],
        label: str = "",
        daemon: bool = False,
        args: Tuple = (),
    ) -> Event:
        """Schedule ``callback`` at absolute simulation time ``when``.

        ``daemon`` is threaded through to :meth:`schedule`: a recurring
        daemon process that reschedules itself via ``schedule_at`` must not
        morph into a non-daemon event (that would keep open-ended
        :meth:`run`/settle loops alive forever).
        """
        return self.schedule(when - self._now, callback, label, daemon, args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next non-cancelled event.

        Returns ``False`` when the queue is exhausted, ``True`` otherwise.
        """
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            when = entry[0]
            if len(entry) != 3:
                # Fire-and-forget call entry: never daemon, never cancelled.
                self._non_daemon_pending -= 1
                if when < self._now:
                    raise SimulationError(
                        f"event at t={when} popped after clock t={self._now}"
                    )
                self._now = when
                self._execute_call(entry)
                return True
            event = entry[2]
            if not event.daemon:
                self._non_daemon_pending -= 1
            if event.cancelled:
                continue
            if when < self._now:
                raise SimulationError(
                    f"event at t={when} popped after clock t={self._now}"
                )
            self._now = when
            self._execute(event)
            return True
        return False

    def _execute(self, event: Event) -> None:
        """Run one event's callback under tracing/profiling."""
        label = event.label
        if label.__class__ is tuple:
            label = "%s:%s->%s" % label
        if self.tracer is not None:
            self.tracer.record(self._now, "event", label)
        if self.event_log is not None:
            self.event_log.append(self._now, "event", label)
        if self.profiler is not None:
            start = perf_counter()
            event.callback(*event.args)
            self.profiler.account(label, perf_counter() - start)
        else:
            event.callback(*event.args)
        self._executed += 1

    def _execute_call(self, entry: Tuple) -> None:
        """Run one fire-and-forget call entry under tracing/profiling."""
        label = entry[4]
        if label.__class__ is tuple:
            label = "%s:%s->%s" % label
        if self.tracer is not None:
            self.tracer.record(self._now, "event", label)
        if self.event_log is not None:
            self.event_log.append(self._now, "event", label)
        if self.profiler is not None:
            start = perf_counter()
            entry[2](*entry[3])
            self.profiler.account(label, perf_counter() - start)
        else:
            entry[2](*entry[3])
        self._executed += 1

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        ``until`` is an absolute simulation time; events scheduled beyond it
        stay queued and the clock is advanced exactly to ``until``.

        An open-ended run (``until=None``) stops once only daemon events
        remain queued — otherwise a recurring fault-injection process would
        keep ``settle()`` from ever returning. A bounded run executes daemon
        events up to ``until`` like any other event.
        """
        # This is the hottest loop in the repo; it is deliberately flat,
        # with the common path (plain event, no tracer/profiler, no bound)
        # touching only local names and C-level tuple/heap operations.
        # ``executed`` stays local and is folded into ``self._executed``
        # once on the way out (every exit path runs the finally) instead
        # of paying an attribute store per event.
        queue = self._queue
        heappop = heapq.heappop
        tracer = self.tracer
        profiler = self.profiler
        event_log = self.event_log
        observed = (
            tracer is not None or profiler is not None or event_log is not None
        )
        executed = 0
        try:
            while queue:
                if max_events is not None and executed >= max_events:
                    return
                if until is None and self._non_daemon_pending <= 0:
                    return
                head = queue[0]
                if len(head) != 3:
                    # Fire-and-forget call entry (the per-message hot
                    # case): never daemon, never cancelled, so no payload
                    # checks.
                    when = head[0]
                    if until is not None and when > until:
                        self._now = max(self._now, until)
                        return
                    heappop(queue)
                    self._non_daemon_pending -= 1
                    if when < self._now:
                        raise SimulationError(
                            f"event at t={when} popped after clock t={self._now}"
                        )
                    self._now = when
                    if observed:
                        # Lazy labels: transport entries carry a (kind,
                        # from, to) tuple; format only under observation,
                        # byte-identical to the eager f-string.
                        label = head[4]
                        if label.__class__ is tuple:
                            label = "%s:%s->%s" % label
                        if tracer is not None:
                            tracer.record(when, "event", label)
                        if event_log is not None:
                            event_log.append(when, "event", label)
                        if profiler is not None:
                            start = perf_counter()
                            head[2](*head[3])
                            profiler.account(label, perf_counter() - start)
                        else:
                            head[2](*head[3])
                    else:
                        head[2](*head[3])
                    executed += 1
                    continue
                # Find the next live event, discarding cancelled heads.
                # The quiescence check above intentionally happens once per
                # live event, not per discarded one, matching step() runs.
                event = head[2]
                if event.cancelled:
                    while True:
                        heappop(queue)
                        if not event.daemon:
                            self._non_daemon_pending -= 1
                        if not queue:
                            if until is not None:
                                self._now = max(self._now, until)
                            return
                        head = queue[0]
                        if len(head) != 3:
                            # A live call entry surfaced; it cannot be the
                            # one that made pending hit zero (it is itself
                            # counted as non-daemon pending), so looping
                            # back to the quiescence check cannot skip it.
                            event = None
                            break
                        event = head[2]
                        if not event.cancelled:
                            break
                    if event is None:
                        continue
                when = head[0]
                if until is not None and when > until:
                    self._now = max(self._now, until)
                    return
                heappop(queue)
                if not event.daemon:
                    self._non_daemon_pending -= 1
                if when < self._now:
                    raise SimulationError(
                        f"event at t={when} popped after clock t={self._now}"
                    )
                self._now = when
                if observed:
                    label = event.label
                    if label.__class__ is tuple:
                        label = "%s:%s->%s" % label
                    if tracer is not None:
                        tracer.record(when, "event", label)
                    if event_log is not None:
                        event_log.append(when, "event", label)
                    if profiler is not None:
                        start = perf_counter()
                        event.callback(*event.args)
                        profiler.account(label, perf_counter() - start)
                    else:
                        event.callback(*event.args)
                else:
                    event.callback(*event.args)
                executed += 1
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._executed += executed

    def run_for(self, duration: float, max_events: Optional[int] = None) -> None:
        """Run the simulation for ``duration`` seconds of simulated time."""
        self.run(until=self._now + duration, max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.3f}, pending={len(self._queue)}, "
            f"executed={self._executed})"
        )
