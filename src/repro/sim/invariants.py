"""Sanitizer-style runtime invariant checker for simulated networks.

Asserts, while a simulation runs, the properties TopoShot's correctness
argument rests on (paper Sections 2 and 5):

mempool invariants
    pool size <= L; replacements satisfy the node's *conforming* policy
    bump R (replacement monotonicity); admitted pending nonces are never
    stale; periodic full structural checks via
    :meth:`repro.eth.mempool.Mempool.check_invariants`.
propagation invariants
    a ``PooledTransactions`` body only answers a recorded
    ``GetPooledTransactions`` ("no body without request"); requests only
    follow announcements; honest nodes only relay or announce
    transactions they have pooled; no node pushes the same body twice to
    the same peer (known-tx suppression).
TopoShot isolation invariant
    a guarded ``txC`` is replaced only on the probed target (registered
    per probe by the measurement primitives via :meth:`guard_isolation`).

Zero cost when disabled — by the same mechanism and claim as
``repro.obs``: installation *replaces* ``Network._deliver_cb`` (the
pre-bound callback every queued delivery carries) with a checking
wrapper and registers per-node transaction observers; without an
install, the hot paths execute byte-identical code. Install and clear at
quiescent instants only (in-flight deliveries carry the previously bound
callback).

Violations are recorded with exact per-invariant counts (bounded record
list), streamed into ``repro.obs`` (event + pull-collected counters, see
``repro.obs.wiring``), and classified *honest* vs. *byzantine*: a node
with an installed misbehavior (see :mod:`repro.eth.behaviors`) breaking
protocol is the adversary model working, while an honest node breaking
protocol is a simulator bug — in ``strict`` mode only the latter raises
:class:`~repro.errors.InvariantViolationError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import InvariantViolationError, SimulationError
from repro.eth.mempool import AddOutcome, AddResult, Mempool, MempoolError
from repro.eth.messages import (
    GetPooledTransactions,
    Message,
    NewPooledTransactionHashes,
    PooledTransactions,
    Transactions,
)
from repro.eth.node import KnownTxCache, Node
from repro.eth.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.eth.network import Network

#: Every invariant the checker can report, in stable (doc) order.
INVARIANT_NAMES: Tuple[str, ...] = (
    "capacity",
    "replacement_bump",
    "nonce_order",
    "mempool_state",
    "relay_unpooled",
    "announce_unpooled",
    "unsolicited_request",
    "unsolicited_body",
    "duplicate_push",
    "isolation",
)

#: Cap on retained violation records (counters stay exact).
MAX_VIOLATION_RECORDS = 10000

#: FIFO bound for the per-node / per-link bookkeeping caches.
_CACHE_LIMIT = 32768


@dataclass(frozen=True)
class InvariantViolation:
    """One recorded violation."""

    time: float
    invariant: str
    node: str
    detail: str
    byzantine: bool


class InvariantChecker:
    """Runtime checker; install via ``Network.install_invariants``.

    Parameters
    ----------
    strict:
        Raise :class:`InvariantViolationError` on the first violation by
        an *honest* node (Byzantine violations are always record-only).
    full_check_every:
        Run a full :meth:`Mempool.check_invariants` sweep on a node's
        pool every N observed admissions on that checker (0 disables).
    """

    def __init__(self, strict: bool = False, full_check_every: int = 512) -> None:
        if full_check_every < 0:
            raise SimulationError(
                f"full_check_every must be >= 0, got {full_check_every!r}"
            )
        self.strict = strict
        self.full_check_every = full_check_every
        self.network: Optional["Network"] = None
        self.counts: Dict[str, int] = {}
        self.honest_counts: Dict[str, int] = {}
        self.violations: List[InvariantViolation] = []
        # Per-node: every hash the node ever admitted to its pool.
        self._ever_pooled: Dict[str, KnownTxCache] = {}
        # Per directed link (from, to): pushed bodies / announced hashes /
        # requested hashes (keyed (responder, requester)).
        self._pushed: Dict[Tuple[str, str], KnownTxCache] = {}
        self._announced: Dict[Tuple[str, str], KnownTxCache] = {}
        self._requested: Dict[Tuple[str, str], KnownTxCache] = {}
        # guarded txC hash -> node ids allowed to replace it.
        self._guards: Dict[str, FrozenSet[str]] = {}
        self._crash_counts: Dict[str, int] = {}
        self._observers: Dict[str, Callable[[str, Transaction, AddResult], None]] = {}
        self._admissions = 0

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def total_violations(self) -> int:
        return sum(self.counts.values())

    @property
    def honest_violations(self) -> int:
        return sum(self.honest_counts.values())

    def summary(self) -> str:
        if not self.counts:
            return "invariants: no violations"
        parts = [
            f"{name}={self.counts[name]}"
            for name in INVARIANT_NAMES
            if name in self.counts
        ]
        return (
            f"invariants: {self.total_violations} violations "
            f"({self.honest_violations} honest): " + ", ".join(parts)
        )

    # ------------------------------------------------------------------
    # Isolation guards (registered by the measurement primitives)
    # ------------------------------------------------------------------
    def guard_isolation(self, tx_c_hash: str, allowed: FrozenSet[str]) -> None:
        """Flag a planted ``txC``: replacing it anywhere off ``allowed``
        (the probed pair) breaks the primitive's isolation argument."""
        self._guards[tx_c_hash] = allowed

    def clear_guards(self) -> None:
        self._guards.clear()

    # ------------------------------------------------------------------
    # Lifecycle (driven by Network.install_invariants / clear_invariants)
    # ------------------------------------------------------------------
    def attach(self, network: "Network") -> None:
        if self.network is not None:
            raise SimulationError("invariant checker is already attached")
        self.network = network
        for node_id, node in network.nodes.items():
            if node_id in network.supernode_ids:
                continue
            observer = self._make_observer(node)
            self._observers[node_id] = observer
            node.tx_observers.append(observer)
            self._crash_counts[node_id] = node.crash_count

    def detach(self, network: "Network") -> None:
        for node_id, observer in self._observers.items():
            node = network.nodes.get(node_id)
            if node is not None and observer in node.tx_observers:
                node.tx_observers.remove(observer)
        self._observers.clear()
        self.network = None

    def reset_transient(self) -> None:
        """Forget per-link protocol state (with ``forget_known_transactions``).

        The campaign loop wipes every node's per-peer known-transaction
        caches between iterations; the checker's push/announce/request
        bookkeeping mirrors those caches, so it must be wiped at the same
        instant or re-sent traffic would read as violations.
        """
        self._pushed.clear()
        self._announced.clear()
        self._requested.clear()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record(self, invariant: str, node_id: str, detail: str) -> None:
        network = self.network
        behaviors = network.behaviors if network is not None else None
        byzantine = behaviors is not None and node_id in behaviors.assignments
        self.counts[invariant] = self.counts.get(invariant, 0) + 1
        if not byzantine:
            self.honest_counts[invariant] = self.honest_counts.get(invariant, 0) + 1
        if len(self.violations) < MAX_VIOLATION_RECORDS:
            now = network.sim.now if network is not None else 0.0
            self.violations.append(
                InvariantViolation(now, invariant, node_id, detail, byzantine)
            )
        if network is not None:
            obs = network.obs
            if obs.enabled:
                obs.emit(
                    network.sim.now, "invariant", invariant, f"{node_id}: {detail}"
                )
        if self.strict and not byzantine:
            raise InvariantViolationError(
                f"invariant {invariant!r} violated by honest node "
                f"{node_id!r}: {detail}"
            )

    # ------------------------------------------------------------------
    # Transport checks (wrapped around Network._deliver_cb)
    # ------------------------------------------------------------------
    def make_delivery_wrapper(
        self, deliver: Callable[..., None]
    ) -> Callable[..., None]:
        """Wrap the network's pre-bound delivery callback.

        The transport hands the callback *integer* intern-table indices
        (the SoA hot path); the checker's bookkeeping is string-keyed, so
        the wrapper translates through the network's name table once per
        delivery. ``attach`` ran before this is called (see
        ``Network.install_invariants``), so the network is bound.
        """
        names = self.network._names

        def checked_deliver(
            fi: int, ti: int, msg: Message, epoch: int = -1
        ) -> None:
            self.on_delivery(names[fi], names[ti], msg)
            deliver(fi, ti, msg, epoch)

        return checked_deliver

    def on_delivery(self, from_id: str, to_id: str, msg: Message) -> None:
        """Inspect one delivery *before* the target handles it."""
        cls = msg.__class__
        if cls is Transactions or cls is PooledTransactions:
            self._check_body(from_id, to_id, msg, cls is PooledTransactions)
        elif cls is NewPooledTransactionHashes:
            self._check_announce(from_id, to_id, msg)
        elif cls is GetPooledTransactions:
            self._check_request(from_id, to_id, msg)

    def _link_cache(
        self, table: Dict[Tuple[str, str], KnownTxCache], key: Tuple[str, str]
    ) -> KnownTxCache:
        cache = table.get(key)
        if cache is None:
            cache = table[key] = KnownTxCache()
        return cache

    def _check_body(
        self, from_id: str, to_id: str, msg: Message, is_response: bool
    ) -> None:
        network = self.network
        supernode_sender = network is not None and from_id in network.supernode_ids
        ever_pooled = self._ever_pooled.get(from_id)
        from_pool = (
            network.nodes[from_id].mempool._by_hash
            if network is not None and from_id in network.nodes
            else {}
        )
        pushed = self._link_cache(self._pushed, (from_id, to_id))
        requested = (
            self._requested.get((from_id, to_id)) if is_response else None
        )
        for tx in msg.txs:
            tx_hash = tx.hash
            if supernode_sender:
                # The measurement node injects by design; record only.
                pushed[tx_hash] = None
                continue
            if is_response and (requested is None or tx_hash not in requested):
                self._record(
                    "unsolicited_body",
                    from_id,
                    f"body {tx_hash[:18]} to {to_id} without request",
                )
            if (
                ever_pooled is None or tx_hash not in ever_pooled
            ) and tx_hash not in from_pool:
                self._record(
                    "relay_unpooled",
                    from_id,
                    f"relayed never-pooled {tx_hash[:18]} to {to_id}",
                )
            if not is_response and tx_hash in pushed:
                # A restart wipes the sender's known-tx caches, making an
                # honest re-push legitimate; resync before flagging.
                crashes = network.nodes[from_id].crash_count if network else 0
                if crashes != self._crash_counts.get(from_id):
                    self._crash_counts[from_id] = crashes
                    pushed.clear()
                else:
                    self._record(
                        "duplicate_push",
                        from_id,
                        f"re-pushed {tx_hash[:18]} to {to_id}",
                    )
            pushed[tx_hash] = None
        if len(pushed) > _CACHE_LIMIT:
            pushed.prune(_CACHE_LIMIT)

    def _check_announce(self, from_id: str, to_id: str, msg: Message) -> None:
        network = self.network
        supernode_sender = network is not None and from_id in network.supernode_ids
        announced = self._link_cache(self._announced, (from_id, to_id))
        ever_pooled = self._ever_pooled.get(from_id)
        from_pool = (
            network.nodes[from_id].mempool._by_hash
            if network is not None and from_id in network.nodes
            else {}
        )
        for tx_hash in msg.hashes:
            announced[tx_hash] = None
            if supernode_sender:
                continue
            if (
                ever_pooled is None or tx_hash not in ever_pooled
            ) and tx_hash not in from_pool:
                self._record(
                    "announce_unpooled",
                    from_id,
                    f"announced never-pooled {tx_hash[:18]} to {to_id}",
                )
        if len(announced) > _CACHE_LIMIT:
            announced.prune(_CACHE_LIMIT)

    def _check_request(self, from_id: str, to_id: str, msg: Message) -> None:
        # from_id requests bodies *from* to_id: record under
        # (responder, requester) so the eventual body looks itself up.
        network = self.network
        supernode_sender = network is not None and from_id in network.supernode_ids
        requested = self._link_cache(self._requested, (to_id, from_id))
        announced = self._announced.get((to_id, from_id))
        for tx_hash in msg.hashes:
            requested[tx_hash] = None
            if supernode_sender:
                continue
            if announced is None or tx_hash not in announced:
                self._record(
                    "unsolicited_request",
                    from_id,
                    f"requested unannounced {tx_hash[:18]} from {to_id}",
                )
        if len(requested) > _CACHE_LIMIT:
            requested.prune(_CACHE_LIMIT)

    # ------------------------------------------------------------------
    # Mempool checks (per-node transaction observers)
    # ------------------------------------------------------------------
    def _make_observer(
        self, node: Node
    ) -> Callable[[str, Transaction, AddResult], None]:
        node_id = node.id
        pool = node.mempool
        ever_pooled = self._ever_pooled.setdefault(node_id, KnownTxCache())

        def observer(from_id: str, tx: Transaction, result: AddResult) -> None:
            outcome = result.outcome
            if outcome is AddOutcome.REJECTED_KNOWN:
                return
            if outcome is AddOutcome.REPLACED and result.replaced is not None:
                self._on_replacement(node_id, pool, tx, result.replaced)
            if result.admitted:
                ever_pooled[tx.hash] = None
                if len(ever_pooled) > _CACHE_LIMIT:
                    ever_pooled.prune(_CACHE_LIMIT)
                if result.is_pending and tx.nonce < node.confirmed_nonces.get(
                    tx.sender, 0
                ):
                    self._record(
                        "nonce_order",
                        node_id,
                        f"admitted stale nonce {tx.nonce} from {tx.sender[:10]}",
                    )
                if len(pool._by_hash) > pool._capacity:
                    self._record(
                        "capacity",
                        node_id,
                        f"pool holds {len(pool._by_hash)} > L={pool._capacity}",
                    )
                self._admissions += 1
                every = self.full_check_every
                if every and self._admissions % every == 0:
                    try:
                        pool.check_invariants()
                    except MempoolError as exc:
                        self._record("mempool_state", node_id, str(exc))

        return observer

    def _on_replacement(
        self, node_id: str, pool: Mempool, tx: Transaction, replaced: Transaction
    ) -> None:
        guard = self._guards.get(replaced.hash)
        if guard is not None and node_id not in guard:
            self._record(
                "isolation",
                node_id,
                f"guarded txC {replaced.hash[:18]} replaced off-target "
                f"by {tx.hash[:18]}",
            )
        conforming = pool.policy
        network = self.network
        if network is not None and network.behaviors is not None:
            original = network.behaviors.conforming_policy(node_id)
            if original is not None:
                conforming = original
        base_fee = pool.base_fee
        if not conforming.replacement_allowed(
            replaced.bid_price(base_fee), tx.bid_price(base_fee)
        ):
            self._record(
                "replacement_bump",
                node_id,
                f"replaced {replaced.hash[:18]} below bump "
                f"R={conforming.replace_bump}",
            )
