"""Structured tracing for simulations.

The tracer collects ``(time, kind, detail)`` records. Tests use it to assert
fine-grained propagation behaviour (e.g. "node B never forwarded txO"), and
the examples use it to narrate what the measurement did.

The tracer's ``detail`` is a pre-formatted string and a bounded tracer
drops the *newest* records once full — both right for deterministic tests
that replay from t=0 and read the head of the story. For operator-facing
telemetry (typed fields, keep the most *recent* window) use
:class:`repro.obs.EventLog` instead; see ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace line: simulation time, a record kind, and free-form detail."""

    time: float
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.time:10.4f}] {self.kind:<14} {self.detail}"


class Tracer:
    """Append-only trace buffer with simple filtering helpers."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.records: List[TraceRecord] = []
        self.capacity = capacity
        self.dropped = 0

    def record(self, time: float, kind: str, detail: str) -> None:
        """Append a record; beyond ``capacity``, drop and count."""
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, kind, detail))

    def filter(self, kind: Optional[str] = None, contains: str = "") -> List[TraceRecord]:
        """Records matching a kind and/or a substring of the detail."""
        return [
            r
            for r in self.records
            if (kind is None or r.kind == kind) and contains in r.detail
        ]

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)
