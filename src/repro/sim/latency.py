"""Link-latency models for the simulated P2P network.

A latency model maps an (origin, destination) pair to a one-way message delay
in seconds. Models draw from a dedicated RNG stream so latency noise is
reproducible and independent of other randomness.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple


class LatencyModel(ABC):
    """Base class: produce a one-way delay for a message on a link."""

    @abstractmethod
    def sample(self, rng: random.Random, origin: str, destination: str) -> float:
        """Return a delay in seconds (must be > 0)."""

    def __call__(self, rng: random.Random, origin: str, destination: str) -> float:
        delay = self.sample(rng, origin, destination)
        if delay <= 0:
            raise ValueError(f"latency model produced non-positive delay {delay}")
        return delay


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` seconds."""

    def __init__(self, delay: float = 0.05) -> None:
        if delay <= 0:
            raise ValueError("delay must be positive")
        self.delay = delay

    def sample(self, rng: random.Random, origin: str, destination: str) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]`` per message."""

    def __init__(self, low: float = 0.02, high: float = 0.12) -> None:
        if not 0 < low <= high:
            raise ValueError("require 0 < low <= high")
        self.low = low
        self.high = high
        self._span = high - low

    def sample(self, rng: random.Random, origin: str, destination: str) -> float:
        # Inlined random.Random.uniform: `low + (high - low) * random()` is
        # the exact CPython expression, so the draw is bit-identical while
        # skipping a Python frame on the once-per-message path.
        return self.low + self._span * rng.random()

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class GeoLatency(LatencyModel):
    """Region-aware latency: nodes are pinned to regions and delays follow
    an inter-region base matrix plus lognormal jitter.

    Mirrors the geo-distribution of real Ethereum nodes (the paper's
    measured networks span continents); intra-region messages are fast,
    transatlantic ones are not, and propagation-delay profiles
    (use cases 4/5) inherit the structure.
    """

    DEFAULT_BASES = {
        ("us", "us"): 0.03,
        ("eu", "eu"): 0.025,
        ("ap", "ap"): 0.04,
        ("us", "eu"): 0.09,
        ("us", "ap"): 0.13,
        ("eu", "ap"): 0.16,
    }

    def __init__(
        self,
        regions: Dict[str, str],
        base_delays: Optional[Dict[Tuple[str, str], float]] = None,
        jitter_sigma: float = 0.2,
        default_region: str = "us",
        cap: float = 2.0,
    ) -> None:
        self.regions = dict(regions)
        self.default_region = default_region
        self.jitter_sigma = jitter_sigma
        self.cap = cap
        bases = dict(base_delays or self.DEFAULT_BASES)
        # Symmetrize.
        self._bases: Dict[Tuple[str, str], float] = {}
        for (a, b), delay in bases.items():
            if delay <= 0:
                raise ValueError("base delays must be positive")
            self._bases[(a, b)] = delay
            self._bases[(b, a)] = delay

    def region_of(self, node_id: str) -> str:
        return self.regions.get(node_id, self.default_region)

    def base_delay(self, origin: str, destination: str) -> float:
        key = (self.region_of(origin), self.region_of(destination))
        if key not in self._bases:
            raise ValueError(f"no base delay configured for regions {key}")
        return self._bases[key]

    def sample(self, rng: random.Random, origin: str, destination: str) -> float:
        base = self.base_delay(origin, destination)
        draw = rng.lognormvariate(math.log(base), self.jitter_sigma)
        return min(draw, self.cap)

    def __repr__(self) -> str:
        return f"GeoLatency({len(self.regions)} pinned nodes)"


class LogNormalLatency(LatencyModel):
    """Heavy-tailed latency, the common empirical fit for Internet RTTs.

    Parameterized by the median delay and sigma of the underlying normal.
    A hard ``cap`` keeps pathological tail draws from stalling experiments.
    """

    def __init__(
        self, median: float = 0.08, sigma: float = 0.5, cap: float = 2.0
    ) -> None:
        if median <= 0 or sigma < 0 or cap <= 0:
            raise ValueError("median and cap must be positive, sigma non-negative")
        self.median = median
        self.sigma = sigma
        self.cap = cap

    def sample(self, rng: random.Random, origin: str, destination: str) -> float:
        draw = rng.lognormvariate(math.log(self.median), self.sigma)
        return min(draw, self.cap)

    def __repr__(self) -> str:
        return f"LogNormalLatency(median={self.median}, sigma={self.sigma})"
