"""Deterministic discrete-event simulation engine.

The engine is intentionally small and dependency-free: a priority queue of
timestamped events, a monotonically advancing clock, named seeded RNG streams,
latency models for network links, periodic processes and a structured tracer.

Everything in :mod:`repro.eth` and :mod:`repro.core` is driven through this
engine, which makes every experiment reproducible bit-for-bit from a seed.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.latency import (
    ConstantLatency,
    GeoLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RngRegistry
from repro.sim.tracing import TraceRecord, Tracer

__all__ = [
    "ConstantLatency",
    "Event",
    "GeoLatency",
    "LatencyModel",
    "LogNormalLatency",
    "PeriodicProcess",
    "RngRegistry",
    "Simulator",
    "TraceRecord",
    "Tracer",
    "UniformLatency",
]
