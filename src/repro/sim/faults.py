"""Deterministic fault injection for simulated measurement campaigns.

The seed network is perfectly reliable, so the reproduction never exercised
the failure modes the paper's live deployment fought (Sections 6-7): lossy
links, peers churning in and out, nodes restarting with empty mempools, and
send timeouts on the measurement node itself. This module adds all of them
behind a single seed-driven :class:`FaultPlan`:

- **message loss** — every delivery is dropped with a per-link probability;
- **extra delay** — an exponential delay term added on top of the latency
  model (congestion, slow peers);
- **link churn** — a Poisson process disconnects a random live link and
  reconnects it after a downtime (the <5% unstable peers of Section 6.1);
- **node crash/restart** — a Poisson process crashes a random target; while
  down it neither sends nor receives, and on restart its mempool and
  per-peer known-transaction state are wiped (a rebooted Geth with the
  transaction journal disabled, the paper's testnet configuration);
- **send timeouts** — the supernode's direct injections fail with a
  probability, surfacing as :class:`~repro.errors.SendTimeoutError`.

Everything samples from one named RNG stream (``"faults"``) and runs through
the simulator's event queue, so a (seed, FaultPlan) pair fully determines
the run: same seed + same plan = byte-identical measurement results. With no
plan installed the network behaves exactly as before — the fault path is
consulted but never fires.

Typical usage::

    plan = FaultPlan(loss_rate=0.05, churn_rate=0.01, crash_rate=0.002)
    network.install_faults(plan)
    shot = TopoShot.attach(network)
    measurement = shot.measure_network()   # now survives the weather
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import FaultPlanError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.eth.network import Network


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultPlanError(f"{name} must be a probability in [0, 1], got {value}")


def _check_non_negative(name: str, value: float) -> None:
    if value < 0:
        raise FaultPlanError(f"{name} must be non-negative, got {value}")


@dataclass(frozen=True)
class LinkFaults:
    """Per-link override of the plan-wide loss/delay behaviour."""

    loss_rate: float = 0.0
    extra_delay_mean: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("loss_rate", self.loss_rate)
        _check_non_negative("extra_delay_mean", self.extra_delay_mean)


@dataclass(frozen=True)
class FaultPlan:
    """A complete, validated description of the adversity to inject.

    Attributes
    ----------
    loss_rate:
        Probability that any single delivery is silently dropped.
    extra_delay_mean:
        Mean of an exponential delay added to every surviving delivery
        (0 disables it).
    link_overrides:
        Map of undirected link (``frozenset({a, b})``) to a
        :class:`LinkFaults` that replaces the plan-wide loss/delay on that
        link only.
    churn_rate:
        Expected link-churn events per simulated second (Poisson process).
        Each event disconnects one random live target-target link and
        reconnects it ``churn_downtime`` seconds later.
    churn_downtime:
        Seconds a churned link stays down.
    churn_supernode_links:
        Whether the supernode's own links are eligible for churn (default
        no: the paper's measurement node keeps stable connections).
    crash_rate:
        Expected node crashes per simulated second (Poisson process). Each
        event crashes one random non-supernode node for
        ``crash_downtime`` seconds; restart wipes its mempool and
        known-transaction state.
    crash_downtime:
        Seconds a crashed node stays down.
    send_timeout_rate:
        Probability that one ``Supernode.send_transactions`` call times out
        (raises :class:`~repro.errors.SendTimeoutError`) instead of sending.
    """

    loss_rate: float = 0.0
    extra_delay_mean: float = 0.0
    link_overrides: Dict[FrozenSet[str], LinkFaults] = field(default_factory=dict)
    churn_rate: float = 0.0
    churn_downtime: float = 5.0
    churn_supernode_links: bool = False
    crash_rate: float = 0.0
    crash_downtime: float = 10.0
    send_timeout_rate: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("loss_rate", self.loss_rate)
        _check_probability("send_timeout_rate", self.send_timeout_rate)
        _check_non_negative("extra_delay_mean", self.extra_delay_mean)
        _check_non_negative("churn_rate", self.churn_rate)
        _check_non_negative("crash_rate", self.crash_rate)
        if self.churn_downtime <= 0:
            raise FaultPlanError(
                f"churn_downtime must be positive, got {self.churn_downtime}"
            )
        if self.crash_downtime <= 0:
            raise FaultPlanError(
                f"crash_downtime must be positive, got {self.crash_downtime}"
            )

    @property
    def enabled(self) -> bool:
        """True if any fault can ever fire under this plan."""
        return bool(
            self.loss_rate
            or self.extra_delay_mean
            or self.link_overrides
            or self.churn_rate
            or self.crash_rate
            or self.send_timeout_rate
        )

    def link_faults(self, a: str, b: str) -> Tuple[float, float]:
        """(loss_rate, extra_delay_mean) effective on link a--b."""
        override = self.link_overrides.get(frozenset((a, b)))
        if override is not None:
            return override.loss_rate, override.extra_delay_mean
        return self.loss_rate, self.extra_delay_mean


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired (for diagnostics and tests)."""

    time: float
    kind: str  # "loss" | "churn_down" | "churn_up" | "crash" | "restart" | "send_timeout"
    detail: str


class FaultInjector:
    """Runtime binding of a :class:`FaultPlan` to one network.

    Created by :meth:`repro.eth.network.Network.install_faults`. All
    randomness comes from the simulator's ``"faults"`` stream; churn and
    crash processes self-reschedule through daemon events so they never keep
    ``settle()`` from terminating.
    """

    def __init__(self, network: "Network", plan: FaultPlan) -> None:
        self.network = network
        self.plan = plan
        self._rng = network.sim.rng.stream("faults")
        self.events: List[FaultEvent] = []
        self.messages_dropped = 0
        self.send_timeouts = 0
        self.crashes = 0
        self.churn_events = 0
        self._active = True
        if plan.churn_rate > 0:
            self._schedule_next_churn()
        if plan.crash_rate > 0:
            self._schedule_next_crash()

    # ------------------------------------------------------------------
    # Per-delivery hooks (called by Network.send)
    # ------------------------------------------------------------------
    def should_drop(self, from_id: str, to_id: str) -> bool:
        """Sample the loss coin for one delivery on link from--to."""
        loss, _ = self.plan.link_faults(from_id, to_id)
        if loss <= 0.0:
            return False
        if self._rng.random() >= loss:
            return False
        self.messages_dropped += 1
        self._log("loss", f"{from_id}->{to_id}")
        return True

    def extra_delay(self, from_id: str, to_id: str) -> float:
        """Sample the additional delivery delay for link from--to."""
        _, mean = self.plan.link_faults(from_id, to_id)
        if mean <= 0.0:
            return 0.0
        return self._rng.expovariate(1.0 / mean)

    def send_times_out(self, peer_id: str) -> bool:
        """Sample the timeout coin for one supernode injection."""
        rate = self.plan.send_timeout_rate
        if rate <= 0.0 or self._rng.random() >= rate:
            return False
        self.send_timeouts += 1
        self._log("send_timeout", peer_id)
        return True

    # ------------------------------------------------------------------
    # Link churn (Poisson process over live links)
    # ------------------------------------------------------------------
    def _schedule_next_churn(self) -> None:
        delay = self._rng.expovariate(self.plan.churn_rate)
        self.network.sim.schedule(
            delay, self._churn_once, label="fault:churn", daemon=True
        )

    def _churn_once(self) -> None:
        if not self._active:
            return
        link = self._pick_churnable_link()
        if link is not None:
            a, b = sorted(link)
            self.network.disconnect(a, b)
            self.churn_events += 1
            self._log("churn_down", f"{a}--{b}")
            self.network.sim.schedule(
                self.plan.churn_downtime,
                lambda: self._reconnect(a, b),
                label=f"fault:reconnect:{a}--{b}",
                daemon=True,
            )
        self._schedule_next_churn()

    def _pick_churnable_link(self) -> Optional[FrozenSet[str]]:
        supernodes = self.network.supernode_ids
        candidates = sorted(
            (tuple(sorted(link)) for link in self.network.links()
             if self.plan.churn_supernode_links or not (link & supernodes)),
        )
        if not candidates:
            return None
        return frozenset(self._rng.choice(candidates))

    def _reconnect(self, a: str, b: str) -> None:
        # Heals run even after stop(): a disarmed injector must not leave
        # the network in the broken state it created.
        if a in self.network and b in self.network and not self.network.are_connected(a, b):
            self.network.connect(a, b, force=True)
            self._log("churn_up", f"{a}--{b}")

    # ------------------------------------------------------------------
    # Crash/restart (Poisson process over non-supernode nodes)
    # ------------------------------------------------------------------
    def _schedule_next_crash(self) -> None:
        delay = self._rng.expovariate(self.plan.crash_rate)
        self.network.sim.schedule(
            delay, self._crash_once, label="fault:crash", daemon=True
        )

    def _crash_once(self) -> None:
        if not self._active:
            return
        victims = [
            nid for nid in self.network.measurable_node_ids()
            if not self.network.node(nid).crashed
        ]
        if victims:
            victim = self._rng.choice(sorted(victims))
            self.network.node(victim).crash()
            self.crashes += 1
            self._log("crash", victim)
            self.network.sim.schedule(
                self.plan.crash_downtime,
                lambda: self._restart(victim),
                label=f"fault:restart:{victim}",
                daemon=True,
            )
        self._schedule_next_crash()

    def _restart(self, node_id: str) -> None:
        # Heals run even after stop(), like _reconnect.
        if node_id in self.network:
            self.network.node(node_id).restart()
            self._log("restart", node_id)

    # ------------------------------------------------------------------
    # Lifecycle / bookkeeping
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Disarm the injector: no new faults fire, but pending heals
        (reconnects, restarts) still run so nothing stays broken."""
        self._active = False

    def _log(self, kind: str, detail: str) -> None:
        now = self.network.sim.now
        self.events.append(FaultEvent(now, kind, detail))
        tracer = self.network.sim.tracer
        if tracer is not None:
            tracer.record(now, f"fault:{kind}", detail)
        obs = self.network.obs
        if obs.enabled:
            obs.emit(now, "fault", kind, detail)
            from repro.obs.wiring import FAULTS_FIRED

            obs.metrics.counter(
                FAULTS_FIRED, "Fault events fired by kind", labels={"kind": kind}
            ).inc()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(dropped={self.messages_dropped}, "
            f"churn={self.churn_events}, crashes={self.crashes}, "
            f"send_timeouts={self.send_timeouts})"
        )
