"""Deterministic fault injection for simulated measurement campaigns.

The seed network is perfectly reliable, so the reproduction never exercised
the failure modes the paper's live deployment fought (Sections 6-7): lossy
links, peers churning in and out, nodes restarting with empty mempools, and
send timeouts on the measurement node itself. This module adds all of them
behind a single seed-driven :class:`FaultPlan`:

- **message loss** — every delivery is dropped with a per-link probability;
- **extra delay** — an exponential delay term added on top of the latency
  model (congestion, slow peers);
- **link churn** — a Poisson process disconnects a random live link and
  reconnects it after a downtime (the <5% unstable peers of Section 6.1);
- **node crash/restart** — a Poisson process crashes a random target; while
  down it neither sends nor receives, and on restart its mempool and
  per-peer known-transaction state are wiped (a rebooted Geth with the
  transaction journal disabled, the paper's testnet configuration);
- **send timeouts** — the supernode's direct injections fail with a
  probability, surfacing as :class:`~repro.errors.SendTimeoutError`.

Everything samples from one named RNG stream (``"faults"``) and runs through
the simulator's event queue, so a (seed, FaultPlan) pair fully determines
the run: same seed + same plan = byte-identical measurement results. With no
plan installed the network behaves exactly as before — the fault path is
consulted but never fires.

Typical usage::

    plan = FaultPlan(loss_rate=0.05, churn_rate=0.01, crash_rate=0.002)
    network.install_faults(plan)
    shot = TopoShot.attach(network)
    measurement = shot.measure_network()   # now survives the weather
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import FaultPlanError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.eth.network import Network


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultPlanError(f"{name} must be a probability in [0, 1], got {value}")


def _check_non_negative(name: str, value: float) -> None:
    if value < 0:
        raise FaultPlanError(f"{name} must be non-negative, got {value}")


@dataclass(frozen=True)
class LinkFaults:
    """Per-link override of the plan-wide loss/delay behaviour."""

    loss_rate: float = 0.0
    extra_delay_mean: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("loss_rate", self.loss_rate)
        _check_non_negative("extra_delay_mean", self.extra_delay_mean)


@dataclass(frozen=True)
class RpcFaultPlan:
    """Adversity on the *measurement plane*: the JSON-RPC calls themselves.

    The wire faults above degrade the network under measurement; this plan
    degrades the measurer's view of it — the throttled public endpoints,
    slow txpool dumps and flapping connections a live deployment fights
    (Section 6). Installed as the ``rpc`` field of a :class:`FaultPlan`,
    consulted by :class:`repro.eth.rpc.RpcEndpoint` on every call, and
    sampled from its own named RNG stream (``"rpc"``) so composing it with
    wire faults never perturbs their draw sequences.

    Attributes
    ----------
    timeout_rate:
        Probability any single call attempt times out (the client burns its
        per-method deadline waiting). Drawn together with ``error_rate``
        from one uniform sample, so the two must sum to at most 1.
    error_rate:
        Probability any single call attempt fails with a transient
        server-side error (a 5xx).
    rate_limit_per_second:
        Token-bucket refill rate per endpoint; once the bucket runs dry
        calls are rejected with a 429-style error carrying the refill
        horizon as ``retry_after``. 0 disables rate limiting.
    rate_limit_burst:
        Bucket capacity (maximum burst of back-to-back calls).
    stale_rate:
        Probability a ``txpool_*`` snapshot read is served from a lagged
        copy instead of live state (a caching proxy / slow follower).
    stale_lag:
        How long (seconds) a lagged copy is kept before it is refreshed —
        the worst-case age of a stale snapshot.
    truncate_rate:
        Probability a ``txpool_content`` response loses its tail page
        (the endpoint cut the dump short); ``txpool_status`` still reports
        the full counts, which is exactly how the client detects it.
    truncate_keep_fraction:
        Fraction of pending/queued sender groups kept by a truncated dump.
    flap_rate:
        Expected connection flaps per simulated second (Poisson). Each
        flap takes one random RPC-serving target's listener down for
        ``flap_downtime`` seconds; calls fail with a connection error.
    flap_downtime:
        Seconds a flapped endpoint stays unreachable.
    """

    timeout_rate: float = 0.0
    error_rate: float = 0.0
    rate_limit_per_second: float = 0.0
    rate_limit_burst: int = 8
    stale_rate: float = 0.0
    stale_lag: float = 5.0
    truncate_rate: float = 0.0
    truncate_keep_fraction: float = 0.5
    flap_rate: float = 0.0
    flap_downtime: float = 3.0

    def __post_init__(self) -> None:
        _check_probability("timeout_rate", self.timeout_rate)
        _check_probability("error_rate", self.error_rate)
        _check_probability("stale_rate", self.stale_rate)
        _check_probability("truncate_rate", self.truncate_rate)
        if self.timeout_rate + self.error_rate > 1.0:
            raise FaultPlanError(
                "timeout_rate + error_rate must not exceed 1, got "
                f"{self.timeout_rate + self.error_rate}"
            )
        _check_non_negative("rate_limit_per_second", self.rate_limit_per_second)
        _check_non_negative("flap_rate", self.flap_rate)
        if self.rate_limit_per_second > 0 and self.rate_limit_burst < 1:
            raise FaultPlanError(
                f"rate_limit_burst must be >= 1, got {self.rate_limit_burst}"
            )
        if self.stale_lag <= 0:
            raise FaultPlanError(f"stale_lag must be positive, got {self.stale_lag}")
        if not 0.0 < self.truncate_keep_fraction < 1.0:
            raise FaultPlanError(
                "truncate_keep_fraction must be in (0, 1), got "
                f"{self.truncate_keep_fraction}"
            )
        if self.flap_downtime <= 0:
            raise FaultPlanError(
                f"flap_downtime must be positive, got {self.flap_downtime}"
            )

    @property
    def enabled(self) -> bool:
        """True if any RPC fault can ever fire under this plan."""
        return bool(
            self.timeout_rate
            or self.error_rate
            or self.rate_limit_per_second
            or self.stale_rate
            or self.truncate_rate
            or self.flap_rate
        )

    @classmethod
    def uniform(cls, rate: float, **overrides: object) -> "RpcFaultPlan":
        """A plan where every call fails in transport with probability
        ``rate`` (split evenly between timeouts and transient errors) and
        every snapshot read is additionally served stale or truncated with
        probability ``rate`` each. The benchmark's "X% per-call fault
        rate" knob."""
        _check_probability("rate", rate)
        params: dict = {
            "timeout_rate": rate / 2.0,
            "error_rate": rate / 2.0,
            "stale_rate": rate,
            "truncate_rate": rate,
        }
        params.update(overrides)  # type: ignore[arg-type]
        return cls(**params)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultPlan:
    """A complete, validated description of the adversity to inject.

    Attributes
    ----------
    loss_rate:
        Probability that any single delivery is silently dropped.
    extra_delay_mean:
        Mean of an exponential delay added to every surviving delivery
        (0 disables it).
    link_overrides:
        Map of undirected link (``frozenset({a, b})``) to a
        :class:`LinkFaults` that replaces the plan-wide loss/delay on that
        link only.
    churn_rate:
        Expected link-churn events per simulated second (Poisson process).
        Each event disconnects one random live target-target link and
        reconnects it ``churn_downtime`` seconds later.
    churn_downtime:
        Seconds a churned link stays down.
    churn_supernode_links:
        Whether the supernode's own links are eligible for churn (default
        no: the paper's measurement node keeps stable connections).
    crash_rate:
        Expected node crashes per simulated second (Poisson process). Each
        event crashes one random non-supernode node for
        ``crash_downtime`` seconds; restart wipes its mempool and
        known-transaction state.
    crash_downtime:
        Seconds a crashed node stays down.
    send_timeout_rate:
        Probability that one ``Supernode.send_transactions`` call times out
        (raises :class:`~repro.errors.SendTimeoutError`) instead of sending.
    rpc:
        Optional :class:`RpcFaultPlan` degrading the measurement plane
        itself (call timeouts, rate limits, stale snapshots, connection
        flaps). Samples from its own ``"rpc"`` RNG stream, so it composes
        with the wire faults above without perturbing their sequences.
    """

    loss_rate: float = 0.0
    extra_delay_mean: float = 0.0
    link_overrides: Dict[FrozenSet[str], LinkFaults] = field(default_factory=dict)
    churn_rate: float = 0.0
    churn_downtime: float = 5.0
    churn_supernode_links: bool = False
    crash_rate: float = 0.0
    crash_downtime: float = 10.0
    send_timeout_rate: float = 0.0
    rpc: Optional[RpcFaultPlan] = None

    def __post_init__(self) -> None:
        _check_probability("loss_rate", self.loss_rate)
        _check_probability("send_timeout_rate", self.send_timeout_rate)
        _check_non_negative("extra_delay_mean", self.extra_delay_mean)
        _check_non_negative("churn_rate", self.churn_rate)
        _check_non_negative("crash_rate", self.crash_rate)
        if self.churn_downtime <= 0:
            raise FaultPlanError(
                f"churn_downtime must be positive, got {self.churn_downtime}"
            )
        if self.crash_downtime <= 0:
            raise FaultPlanError(
                f"crash_downtime must be positive, got {self.crash_downtime}"
            )

    @property
    def enabled(self) -> bool:
        """True if any fault can ever fire under this plan."""
        return bool(
            self.loss_rate
            or self.extra_delay_mean
            or self.link_overrides
            or self.churn_rate
            or self.crash_rate
            or self.send_timeout_rate
            or (self.rpc is not None and self.rpc.enabled)
        )

    def link_faults(self, a: str, b: str) -> Tuple[float, float]:
        """(loss_rate, extra_delay_mean) effective on link a--b."""
        override = self.link_overrides.get(frozenset((a, b)))
        if override is not None:
            return override.loss_rate, override.extra_delay_mean
        return self.loss_rate, self.extra_delay_mean


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired (for diagnostics and tests)."""

    time: float
    # "loss" | "churn_down" | "churn_up" | "crash" | "restart" | "send_timeout"
    # | "rpc_timeout" | "rpc_error" | "rpc_rate_limit" | "rpc_stale"
    # | "rpc_truncate" | "rpc_flap_down" | "rpc_flap_up"
    kind: str
    detail: str


class RpcFaultState:
    """Runtime state of an :class:`RpcFaultPlan` (owned by the injector).

    Consulted by :class:`repro.eth.rpc.RpcEndpoint` on every call. All
    randomness comes from the ``"rpc"`` stream; the draw order per call is
    fixed (flap check — no draw; token bucket — no draw; one transport
    draw; then per-snapshot stale/truncate draws), so a (seed, plan, call
    sequence) triple fully determines the faults that fire.
    """

    def __init__(self, injector: "FaultInjector", plan: RpcFaultPlan) -> None:
        self.injector = injector
        self.network = injector.network
        self.plan = plan
        self._rng = self.network.sim.rng.stream("rpc")
        self._active = True
        # node -> (tokens, last refill stamp)
        self._buckets: Dict[str, Tuple[float, float]] = {}
        self._down_until: Dict[str, float] = {}
        # node -> (captured_at, bundle) lagged snapshot copy
        self._stale_cache: Dict[str, Tuple[float, dict]] = {}
        self.timeouts = 0
        self.transient_errors = 0
        self.rate_limited = 0
        self.stale_served = 0
        self.truncated = 0
        self.flaps = 0
        if plan.flap_rate > 0:
            self._schedule_next_flap()

    # -- per-call hooks (called by RpcEndpoint) ------------------------
    def endpoint_down(self, node_id: str) -> bool:
        """True while ``node_id``'s listener is flapped away (no draw)."""
        return self.network.sim.now < self._down_until.get(node_id, 0.0)

    def consume_token(self, node_id: str) -> Optional[float]:
        """Take one token from ``node_id``'s bucket.

        Returns ``None`` when admitted, else the ``retry_after`` horizon
        (seconds until one token refills). Deterministic — no RNG draw.
        """
        rate = self.plan.rate_limit_per_second
        if rate <= 0:
            return None
        now = self.network.sim.now
        tokens, stamp = self._buckets.get(
            node_id, (float(self.plan.rate_limit_burst), now)
        )
        tokens = min(
            float(self.plan.rate_limit_burst), tokens + (now - stamp) * rate
        )
        if tokens >= 1.0:
            self._buckets[node_id] = (tokens - 1.0, now)
            return None
        self._buckets[node_id] = (tokens, now)
        self.rate_limited += 1
        self.injector._log("rpc_rate_limit", node_id)
        return (1.0 - tokens) / rate

    def transport_fault(self, node_id: str) -> Optional[str]:
        """One uniform draw deciding this attempt's transport fate.

        Returns ``"timeout"``, ``"error"``, or ``None`` (call goes
        through). No draw at all when both rates are zero.
        """
        timeout, error = self.plan.timeout_rate, self.plan.error_rate
        if timeout <= 0.0 and error <= 0.0:
            return None
        sample = self._rng.random()
        if sample < timeout:
            self.timeouts += 1
            self.injector._log("rpc_timeout", node_id)
            return "timeout"
        if sample < timeout + error:
            self.transient_errors += 1
            self.injector._log("rpc_error", node_id)
            return "error"
        return None

    def lagged_bundle(self, node_id: str, fresh: dict) -> dict:
        """Maybe serve a snapshot bundle from the lagged copy.

        The cached copy refreshes once it is ``stale_lag`` old, so a stale
        read is at most that far behind live state. One draw when
        ``stale_rate`` is armed, none otherwise.
        """
        now = self.network.sim.now
        cached = self._stale_cache.get(node_id)
        if cached is None or now - cached[0] >= self.plan.stale_lag:
            cached = (now, fresh)
            self._stale_cache[node_id] = cached
        if self.plan.stale_rate <= 0.0 or self._rng.random() >= self.plan.stale_rate:
            return fresh
        if cached[0] < now:
            self.stale_served += 1
            self.injector._log("rpc_stale", f"{node_id}@{cached[0]:g}")
            return cached[1]
        return fresh

    def should_truncate(self, node_id: str) -> bool:
        """One draw deciding whether a ``txpool_content`` dump loses its
        tail page. None when ``truncate_rate`` is zero."""
        rate = self.plan.truncate_rate
        if rate <= 0.0 or self._rng.random() >= rate:
            return False
        self.truncated += 1
        self.injector._log("rpc_truncate", node_id)
        return True

    # -- connection flaps (Poisson over RPC-serving targets) -----------
    def _schedule_next_flap(self) -> None:
        delay = self._rng.expovariate(self.plan.flap_rate)
        self.network.sim.schedule(
            delay, self._flap_once, label="fault:rpc_flap", daemon=True
        )

    def _flap_once(self) -> None:
        if not self._active:
            return
        now = self.network.sim.now
        victims = sorted(
            nid
            for nid in self.network.measurable_node_ids()
            if self.network.node(nid).config.responds_to_rpc
            and not self.endpoint_down(nid)
        )
        if victims:
            victim = self._rng.choice(victims)
            self._down_until[victim] = now + self.plan.flap_downtime
            self.flaps += 1
            self.injector._log("rpc_flap_down", victim)
            self.network.sim.schedule(
                self.plan.flap_downtime,
                lambda: self.injector._log("rpc_flap_up", victim),
                label=f"fault:rpc_flap_up:{victim}",
                daemon=True,
            )
        self._schedule_next_flap()

    def stop(self) -> None:
        """Disarm: no new faults, and flapped listeners come back up so a
        stopped injector leaves no endpoint unreachable."""
        self._active = False
        self._down_until.clear()


class FaultInjector:
    """Runtime binding of a :class:`FaultPlan` to one network.

    Created by :meth:`repro.eth.network.Network.install_faults`. All
    randomness comes from the simulator's ``"faults"`` stream; churn and
    crash processes self-reschedule through daemon events so they never keep
    ``settle()`` from terminating.
    """

    def __init__(self, network: "Network", plan: FaultPlan) -> None:
        self.network = network
        self.plan = plan
        self._rng = network.sim.rng.stream("faults")
        self.events: List[FaultEvent] = []
        self.messages_dropped = 0
        self.send_timeouts = 0
        self.crashes = 0
        self.churn_events = 0
        self._active = True
        self.rpc: Optional[RpcFaultState] = (
            RpcFaultState(self, plan.rpc)
            if plan.rpc is not None and plan.rpc.enabled
            else None
        )
        if plan.churn_rate > 0:
            self._schedule_next_churn()
        if plan.crash_rate > 0:
            self._schedule_next_crash()

    # ------------------------------------------------------------------
    # Per-delivery hooks (called by Network.send)
    # ------------------------------------------------------------------
    def should_drop(self, from_id: str, to_id: str) -> bool:
        """Sample the loss coin for one delivery on link from--to."""
        loss, _ = self.plan.link_faults(from_id, to_id)
        if loss <= 0.0:
            return False
        if self._rng.random() >= loss:
            return False
        self.messages_dropped += 1
        self._log("loss", f"{from_id}->{to_id}")
        return True

    def extra_delay(self, from_id: str, to_id: str) -> float:
        """Sample the additional delivery delay for link from--to."""
        _, mean = self.plan.link_faults(from_id, to_id)
        if mean <= 0.0:
            return 0.0
        return self._rng.expovariate(1.0 / mean)

    def send_times_out(self, peer_id: str) -> bool:
        """Sample the timeout coin for one supernode injection."""
        rate = self.plan.send_timeout_rate
        if rate <= 0.0 or self._rng.random() >= rate:
            return False
        self.send_timeouts += 1
        self._log("send_timeout", peer_id)
        return True

    # ------------------------------------------------------------------
    # Link churn (Poisson process over live links)
    # ------------------------------------------------------------------
    def _schedule_next_churn(self) -> None:
        delay = self._rng.expovariate(self.plan.churn_rate)
        self.network.sim.schedule(
            delay, self._churn_once, label="fault:churn", daemon=True
        )

    def _churn_once(self) -> None:
        if not self._active:
            return
        link = self._pick_churnable_link()
        if link is not None:
            a, b = sorted(link)
            self.network.disconnect(a, b)
            self.churn_events += 1
            self._log("churn_down", f"{a}--{b}")
            self.network.sim.schedule(
                self.plan.churn_downtime,
                lambda: self._reconnect(a, b),
                label=f"fault:reconnect:{a}--{b}",
                daemon=True,
            )
        self._schedule_next_churn()

    def _pick_churnable_link(self) -> Optional[FrozenSet[str]]:
        supernodes = self.network.supernode_ids
        candidates = sorted(
            (tuple(sorted(link)) for link in self.network.links()
             if self.plan.churn_supernode_links or not (link & supernodes)),
        )
        if not candidates:
            return None
        return frozenset(self._rng.choice(candidates))

    def _reconnect(self, a: str, b: str) -> None:
        # Heals run even after stop(): a disarmed injector must not leave
        # the network in the broken state it created.
        if a in self.network and b in self.network and not self.network.are_connected(a, b):
            self.network.connect(a, b, force=True)
            self._log("churn_up", f"{a}--{b}")

    # ------------------------------------------------------------------
    # Crash/restart (Poisson process over non-supernode nodes)
    # ------------------------------------------------------------------
    def _schedule_next_crash(self) -> None:
        delay = self._rng.expovariate(self.plan.crash_rate)
        self.network.sim.schedule(
            delay, self._crash_once, label="fault:crash", daemon=True
        )

    def _crash_once(self) -> None:
        if not self._active:
            return
        victims = [
            nid for nid in self.network.measurable_node_ids()
            if not self.network.node(nid).crashed
        ]
        if victims:
            victim = self._rng.choice(sorted(victims))
            self.network.node(victim).crash()
            self.crashes += 1
            self._log("crash", victim)
            self.network.sim.schedule(
                self.plan.crash_downtime,
                lambda: self._restart(victim),
                label=f"fault:restart:{victim}",
                daemon=True,
            )
        self._schedule_next_crash()

    def _restart(self, node_id: str) -> None:
        # Heals run even after stop(), like _reconnect.
        if node_id in self.network:
            self.network.node(node_id).restart()
            self._log("restart", node_id)

    # ------------------------------------------------------------------
    # Lifecycle / bookkeeping
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Disarm the injector: no new faults fire, but pending heals
        (reconnects, restarts) still run so nothing stays broken."""
        self._active = False
        if self.rpc is not None:
            self.rpc.stop()

    def _log(self, kind: str, detail: str) -> None:
        now = self.network.sim.now
        self.events.append(FaultEvent(now, kind, detail))
        tracer = self.network.sim.tracer
        if tracer is not None:
            tracer.record(now, f"fault:{kind}", detail)
        obs = self.network.obs
        if obs.enabled:
            obs.emit(now, "fault", kind, detail)
            from repro.obs.wiring import FAULTS_FIRED

            obs.metrics.counter(
                FAULTS_FIRED, "Fault events fired by kind", labels={"kind": kind}
            ).inc()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(dropped={self.messages_dropped}, "
            f"churn={self.churn_events}, crashes={self.crashes}, "
            f"send_timeouts={self.send_timeouts})"
        )
