"""Simulator state capture/restore for the snapshot/reset layer.

A :class:`SimulatorSnapshot` freezes everything the engine itself
contributes to determinism: the clock, the monotone sequence counter that
breaks heap ties, the executed-event count, and the exact state of every
named RNG stream. Restoring puts the engine back to that instant so a
subsequent run draws the same sequence numbers and random numbers as the
first one did — the property the parallel executor relies on to make
"restore then run shard" bit-identical to "fresh build then run shard".

Snapshots are only taken at quiescent instants (empty event queue); callers
drain the queue with ``network.settle()`` first. Capturing mid-flight would
have to serialize arbitrary queued callbacks/closures, which is neither
possible in general nor needed for the campaign workflow.

Two sharp edges, handled here and by :meth:`repro.eth.network.Network.snapshot`:

* Reading the next value of ``itertools.count`` consumes it, so capture
  replaces ``sim._seq`` with a fresh ``count`` starting at the observed
  value — a net no-op for the live run, but anything holding a bound
  reference to the old counter (``Network._next_seq``) must re-bind.
* ``sim._queue`` is cleared *in place* on restore: ``Network`` keeps a
  direct reference to the list object for its inlined heap pushes.

The tracer, profiler, and event log are deliberately *not* part of the
snapshot: they are observers of execution, not inputs to it, and resetting
them would silently discard operator-requested diagnostics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

from repro.errors import SnapshotError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


@dataclass
class SimulatorSnapshot:
    """Frozen engine state: clock, tie-break counter, RNG stream states."""

    now: float
    seq: int
    executed: int
    rng: Tuple[int, Dict[str, object]]


def capture_simulator(sim: "Simulator") -> SimulatorSnapshot:
    """Capture the engine's deterministic state at a quiescent instant.

    Raises :class:`SnapshotError` if any events (daemon or not) are still
    queued — run ``sim.run()`` / ``network.settle()`` to drain first.

    Side effect: ``sim._seq`` is replaced by an equivalent counter (same
    next value). Callers holding a bound ``__next__`` reference must
    re-bind it; :meth:`repro.eth.network.Network.snapshot` does.
    """
    if sim._queue:
        raise SnapshotError(
            f"cannot snapshot with {len(sim._queue)} events still queued; "
            "drain the simulation (network.settle()) first"
        )
    seq_value = next(sim._seq)
    sim._seq = itertools.count(seq_value)
    return SimulatorSnapshot(
        now=sim._now,
        seq=seq_value,
        executed=sim._executed,
        rng=sim.rng.capture(),
    )


def restore_simulator(sim: "Simulator", snapshot: SimulatorSnapshot) -> None:
    """Rewind the engine to a captured instant.

    Pending events are discarded (the queue list is cleared in place so
    bound references stay valid), the clock and sequence counter rewind to
    their captured values, and every RNG stream is put back to its captured
    state in place (streams created after the capture are re-seeded as a
    fresh registry would have seeded them).

    As with capture, ``sim._seq`` is replaced; bound references must be
    re-bound by the caller.
    """
    sim._queue.clear()
    sim._non_daemon_pending = 0
    sim._now = snapshot.now
    sim._seq = itertools.count(snapshot.seq)
    sim._executed = snapshot.executed
    sim.rng.restore(snapshot.rng)
