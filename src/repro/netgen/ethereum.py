"""Discovery-driven Ethereum-like overlay generation.

Reproduces the neighbour-selection behaviour Section 6.2.2 discusses: every
node keeps a DHT routing table of inactive neighbours; active links are
dialled from a candidate buffer consisting of the node's own table entries
plus its entries' entries (hop-2), with de-duplication against existing
active neighbours. Nodes stop dialling at their outbound quota and stop
accepting at ``max_peers``.

Heterogeneity knobs model the non-default target behaviours the paper
blames for imperfect recall (Section 6.1):

- custom (larger) mempool capacities -> eviction floods sized for the
  default L fail to evict ``txC``;
- custom replacement thresholds R -> ``txA`` cannot replace ``txB``;
- non-relaying nodes -> ``txA`` is never forwarded;
- future-forwarding nodes -> filtered by pre-processing (Section 6.2.1);
- RPC-disabled nodes -> the "unresponsive" targets pre-processing skips.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set

from repro.eth.discovery import RoutingTable, build_routing_tables
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH, NETHERMIND, PARITY, MempoolPolicy
from repro.sim.latency import GeoLatency, LatencyModel, UniformLatency


@dataclass(frozen=True)
class NetworkSpec:
    """Shape and behaviour of a generated Ethereum-like network."""

    n_nodes: int = 40
    seed: int = 0
    name: str = "testnet"
    mempool_capacity: int = 128  # scaled Geth L; other clients scale too
    max_peers: int = 30
    outbound_dials: int = 8
    routing_table_capacity: int = 96
    parity_fraction: float = 0.0
    nethermind_fraction: float = 0.0
    fraction_custom_capacity: float = 0.0
    custom_capacity_factor: float = 2.2
    fraction_custom_bump: float = 0.0
    custom_bump: float = 0.25
    fraction_future_forwarders: float = 0.0
    fraction_future_echoers: float = 0.0  # Rinkeby's bounce-back quirk
    fraction_non_relaying: float = 0.0
    fraction_rpc_disabled: float = 0.0
    n_hubs: int = 0  # globally connected nodes (Goerli's 700-degree nodes)
    push_to_all: bool = False
    announce_only: bool = False  # Bitcoin-style propagation (baselines)
    broadcast_interval: float = 0.02
    latency: Optional[LatencyModel] = None
    # Optional geographic structure: region name -> node share. When set
    # (and no explicit latency model is given), nodes are pinned to regions
    # and links use GeoLatency's inter-region base delays.
    region_mix: Optional[Dict[str, float]] = None
    # Wiring algorithm: "legacy" is the original full-population routing
    # fill + unbounded hop-2 candidate union (quadratic, and what every
    # golden fingerprint was baked against); "fast" uses bounded sampling
    # (near-linear — the >=50k unlock) with a *different* seed-deterministic
    # draw sequence; "auto" picks fast at FAST_WIRING_THRESHOLD nodes.
    wiring: str = "auto"
    extra_config: Dict[str, object] = field(default_factory=dict)

    def node_id(self, index: int) -> str:
        return f"{self.name}-{index:04d}"


#: Node count at which wiring="auto" switches to the fast generator. All
#: golden/fingerprinted topologies (24/40/1k nodes) stay on legacy wiring.
FAST_WIRING_THRESHOLD = 2048


def _use_fast_wiring(spec: NetworkSpec) -> bool:
    if spec.wiring == "legacy":
        return False
    if spec.wiring == "fast":
        return True
    if spec.wiring == "auto":
        return spec.n_nodes >= FAST_WIRING_THRESHOLD
    raise ValueError(
        f"unknown wiring {spec.wiring!r}; expected 'auto', 'legacy' or 'fast'"
    )


def _scaled_policy(base: MempoolPolicy, spec: NetworkSpec) -> MempoolPolicy:
    """Scale a client policy so its L keeps the real-world ratio to Geth's."""
    capacity = max(8, round(spec.mempool_capacity * base.capacity / GETH.capacity))
    return base.scaled(capacity)


def generate_network(spec: NetworkSpec) -> Network:
    """Build a network per ``spec``; the spec is stored as ``network.spec``."""
    network = Network(
        latency=spec.latency or UniformLatency(0.02, 0.12), seed=spec.seed
    )
    rng = network.sim.rng.stream("netgen")
    if spec.latency is None and spec.region_mix:
        regions = _assign_regions(spec, rng)
        network.latency = GeoLatency(regions)
        network.node_regions = regions  # type: ignore[attr-defined]

    geth = _scaled_policy(GETH, spec)
    parity = _scaled_policy(PARITY, spec)
    nethermind = _scaled_policy(NETHERMIND, spec)

    node_ids = [spec.node_id(i) for i in range(spec.n_nodes)]
    hub_ids = set(node_ids[: spec.n_hubs])

    for index, node_id in enumerate(node_ids):
        draw = rng.random()
        if draw < spec.nethermind_fraction:
            policy = nethermind
            version = f"Nethermind/v1.10.{index}"
        elif draw < spec.nethermind_fraction + spec.parity_fraction:
            policy = parity
            version = f"OpenEthereum/v3.2.{index}"
        else:
            policy = geth
            version = f"Geth/v1.9.{index}-stable"
        if rng.random() < spec.fraction_custom_capacity:
            policy = policy.with_capacity(
                int(policy.capacity * spec.custom_capacity_factor)
            )
        if rng.random() < spec.fraction_custom_bump:
            policy = policy.with_bump(spec.custom_bump)
        config = NodeConfig(
            policy=policy,
            max_peers=None if node_id in hub_ids else spec.max_peers,
            push_to_all=spec.push_to_all,
            announce_only=spec.announce_only,
            broadcast_interval=spec.broadcast_interval,
            relays_transactions=rng.random() >= spec.fraction_non_relaying,
            forwards_future=rng.random() < spec.fraction_future_forwarders,
            echoes_future_to_sender=rng.random() < spec.fraction_future_echoers,
            responds_to_rpc=rng.random() >= spec.fraction_rpc_disabled,
            client_version=version,
        )
        network.create_node(node_id, config)

    _wire_active_links(network, node_ids, hub_ids, spec, rng)
    network.spec = spec  # type: ignore[attr-defined]
    return network


def _assign_regions(spec: NetworkSpec, rng) -> Dict[str, str]:
    """Pin every node to a region, sampled from the spec's region mix."""
    names = list(spec.region_mix)
    weights = [spec.region_mix[name] for name in names]
    return {
        spec.node_id(i): rng.choices(names, weights=weights)[0]
        for i in range(spec.n_nodes)
    }


def _wire_active_links(
    network: Network,
    node_ids: List[str],
    hub_ids: Set[str],
    spec: NetworkSpec,
    rng,
) -> None:
    """Dial active links out of discovery candidates, then bridge any
    disconnected components."""
    fast = _use_fast_wiring(spec)
    table_capacity = min(spec.routing_table_capacity, max(1, spec.n_nodes - 1))
    tables: Dict[str, RoutingTable] = build_routing_tables(
        node_ids, rng, capacity=table_capacity, fast=fast
    )
    for node_id, table in tables.items():
        network.node(node_id).routing_table = table.entries()

    dial_order = list(node_ids)
    rng.shuffle(dial_order)
    for node_id in dial_order:
        node = network.node(node_id)
        quota = (
            max(spec.outbound_dials, spec.n_nodes - 1)
            if node_id in hub_ids
            else spec.outbound_dials
        )
        # Candidate buffer: own table entries plus hop-2 entries (§6.2.2).
        candidates = list(tables[node_id].entries())
        if fast:
            buffer = _bounded_hop2_buffer(node_id, candidates, tables, quota)
        else:
            hop2: Set[str] = set()
            for entry in candidates:
                hop2.update(tables[entry].entries())
            hop2.discard(node_id)
            buffer = candidates + sorted(hop2 - set(candidates))
        rng.shuffle(buffer)
        dialled = 0
        for candidate in buffer:
            if dialled >= quota or not node.can_accept_peer():
                break
            if network.are_connected(node_id, candidate):
                continue  # de-duplication of already-active neighbours
            target = network.node(candidate)
            if not target.can_accept_peer() and candidate not in hub_ids:
                continue
            network.connect(node_id, candidate, force=candidate in hub_ids)
            dialled += 1

    if fast:
        _bridge_components_fast(network, rng)
    else:
        _bridge_components(network, rng)


def _bounded_hop2_buffer(
    node_id: str,
    candidates: List[str],
    tables: Dict[str, RoutingTable],
    quota: int,
) -> List[str]:
    """Own entries plus hop-2 entries, capped.

    The legacy buffer unions *every* hop-2 table — O(capacity^2) per node,
    the second quadratic term in large-N generation. A dial only consumes
    a handful of candidates, so a buffer a few multiples of the quota deep
    gives the dialling loop the same slack without materializing the
    full hop-2 neighbourhood.
    """
    cap = max(4 * quota, len(candidates)) + 16
    buffer = list(candidates)
    seen = set(candidates)
    seen.add(node_id)
    for entry in candidates:
        if len(buffer) >= cap:
            break
        for hop2 in tables[entry].entries():
            if hop2 not in seen:
                seen.add(hop2)
                buffer.append(hop2)
                if len(buffer) >= cap:
                    break
    return buffer


def _bridge_components(network: Network, rng) -> None:
    graph = network.ground_truth_graph()
    import networkx as nx

    components = [sorted(c) for c in nx.connected_components(graph)]
    for previous, current in zip(components, components[1:]):
        network.connect(rng.choice(previous), rng.choice(current), force=True)


def _bridge_components_fast(network: Network, rng) -> None:
    """Union-find over the integer adjacency instead of building an
    nx.Graph of the whole overlay (which would briefly double memory at
    50k nodes). Components are bridged in min-name order, so the result
    is seed-deterministic like the legacy path."""
    adj = network._adj
    names = network._names
    n = len(names)
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for ia, peers in enumerate(adj):
        for ib in peers:
            ra, rb = find(ia), find(ib)
            if ra != rb:
                parent[rb] = ra
    groups: Dict[int, List[str]] = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(names[i])
    components = sorted(
        (sorted(group) for group in groups.values()), key=lambda g: g[0]
    )
    for previous, current in zip(components, components[1:]):
        network.connect(rng.choice(previous), rng.choice(current), force=True)


def quick_network(n_nodes: int = 40, seed: int = 0, **overrides: object) -> Network:
    """One-liner for examples and tests: a homogeneous Geth testnet."""
    spec = NetworkSpec(n_nodes=n_nodes, seed=seed, **overrides)  # type: ignore[arg-type]
    return generate_network(spec)


# ----------------------------------------------------------------------
# Testnet presets (scaled ~1:10 from the paper's measured sizes)
# ----------------------------------------------------------------------
def ropsten_like(seed: int = 0, **overrides: object) -> NetworkSpec:
    """Ropsten stand-in: 588 nodes / 7496 edges (avg degree ~25) scaled to
    60 nodes with outbound quota preserving the average degree."""
    spec = NetworkSpec(
        n_nodes=60,
        seed=seed,
        name="ropsten",
        mempool_capacity=512,
        max_peers=50,
        outbound_dials=13,
        fraction_custom_capacity=0.05,
        fraction_custom_bump=0.02,
        fraction_non_relaying=0.02,
        fraction_future_forwarders=0.03,
        fraction_rpc_disabled=0.03,
        parity_fraction=0.05,
    )
    return replace(spec, **overrides)  # type: ignore[arg-type]


def rinkeby_like(seed: int = 0, **overrides: object) -> NetworkSpec:
    """Rinkeby stand-in: denser (paper average degree ~69), 446 nodes
    scaled to 46."""
    spec = NetworkSpec(
        n_nodes=46,
        seed=seed,
        name="rinkeby",
        mempool_capacity=512,
        max_peers=44,
        outbound_dials=17,
        fraction_future_echoers=0.08,
        fraction_custom_capacity=0.05,
        fraction_custom_bump=0.02,
        fraction_non_relaying=0.02,
        fraction_future_forwarders=0.03,
        fraction_rpc_disabled=0.03,
        parity_fraction=0.05,
    )
    return replace(spec, **overrides)  # type: ignore[arg-type]


def goerli_like(seed: int = 0, **overrides: object) -> NetworkSpec:
    """Goerli stand-in: 1025 nodes scaled to 100, including globally
    connected hub nodes (the paper found nodes with >700 neighbours)."""
    spec = NetworkSpec(
        n_nodes=100,
        seed=seed,
        name="goerli",
        mempool_capacity=768,
        max_peers=60,
        outbound_dials=15,
        n_hubs=2,
        fraction_custom_capacity=0.05,
        fraction_custom_bump=0.02,
        fraction_non_relaying=0.02,
        fraction_future_forwarders=0.03,
        fraction_rpc_disabled=0.03,
        parity_fraction=0.05,
    )
    return replace(spec, **overrides)  # type: ignore[arg-type]
