"""Background transaction workloads.

Two tools map to Section 6.2.1's field observations:

- :func:`prefill_mempools` stuffs every pool with identically ordered
  background transactions before a measurement, so pools are *full* (a
  correctness precondition of the primitive) and the gas-price distribution
  gives the median-Y estimate something to bite on;
- :class:`BackgroundWorkload` keeps submitting transactions during a run —
  the "launch another node that sends background transactions" trick that
  keeps ``txC`` from being mined on under-loaded testnets, and keeps blocks
  full for the non-interference conditions (V1).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

from repro.eth.account import Wallet
from repro.eth.network import Network
from repro.eth.node import Node
from repro.eth.transaction import Transaction, TransactionFactory, gwei
from repro.sim.process import PeriodicProcess


def _price_sample(rng, median_price: int, sigma: float) -> int:
    """Lognormal gas price centred (in median) on ``median_price``."""
    return max(1, int(rng.lognormvariate(math.log(median_price), sigma)))


def prefill_mempools(
    network: Network,
    median_price: int = gwei(1.0),
    sigma: float = 0.4,
    count: Optional[int] = None,
    include: Optional[Iterable[str]] = None,
    wallet: Optional[Wallet] = None,
) -> List[Transaction]:
    """Fill every node's pool with a shared background-transaction list.

    The same transactions in the same order go to every node (as if they
    had propagated), so the price rank of any later measurement transaction
    is consistent network-wide. Each transaction uses its own fresh account
    at nonce 0, making all of them immediately pending. Insertion stops per
    node once its pool is full. Returns the generated transactions.
    """
    rng = network.sim.rng.stream("prefill")
    wallet = wallet or Wallet("background")
    factory = TransactionFactory()
    node_ids = list(include) if include is not None else network.node_ids
    nodes: List[Node] = [network.node(nid) for nid in node_ids]
    if count is None:
        count = max(
            (n.config.policy.capacity for n in nodes if n.config.policy.capacity < 10**5),
            default=0,
        )
    txs = [
        factory.transfer(
            wallet.fresh_account(prefix="bg"),
            gas_price=_price_sample(rng, median_price, sigma),
        )
        for _ in range(count)
    ]
    for node in nodes:
        for tx in txs:
            if node.mempool.is_full:
                break
            node.mempool.add(tx)
    return txs


def refresh_mempools(
    network: Network,
    median_price: int = gwei(1.0),
    sigma: float = 0.4,
    count: Optional[int] = None,
    include: Optional[Iterable[str]] = None,
    wallet: Optional[Wallet] = None,
) -> List[Transaction]:
    """Compressed organic churn: drop every pool's content and pre-fill anew.

    On a live network, a measurement campaign's stale seed transactions
    drain continuously — mined into blocks (they are priced at the pool
    median), expired after ``e`` hours, or evicted by fresh traffic. A
    simulated campaign compresses hours into seconds, so the drain must be
    applied explicitly between iterations; without it, stale seeds clog
    third-party pools until new seeds are rejected and isolation breaks.
    """
    node_ids = list(include) if include is not None else network.node_ids
    for node_id in node_ids:
        network.node(node_id).mempool.clear()
    return prefill_mempools(
        network,
        median_price=median_price,
        sigma=sigma,
        count=count,
        include=node_ids,
        wallet=wallet,
    )


class BackgroundWorkload:
    """Continuous transaction submission through random entry nodes.

    Submissions go through :meth:`Node.submit_transaction`, so they
    propagate normally and land in miners' pools.
    """

    def __init__(
        self,
        network: Network,
        rate_per_second: float = 5.0,
        median_price: int = gwei(1.0),
        sigma: float = 0.4,
        entry_nodes: Optional[List[str]] = None,
        wallet: Optional[Wallet] = None,
    ) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        self.network = network
        self.median_price = median_price
        self.sigma = sigma
        self.entry_nodes = entry_nodes or network.measurable_node_ids()
        self.wallet = wallet or Wallet("bg-workload")
        self.factory = TransactionFactory()
        self.submitted: List[Transaction] = []
        self._rng = network.sim.rng.stream("bg-workload")
        self._process = PeriodicProcess(
            network.sim,
            interval=1.0 / rate_per_second,
            action=self._submit_one,
            poisson=True,
            rng_name="bg-workload-timer",
            label="background-tx",
        )

    def start(self) -> None:
        self._process.start()

    def stop(self) -> None:
        self._process.stop()

    @property
    def running(self) -> bool:
        return self._process.running

    @property
    def sender_addresses(self) -> set[str]:
        return {tx.sender for tx in self.submitted}

    def _submit_one(self) -> None:
        entry = self._rng.choice(self.entry_nodes)
        tx = self.factory.transfer(
            self.wallet.fresh_account(prefix="live"),
            gas_price=_price_sample(self._rng, self.median_price, self.sigma),
        )
        self.submitted.append(tx)
        self.network.node(entry).submit_transaction(tx)
