"""Background transaction workloads, batched for heavy traffic.

Three layers map to Section 6.2.1's field observations and the ROADMAP's
"millions of users' worth of traffic" scenario:

- :func:`prefill_mempools` stuffs every pool with identically ordered
  background transactions before a measurement, so pools are *full* (a
  correctness precondition of the primitive) and the gas-price distribution
  gives the median-Y estimate something to bite on. Bulk insertion goes
  through :meth:`repro.eth.mempool.Mempool.add_batch`, one heap rebuild per
  pool instead of one heappush per transaction;
- :class:`BatchedWorkload` sustains heavy traffic at **O(ticks) engine
  cost**: one engine event per tick generates the whole tick's transactions
  from a precomputed price table (a single seeded RNG stream), counts the
  fee-market floor's casualties by binary search instead of constructing
  them, materializes at most ``materialize_cap`` real transactions, and
  bulk-inserts those into a rotating fanout of pools. Shapes —
  :func:`steady`, :func:`nft_mint_storm`, :func:`mev_replacement_race`,
  :func:`spam_flood`, :func:`diurnal_load` — modulate the rate and
  replacement mix;
- :class:`BackgroundWorkload` is the legacy per-transaction submitter (one
  engine event *per transaction*), kept for low-rate runs where full
  propagation of every background transaction matters.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.errors import MeasurementError
from repro.eth.account import Wallet
from repro.eth.network import Network
from repro.eth.node import Node
from repro.eth.transaction import Transaction, TransactionFactory, gwei
from repro.sim.process import PeriodicProcess


def _price_sample(rng, median_price: int, sigma: float) -> int:
    """Lognormal gas price centred (in median) on ``median_price``."""
    return max(1, int(rng.lognormvariate(math.log(median_price), sigma)))


def prefill_mempools(
    network: Network,
    median_price: int = gwei(1.0),
    sigma: float = 0.4,
    count: Optional[int] = None,
    include: Optional[Iterable[str]] = None,
    wallet: Optional[Wallet] = None,
) -> List[Transaction]:
    """Fill every node's pool with a shared background-transaction list.

    The same transactions in the same order go to every node (as if they
    had propagated), so the price rank of any later measurement transaction
    is consistent network-wide. Each transaction uses its own fresh account
    at nonce 0, making all of them immediately pending. Insertion stops per
    node once its pool is full (``add_batch(stop_when_full=True)``, the
    bulk equivalent of the legacy check-then-add loop — identical outcomes
    and, on cleared pools, identical eviction-heap entries, which is what
    keeps the golden fingerprints byte-stable). Returns the generated
    transactions.
    """
    rng = network.sim.rng.stream("prefill")
    wallet = wallet or Wallet("background")
    factory = TransactionFactory()
    node_ids = list(include) if include is not None else network.node_ids
    nodes: List[Node] = [network.node(nid) for nid in node_ids]
    if count is None:
        count = max(
            (n.config.policy.capacity for n in nodes if n.config.policy.capacity < 10**5),
            default=0,
        )
    # With a live fee market installed, senders consult the oracle and bid
    # at least the admission floor — a wallet never knowingly submits a
    # transaction the pools will drop. Without one (the default), prices
    # are the raw lognormal sample, which keeps the golden fingerprints
    # byte-identical.
    floor = 0
    if network.fee_market is not None:
        floor = network.fee_market.floor_for(network.sim.now)
    txs = [
        factory.transfer(
            wallet.fresh_account(prefix="bg"),
            gas_price=max(floor, _price_sample(rng, median_price, sigma)),
        )
        for _ in range(count)
    ]
    for node in nodes:
        node.mempool.add_batch(txs, stop_when_full=True)
    if network.fee_market is not None:
        # The refill compressed hours of organic traffic into one instant;
        # force the (otherwise rate-limited) oracle to price against the
        # pools as they now stand.
        network.fee_market.refresh(network.sim.now)
    return txs


def refresh_mempools(
    network: Network,
    median_price: int = gwei(1.0),
    sigma: float = 0.4,
    count: Optional[int] = None,
    include: Optional[Iterable[str]] = None,
    wallet: Optional[Wallet] = None,
) -> List[Transaction]:
    """Compressed organic churn: drop every pool's content and pre-fill anew.

    On a live network, a measurement campaign's stale seed transactions
    drain continuously — mined into blocks (they are priced at the pool
    median), expired after ``e`` hours, or evicted by fresh traffic. A
    simulated campaign compresses hours into seconds, so the drain must be
    applied explicitly between iterations; without it, stale seeds clog
    third-party pools until new seeds are rejected and isolation breaks.
    """
    node_ids = list(include) if include is not None else network.node_ids
    for node_id in node_ids:
        network.node(node_id).mempool.clear()
    if network.fee_market is not None:
        # The drain empties the pools, so the admission floor relaxes with
        # them — otherwise a floor inflated by a just-stopped traffic storm
        # clamps the refill up to storm prices and the "ambient" level
        # ratchets instead of recovering.
        network.fee_market.refresh(network.sim.now)
    return prefill_mempools(
        network,
        median_price=median_price,
        sigma=sigma,
        count=count,
        include=node_ids,
        wallet=wallet,
    )


# ----------------------------------------------------------------------
# Batched heavy-traffic engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadShape:
    """One traffic pattern for :class:`BatchedWorkload`.

    ``rate_per_second`` is the mean offered load; the optional modulators
    compose: a diurnal sinusoid scales it first, then a burst window (NFT
    drops) multiplies it. ``replacement_fraction`` of each tick's
    materialized transactions are re-submitted next tick as priced-up
    replacements (MEV races) through real node submission, so they
    propagate and exercise the replacement path network-wide.
    """

    name: str
    rate_per_second: float
    median_price: int = gwei(1.0)
    sigma: float = 0.4
    burst_every: Optional[float] = None
    burst_duration: float = 5.0
    burst_multiplier: float = 1.0
    diurnal_period: Optional[float] = None
    diurnal_amplitude: float = 0.0
    replacement_fraction: float = 0.0
    replacement_bump: float = 0.15

    def __post_init__(self) -> None:
        if self.rate_per_second <= 0:
            raise MeasurementError("rate must be positive")
        if not 0 <= self.replacement_fraction <= 1:
            raise MeasurementError("replacement_fraction must be in [0, 1]")
        if self.diurnal_amplitude < 0 or self.diurnal_amplitude > 1:
            raise MeasurementError("diurnal_amplitude must be in [0, 1]")

    def rate_at(self, now: float) -> float:
        """Offered tx/s at simulated time ``now`` (modulators applied)."""
        rate = self.rate_per_second
        if self.diurnal_period:
            rate *= 1.0 + self.diurnal_amplitude * math.sin(
                2.0 * math.pi * now / self.diurnal_period
            )
        if self.burst_every and (now % self.burst_every) < self.burst_duration:
            rate *= self.burst_multiplier
        return max(0.0, rate)


def steady(rate_per_second: float = 100.0, **kwargs) -> WorkloadShape:
    """Flat organic load at the ambient price level."""
    return WorkloadShape(name="steady", rate_per_second=rate_per_second, **kwargs)


def nft_mint_storm(
    rate_per_second: float = 200.0,
    burst_every: float = 60.0,
    burst_duration: float = 5.0,
    burst_multiplier: float = 20.0,
    **kwargs,
) -> WorkloadShape:
    """Periodic mint-drop bursts: quiet baseline, violent spikes."""
    return WorkloadShape(
        name="nft-mint-storm",
        rate_per_second=rate_per_second,
        burst_every=burst_every,
        burst_duration=burst_duration,
        burst_multiplier=burst_multiplier,
        **kwargs,
    )


def mev_replacement_race(
    rate_per_second: float = 50.0,
    replacement_fraction: float = 0.5,
    replacement_bump: float = 0.15,
    **kwargs,
) -> WorkloadShape:
    """Searchers outbidding each other: heavy replacement traffic."""
    return WorkloadShape(
        name="mev-replacement-race",
        rate_per_second=rate_per_second,
        replacement_fraction=replacement_fraction,
        replacement_bump=replacement_bump,
        **kwargs,
    )


def spam_flood(
    rate_per_second: float = 2000.0,
    median_price: int = gwei(0.2),
    sigma: float = 0.2,
    **kwargs,
) -> WorkloadShape:
    """High-volume bottom-of-the-fee-market spam (mostly floor fodder)."""
    return WorkloadShape(
        name="spam-flood",
        rate_per_second=rate_per_second,
        median_price=median_price,
        sigma=sigma,
        **kwargs,
    )


def diurnal_load(
    rate_per_second: float = 100.0,
    diurnal_period: float = 86400.0,
    diurnal_amplitude: float = 0.6,
    **kwargs,
) -> WorkloadShape:
    """Day/night sinusoid around the mean rate."""
    return WorkloadShape(
        name="diurnal-load",
        rate_per_second=rate_per_second,
        diurnal_period=diurnal_period,
        diurnal_amplitude=diurnal_amplitude,
        **kwargs,
    )


class BatchedWorkload:
    """Sustained background traffic at one engine event per tick.

    Per tick, the whole tick's load is settled in bulk:

    1. the offered count comes from ``shape.rate_at(now) * tick_interval``
       (fractional remainder resolved by one RNG draw, so the long-run
       rate is exact and seed-deterministic);
    2. the live fee-market floor (if installed) is applied *statistically*:
       the precomputed sorted price table — drawn once from a single seeded
       stream at construction — is binary-searched for the floor, and the
       inadmissible fraction of the tick is counted as floor-rejected
       without ever constructing a transaction;
    3. at most ``materialize_cap`` admissible transactions are actually
       built (prices re-sampled from the admissible tail of the table) and
       bulk-inserted via :meth:`~repro.eth.mempool.Mempool.add_batch` into
       a rotating window of ``fanout`` pools, as-if-propagated — the
       statistical remainder is accounted in ``stats`` only;
    4. a ``replacement_fraction`` of the materialized transactions is
       queued and re-submitted next tick as priced-up replacements through
       a real entry node, so MEV races exercise the actual replacement and
       propagation machinery.

    Engine cost is therefore O(ticks) events and O(cap × fanout) pool
    work per tick, independent of the offered tx/s — the property the
    ``BENCH_monitor.json`` sustained-load gate (<15% throughput cost at
    ≥50k tx/s) measures.
    """

    def __init__(
        self,
        network: Network,
        shape: WorkloadShape,
        tick_interval: float = 1.0,
        fanout: int = 16,
        materialize_cap: int = 256,
        price_table_size: int = 4096,
        entry_nodes: Optional[List[str]] = None,
        wallet: Optional[Wallet] = None,
    ) -> None:
        if tick_interval <= 0:
            raise MeasurementError("tick_interval must be positive")
        if materialize_cap < 1:
            raise MeasurementError("materialize_cap must be >= 1")
        if price_table_size < 16:
            raise MeasurementError("price_table_size must be >= 16")
        self.network = network
        self.shape = shape
        self.tick_interval = tick_interval
        self.materialize_cap = materialize_cap
        self.wallet = wallet or Wallet(f"workload-{shape.name}")
        self.factory = TransactionFactory()
        self._rng = network.sim.rng.stream(f"workload-{shape.name}")
        # The single-stream precomputed price array: sorted so the floor
        # cut is one bisect, and so index-above-cut sampling draws from
        # exactly the admissible tail of the distribution.
        self._price_table: List[int] = sorted(
            _price_sample(self._rng, shape.median_price, shape.sigma)
            for _ in range(price_table_size)
        )
        ids = entry_nodes or list(network.measurable_node_ids())
        if not ids:
            raise MeasurementError("network has no eligible entry nodes")
        self._fanout_ids = ids
        self.fanout = min(max(1, fanout), len(ids))
        self._cursor = 0
        self._pending_replacements: List[Transaction] = []
        self.stats: Dict[str, int] = {
            "ticks": 0,
            "offered": 0,
            "floor_rejected": 0,
            "materialized": 0,
            "statistical": 0,
            "admitted": 0,
            "replacements": 0,
        }
        self._process = PeriodicProcess(
            network.sim,
            interval=tick_interval,
            action=self._tick,
            poisson=False,
            rng_name=f"workload-{shape.name}-timer",
            label=f"workload-{shape.name}",
        )

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        self._process.start()

    def stop(self) -> None:
        self._process.stop()

    @property
    def running(self) -> bool:
        return self._process.running

    def offered_rate(self) -> float:
        """Mean offered tx/s over the workload's lifetime so far."""
        ticks = self.stats["ticks"]
        if ticks == 0:
            return 0.0
        return self.stats["offered"] / (ticks * self.tick_interval)

    # -- the tick ------------------------------------------------------
    def _tick(self) -> None:
        stats = self.stats
        stats["ticks"] += 1
        now = self.network.sim.now
        expected = self.shape.rate_at(now) * self.tick_interval
        count = int(expected)
        if self._rng.random() < expected - count:
            count += 1
        if count <= 0:
            return
        stats["offered"] += count

        market = self.network.fee_market
        table = self._price_table
        size = len(table)
        if market is not None:
            floor = market.floor_for(now)
            cut = bisect_left(table, floor)
        else:
            cut = 0
        if cut >= size:
            # The whole distribution sits under the floor: the entire tick
            # is rejected fodder, no state to mutate.
            stats["floor_rejected"] += count
            return
        admissible = count - (count * cut) // size
        stats["floor_rejected"] += count - admissible

        materialize = min(admissible, self.materialize_cap)
        stats["materialized"] += materialize
        stats["statistical"] += admissible - materialize

        rng_random = self._rng.random
        span = size - cut
        fresh = self.wallet.fresh_account
        transfer = self.factory.transfer
        prefix = self.shape.name
        txs = [
            transfer(
                fresh(prefix=prefix),
                gas_price=table[cut + int(rng_random() * span)],
            )
            for _ in range(materialize)
        ]

        # Bulk insert into the rotating fanout window, as-if-propagated.
        ids = self._fanout_ids
        total = len(ids)
        start = self._cursor
        admitted = 0
        for j in range(self.fanout):
            node = self.network.node(ids[(start + j) % total])
            counts = node.mempool.add_batch(txs)
            admitted += (
                counts.get("admitted_pending", 0)
                + counts.get("admitted_future", 0)
                + counts.get("replaced", 0)
            )
        self._cursor = (start + self.fanout) % total
        stats["admitted"] += admitted

        # MEV races: last tick's queued originals come back priced up,
        # through real submission so the replacements propagate.
        if self._pending_replacements:
            entry = self.network.node(ids[start % total])
            for original in self._pending_replacements:
                entry.submit_transaction(
                    self.factory.replacement(
                        original, self.shape.replacement_bump
                    )
                )
                stats["replacements"] += 1
            self._pending_replacements = []
        n_repl = int(materialize * self.shape.replacement_fraction)
        if n_repl > 0:
            self._pending_replacements = txs[:n_repl]


class BackgroundWorkload:
    """Continuous transaction submission through random entry nodes.

    Submissions go through :meth:`Node.submit_transaction`, so they
    propagate normally and land in miners' pools. One engine event per
    transaction — use :class:`BatchedWorkload` for heavy rates.
    """

    def __init__(
        self,
        network: Network,
        rate_per_second: float = 5.0,
        median_price: int = gwei(1.0),
        sigma: float = 0.4,
        entry_nodes: Optional[List[str]] = None,
        wallet: Optional[Wallet] = None,
    ) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        self.network = network
        self.median_price = median_price
        self.sigma = sigma
        self.entry_nodes = entry_nodes or network.measurable_node_ids()
        self.wallet = wallet or Wallet("bg-workload")
        self.factory = TransactionFactory()
        self.submitted: List[Transaction] = []
        self._rng = network.sim.rng.stream("bg-workload")
        self._process = PeriodicProcess(
            network.sim,
            interval=1.0 / rate_per_second,
            action=self._submit_one,
            poisson=True,
            rng_name="bg-workload-timer",
            label="background-tx",
        )

    def start(self) -> None:
        self._process.start()

    def stop(self) -> None:
        self._process.stop()

    @property
    def running(self) -> bool:
        return self._process.running

    @property
    def sender_addresses(self) -> set[str]:
        return {tx.sender for tx in self.submitted}

    def _submit_one(self) -> None:
        entry = self._rng.choice(self.entry_nodes)
        tx = self.factory.transfer(
            self.wallet.fresh_account(prefix="live"),
            gas_price=_price_sample(self._rng, self.median_price, self.sigma),
        )
        self.submitted.append(tx)
        self.network.node(entry).submit_transaction(tx)


SHAPES = {
    "steady": steady,
    "nft-mint-storm": nft_mint_storm,
    "mev-replacement-race": mev_replacement_race,
    "spam-flood": spam_flood,
    "diurnal-load": diurnal_load,
}
