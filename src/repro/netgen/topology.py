"""Random-graph baselines used by the paper's comparative analysis.

Tables 4, 9 and 10 compare each measured testnet against three models,
matched to the measurement:

- **ER** (Erdos-Renyi): same node and edge counts;
- **CM** (configuration model): same degree sequence;
- **BA** (Barabasi-Albert): same node count and average degree.

All generators return *simple* graphs (self-loops and parallel edges
stripped, as is standard when the CM multigraph is used for statistics).
"""

from __future__ import annotations

from typing import List, Sequence

import networkx as nx

from repro.errors import AnalysisError


def _simplify(graph: nx.Graph) -> nx.Graph:
    simple = nx.Graph()
    simple.add_nodes_from(graph.nodes())
    simple.add_edges_from((u, v) for u, v in graph.edges() if u != v)
    return simple


def er_graph(n_nodes: int, n_edges: int, seed: int = 0) -> nx.Graph:
    """Erdos-Renyi G(n, m): ``n_edges`` uniformly random edges."""
    if n_nodes < 1:
        raise AnalysisError("ER graph needs at least one node")
    max_edges = n_nodes * (n_nodes - 1) // 2
    if n_edges > max_edges:
        raise AnalysisError(f"{n_edges} edges exceed the {max_edges} possible")
    return nx.gnm_random_graph(n_nodes, n_edges, seed=seed)


def configuration_model_graph(
    degree_sequence: Sequence[int], seed: int = 0
) -> nx.Graph:
    """Configuration model with the measured degree sequence.

    An odd degree sum is patched by incrementing one degree (the standard
    fix; the paper's CM columns do the same implicitly).
    """
    degrees: List[int] = list(degree_sequence)
    if not degrees:
        raise AnalysisError("empty degree sequence")
    if sum(degrees) % 2 == 1:
        degrees[0] += 1
    multigraph = nx.configuration_model(degrees, seed=seed)
    return _simplify(nx.Graph(multigraph))


def ba_graph(n_nodes: int, average_degree: float, seed: int = 0) -> nx.Graph:
    """Barabasi-Albert with attachment parameter ``m ~ average_degree / 2``.

    BA produces average degree ``~2m``; the paper parameterizes by the
    measured network's average degree (l' = 26 for Ropsten).
    """
    if n_nodes < 2:
        raise AnalysisError("BA graph needs at least two nodes")
    m = max(1, min(n_nodes - 1, round(average_degree / 2)))
    return nx.barabasi_albert_graph(n_nodes, m, seed=seed)


def average_degree(graph: nx.Graph) -> float:
    """Mean node degree of a graph."""
    n = graph.number_of_nodes()
    if n == 0:
        raise AnalysisError("empty graph")
    return 2.0 * graph.number_of_edges() / n


def degree_sequence(graph: nx.Graph) -> List[int]:
    """Sorted (descending) degree sequence."""
    return sorted((degree for _, degree in graph.degree()), reverse=True)


def matched_baselines(
    graph: nx.Graph, seed: int = 0
) -> dict[str, nx.Graph]:
    """The ER/CM/BA trio matched to ``graph`` as the paper matches them."""
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    return {
        "ER": er_graph(n, m, seed=seed),
        "CM": configuration_model_graph(degree_sequence(graph), seed=seed),
        "BA": ba_graph(n, average_degree(graph), seed=seed),
    }


def ensure_connected(graph: nx.Graph, rng) -> int:
    """Bridge disconnected components with random edges; returns the number
    of edges added. Mutates ``graph`` in place."""
    components = [sorted(c) for c in nx.connected_components(graph)]
    added = 0
    for previous, current in zip(components, components[1:]):
        a = rng.choice(previous)
        b = rng.choice(current)
        graph.add_edge(a, b)
        added += 1
    return added
