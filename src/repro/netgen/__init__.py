"""Topology and workload generation.

- :mod:`repro.netgen.ethereum` -- discovery-driven Ethereum-like overlays
  (the measured testnets' stand-ins) with heterogeneous node behaviours.
- :mod:`repro.netgen.topology` -- classic random-graph baselines (ER,
  configuration model, Barabasi-Albert) used by Tables 4/9/10.
- :mod:`repro.netgen.workloads` -- background transactions: mempool
  pre-fill and ongoing submission (the Section 6.2.1 trick for
  under-loaded testnets).
- :mod:`repro.netgen.services` -- mainnet-like overlays with critical
  service backends (mining pools, relays) and biased neighbour selection.
"""

from repro.netgen.ethereum import (
    NetworkSpec,
    generate_network,
    goerli_like,
    quick_network,
    rinkeby_like,
    ropsten_like,
)
from repro.netgen.services import (
    MainnetSpec,
    ServiceDirectory,
    discover_critical_nodes,
    mainnet_like,
)
from repro.netgen.topology import ba_graph, configuration_model_graph, er_graph
from repro.netgen.workloads import BackgroundWorkload, prefill_mempools

__all__ = [
    "BackgroundWorkload",
    "MainnetSpec",
    "NetworkSpec",
    "ServiceDirectory",
    "ba_graph",
    "configuration_model_graph",
    "discover_critical_nodes",
    "er_graph",
    "generate_network",
    "goerli_like",
    "mainnet_like",
    "prefill_mempools",
    "quick_network",
    "rinkeby_like",
    "ropsten_like",
]
