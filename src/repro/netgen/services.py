"""Mainnet-like overlays with critical service backends (Section 6.3).

The paper discovers nodes behind popular services — one dominant
transaction relay (anonymized SrvR1, relaying 63% of mainnet
transactions), a second relay SrvR2, and six mining pools SrvM1..SrvM6 —
and measures the sub-topology among nine of them. The observed pattern:

- SrvR1 nodes connect to every tested pool and to other SrvR1 nodes, but
  not to SrvR2;
- SrvR2 behaves like a vanilla client (no preferential links);
- pool nodes connect to nodes of the same and other pools and to SrvR1 —
  except SrvM1 nodes, which do not peer with each other.

:func:`mainnet_like` builds a scaled mainnet whose service wiring follows
that bias, so the Table 6 reproduction measures a ground truth with the
same structure the paper inferred. Discovery mirrors the paper's method:
match ``web3_clientVersion`` strings obtained through the service frontend
against handshake versions collected by a supernode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import NetworkError
from repro.eth.network import Network
from repro.netgen.ethereum import NetworkSpec, generate_network

# Paper-reported backend-node counts, and the scaled counts we simulate.
PAPER_SERVICE_COUNTS: Dict[str, int] = {
    "SrvR1": 48,
    "SrvR2": 1,
    "SrvM1": 59,
    "SrvM2": 8,
    "SrvM3": 6,
    "SrvM4": 2,
    "SrvM5": 2,
    "SrvM6": 1,
}

DEFAULT_SCALED_COUNTS: Dict[str, int] = {
    "SrvR1": 5,
    "SrvR2": 1,
    "SrvM1": 5,
    "SrvM2": 3,
    "SrvM3": 2,
    "SrvM4": 2,
    "SrvM5": 1,
    "SrvM6": 1,
}

RELAY_SERVICES = ("SrvR1", "SrvR2")
POOL_SERVICES = ("SrvM1", "SrvM2", "SrvM3", "SrvM4", "SrvM5", "SrvM6")


@dataclass(frozen=True)
class MainnetSpec:
    """Scaled mainnet: regular nodes plus service backends."""

    n_regular: int = 70
    seed: int = 0
    service_counts: Dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_SCALED_COUNTS)
    )
    base: NetworkSpec = field(
        default_factory=lambda: NetworkSpec(name="mainnet", mempool_capacity=192)
    )


@dataclass
class ServiceDirectory:
    """Who runs what: service name -> backend node ids, plus the
    frontend-visible client version per service."""

    members: Dict[str, List[str]] = field(default_factory=dict)
    frontend_versions: Dict[str, str] = field(default_factory=dict)

    def service_of(self, node_id: str) -> Optional[str]:
        for service, ids in self.members.items():
            if node_id in ids:
                return service
        return None

    def all_service_nodes(self) -> List[str]:
        return [nid for ids in self.members.values() for nid in ids]

    def frontend_client_version(self, service: str) -> str:
        """What ``web3_clientVersion`` through the service frontend returns
        (the codename-bearing string of Li et al.'s discovery method)."""
        if service not in self.frontend_versions:
            raise NetworkError(f"unknown service {service!r}")
        return self.frontend_versions[service]


def _service_version(service: str, index: int) -> str:
    return f"Geth/v1.10.3-{service}-backend{index}/linux-amd64"


def mainnet_like(spec: Optional[MainnetSpec] = None) -> Tuple[Network, ServiceDirectory]:
    """Build a scaled mainnet with biased service wiring.

    Regular nodes are generated and wired like a testnet; service nodes are
    then added and connected per the bias rules above, plus a handful of
    random links into the regular population so they are not isolated.
    """
    spec = spec or MainnetSpec()
    base = NetworkSpec(
        n_nodes=spec.n_regular,
        seed=spec.seed,
        name=spec.base.name,
        mempool_capacity=spec.base.mempool_capacity,
        max_peers=spec.base.max_peers,
        outbound_dials=spec.base.outbound_dials,
        routing_table_capacity=spec.base.routing_table_capacity,
        broadcast_interval=spec.base.broadcast_interval,
        latency=spec.base.latency,
    )
    network = generate_network(base)
    rng = network.sim.rng.stream("mainnet-services")

    directory = ServiceDirectory()
    for service, count in spec.service_counts.items():
        ids: List[str] = []
        for index in range(count):
            node_id = f"{service.lower()}-{index}"
            version = _service_version(service, index)
            config = network.node(base.node_id(0)).config
            node = network.create_node(
                node_id,
                config.__class__(
                    policy=config.policy,
                    max_peers=None,  # services accept many peers
                    push_to_all=config.push_to_all,
                    broadcast_interval=config.broadcast_interval,
                    client_version=version,
                ),
            )
            ids.append(node.id)
        directory.members[service] = ids
        directory.frontend_versions[service] = _service_version(service, 0).rsplit(
            "backend", 1
        )[0]

    _wire_services(network, directory, rng)
    network.service_directory = directory  # type: ignore[attr-defined]
    return network, directory


def _wire_services(network: Network, directory: ServiceDirectory, rng) -> None:
    regular = [
        nid
        for nid in network.measurable_node_ids()
        if directory.service_of(nid) is None
    ]

    def connect(a: str, b: str) -> None:
        if a != b and not network.are_connected(a, b):
            network.connect(a, b, force=True)

    srv_r1 = directory.members.get("SrvR1", [])
    srv_r2 = directory.members.get("SrvR2", [])
    pools = {s: directory.members.get(s, []) for s in POOL_SERVICES}

    # SrvR1 nodes: peers with every pool node and with each other.
    for relay in srv_r1:
        for other in srv_r1:
            connect(relay, other)
        for pool_ids in pools.values():
            for pool_node in pool_ids:
                connect(relay, pool_node)

    # Pool nodes: same pool + other pools; SrvM1 nodes avoid each other.
    pool_list = list(pools.items())
    for i, (service_a, ids_a) in enumerate(pool_list):
        if service_a != "SrvM1":
            for x in ids_a:
                for y in ids_a:
                    connect(x, y)
        for service_b, ids_b in pool_list[i + 1 :]:
            for x in ids_a:
                for y in ids_b:
                    connect(x, y)

    # SrvR2: a vanilla node — random regular neighbours only.
    vanilla_degree = 8
    for relay in srv_r2:
        for target in rng.sample(regular, min(vanilla_degree, len(regular))):
            connect(relay, target)

    # Every service node also serves regular users: random regular links.
    for node_id in directory.all_service_nodes():
        if directory.service_of(node_id) == "SrvR2":
            continue
        for target in rng.sample(regular, min(6, len(regular))):
            connect(node_id, target)


def discover_critical_nodes(
    network: Network,
    directory: ServiceDirectory,
    supernode: Optional["Supernode"] = None,
    handshake_wait: float = 2.0,
) -> Dict[str, List[str]]:
    """Re-discover service backends the way the paper does (Section 6.3):
    collect DevP2P Status handshake client versions on a supernode joining
    the network, and match them against the frontend-reported version
    prefix of each service (obtained via ``web3_clientVersion`` through the
    service frontend).

    When no ``supernode`` is passed, a throwaway discovery supernode is
    joined, used, and detached again.
    """
    from repro.eth.supernode import Supernode

    temporary = supernode is None
    if temporary:
        supernode = Supernode.join(
            network, node_id=f"discovery-{len(network.nodes)}"
        )
    network.run(handshake_wait)  # let Status handshakes deliver
    discovered: Dict[str, List[str]] = {service: [] for service in directory.members}
    for node_id, handshake_version in sorted(supernode.peer_versions.items()):
        if node_id not in network.measurable_node_ids():
            continue
        for service in directory.members:
            prefix = directory.frontend_client_version(service)
            if handshake_version.startswith(prefix):
                discovered[service].append(node_id)
    if temporary:
        for peer_id in list(supernode.peer_ids):
            network.disconnect(supernode.id, peer_id)
    return discovered
