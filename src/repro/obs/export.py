"""Exporters: JSON-lines, Prometheus text format, and CSV.

Every exporter renders one *collected* view of a
:class:`~repro.obs.metrics.MetricsRegistry` (collectors run first, so
pull-wired counters are up to date) or of an
:class:`~repro.obs.events.EventLog`.  Output ordering is deterministic —
instruments sort by (name, labels), events keep log order — so exports of
two identical runs diff clean.

Formats:

- **JSON-lines** (``.jsonl``): one JSON object per metric sample, the
  format campaign tooling and the bench harness consume;
- **Prometheus text format** (``.prom`` / ``.txt``): ``# HELP``/``# TYPE``
  headers plus one sample line per series — histograms render as
  summaries (quantile series + ``_count``/``_sum``), ready for a
  node-exporter-style textfile collector;
- **CSV** (``.csv``): flat ``name,type,labels,field,value`` rows for
  spreadsheets.

:func:`write_metrics` infers the format from the path suffix; pass
``fmt`` explicitly to override.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ObservabilityError
from repro.obs.events import EventLog
from repro.obs.metrics import Histogram, MetricsRegistry

PathLike = Union[str, Path]

_PROM_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_PROM_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LABEL_FIX = re.compile(r"[^a-zA-Z0-9_]")

#: Path-suffix -> canonical format name used by :func:`write_metrics`.
SUFFIX_FORMATS = {
    ".jsonl": "jsonl",
    ".json": "jsonl",
    ".prom": "prometheus",
    ".txt": "prometheus",
    ".csv": "csv",
}


def _prom_name(name: str) -> str:
    if _PROM_NAME_OK.match(name):
        return name
    fixed = _PROM_NAME_FIX.sub("_", name)
    if fixed[0].isdigit():
        fixed = "_" + fixed
    return fixed


def _prom_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        f'{_PROM_LABEL_FIX.sub("_", key)}="{_prom_label_value(value)}"'
        for key, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_number(value: object) -> str:
    if value is None:
        return "NaN"
    return repr(float(value)) if isinstance(value, float) else str(value)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def metrics_to_jsonl(registry: MetricsRegistry) -> str:
    """One compact JSON object per metric sample, one per line."""
    lines = [
        json.dumps(instrument.sample(), sort_keys=True)
        for instrument in registry.collect()
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus/OpenMetrics text exposition.

    Histograms are exposed as Prometheus *summaries*: one ``quantile``
    series each for p50/p90/p99 plus ``_count`` and ``_sum`` (their
    reservoirs hold samples, not fixed buckets, so a summary is the honest
    rendering).
    """
    out: List[str] = []
    seen_header = set()
    for instrument in registry.collect():
        name = _prom_name(instrument.name)
        if name not in seen_header:
            seen_header.add(name)
            help_text = registry.help_for(instrument.name) or instrument.help
            if help_text:
                out.append(f"# HELP {name} {help_text}")
            prom_type = (
                "summary" if isinstance(instrument, Histogram) else instrument.kind
            )
            out.append(f"# TYPE {name} {prom_type}")
        labels = dict(instrument.labels)
        if isinstance(instrument, Histogram):
            for q in (0.5, 0.9, 0.99):
                quantile_label = 'quantile="%s"' % q
                out.append(
                    f"{name}{_prom_labels(labels, quantile_label)} "
                    f"{_prom_number(instrument.quantile(q))}"
                )
            out.append(f"{name}_count{_prom_labels(labels)} {instrument.count}")
            out.append(
                f"{name}_sum{_prom_labels(labels)} {_prom_number(instrument.sum)}"
            )
        else:
            out.append(
                f"{name}{_prom_labels(labels)} {_prom_number(instrument.value)}"
            )
    return "\n".join(out) + ("\n" if out else "")


def metrics_to_csv(registry: MetricsRegistry) -> str:
    """Flat CSV: ``name,type,labels,field,value`` (histograms multi-row)."""

    def escape(cell: object) -> str:
        text = str(cell)
        if any(ch in text for ch in ',"\n'):
            return '"' + text.replace('"', '""') + '"'
        return text

    rows = ["name,type,labels,field,value"]
    for instrument in registry.collect():
        labels = ";".join(f"{k}={v}" for k, v in sorted(dict(instrument.labels).items()))
        sample = instrument.sample()
        if isinstance(instrument, Histogram):
            fields = ("count", "sum", "min", "max", "p50", "p90", "p99")
        else:
            fields = ("value",)
        for field in fields:
            rows.append(
                ",".join(
                    escape(cell)
                    for cell in (
                        instrument.name,
                        instrument.kind,
                        labels,
                        field,
                        sample[field],
                    )
                )
            )
    return "\n".join(rows) + "\n"


_METRIC_RENDERERS = {
    "jsonl": metrics_to_jsonl,
    "prometheus": metrics_to_prometheus,
    "csv": metrics_to_csv,
}


def resolve_format(path: PathLike, fmt: Optional[str] = None) -> str:
    """Canonical format name for ``path``/``fmt`` (raises on unknown)."""
    if fmt is not None:
        name = fmt.lower()
        if name == "prom":
            name = "prometheus"
        if name not in _METRIC_RENDERERS:
            raise ObservabilityError(
                f"unknown metrics format {fmt!r}; "
                f"pick one of {sorted(_METRIC_RENDERERS)}"
            )
        return name
    suffix = Path(path).suffix.lower()
    try:
        return SUFFIX_FORMATS[suffix]
    except KeyError:
        raise ObservabilityError(
            f"cannot infer metrics format from suffix {suffix!r} of {path}; "
            f"use one of {sorted(SUFFIX_FORMATS)} or pass fmt="
        ) from None


def write_metrics(
    registry: MetricsRegistry, path: PathLike, fmt: Optional[str] = None
) -> Path:
    """Render ``registry`` to ``path`` in ``fmt`` (inferred from suffix)."""
    target = Path(path)
    renderer = _METRIC_RENDERERS[resolve_format(target, fmt)]
    target.write_text(renderer(registry), encoding="utf-8")
    return target


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
def events_to_jsonl(log: EventLog) -> str:
    """One JSON object per retained event record, oldest first."""
    lines = [json.dumps(record, sort_keys=True) for record in log.to_dicts()]
    return "\n".join(lines) + ("\n" if lines else "")


def write_events(log: EventLog, path: PathLike) -> Path:
    """Write the retained event window to ``path`` as JSON-lines."""
    target = Path(path)
    target.write_text(events_to_jsonl(log), encoding="utf-8")
    return target
